"""CI gate: crash recovery restores exactly the acknowledged mutations.

Two phases, mirroring the durability test suite at smoke scale:

1. **Single node, random WAL cut** — a durable :class:`FuzzyDatabase` is
   churned with a scripted insert/delete stream, its directory is copied
   mid-flight (the crash), and the copied WAL is cut at a seeded random byte
   offset.  Recovery must replay a clean prefix (torn tail repaired, STR
   bulk load counted) and answer AKNN / range / sweep / reverse queries
   identically to an uninterrupted twin that applied exactly the replayed
   prefix.

2. **Sharded, partial crash** — one shard of a durable
   :class:`ShardedDatabase` starts failing its WAL appends mid-churn (a
   ``wal_append`` fault-plan rule), the deployment is "crashed" and
   recovered, and the recovered database must agree with a twin that applied
   only the acknowledged mutations — per-shard WALs isolate the blast
   radius.

Run locally::

    PYTHONPATH=src python scripts/recovery_smoke.py --seed 7
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import RuntimeConfig  # noqa: E402
from repro.core.database import FuzzyDatabase  # noqa: E402
from repro.core.requests import (  # noqa: E402
    AknnRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
)
from repro.datasets.builder import build_dataset  # noqa: E402
from repro.datasets.queries import generate_query_object  # noqa: E402
from repro.exceptions import FaultInjectedError, ObjectNotFoundError  # noqa: E402
from repro.fuzzy.alpha_distance import alpha_distance  # noqa: E402
from repro.metrics.counters import MetricsCollector  # noqa: E402
from repro.service import FaultPlan, ShardedDatabase  # noqa: E402


def _check(condition: bool, label: str, failures: list) -> None:
    print(f"  {'ok  ' if condition else 'FAIL'} {label}")
    if not condition:
        failures.append(label)


def _scripted_ops(rng, live, n_ops, next_id):
    ops = []
    live = list(live)
    for step in range(n_ops):
        if step % 3 == 2 and len(live) > 8:
            ops.append(("delete", live.pop(int(rng.integers(0, len(live))))))
        else:
            obj = generate_query_object(rng, kind="synthetic", space_size=8.0,
                                        points_per_object=24).with_id(next_id)
            ops.append(("insert", obj))
            live.append(next_id)
            next_id += 1
    return ops


def _apply(db, ops):
    acknowledged = []
    failures = 0
    for op, payload in ops:
        try:
            if op == "insert":
                db.insert(payload)
            else:
                db.delete(payload)
        except (FaultInjectedError, ObjectNotFoundError):
            # A delete can target an id whose insert the fault plan already
            # rejected — equally unacknowledged, equally absent from the log.
            failures += 1
        else:
            acknowledged.append((op, payload))
    return acknowledged, failures


def _exact_knn_distances(db, result, query, alpha):
    out = []
    for neighbor in result.neighbors:
        d = neighbor.distance
        if d is None:
            d = alpha_distance(db.get_object(neighbor.object_id), query, alpha)
        out.append(float(d))
    return sorted(out)


def _parity(recovered, twin, queries, failures, label):
    for i, query in enumerate(queries):
        r = recovered.execute(AknnRequest(query, k=5, alpha=0.4))
        t = twin.execute(AknnRequest(query, k=5, alpha=0.4))
        _check(
            np.allclose(
                _exact_knn_distances(recovered, r, query, 0.4),
                _exact_knn_distances(twin, t, query, 0.4),
                atol=1e-9,
            ),
            f"{label}: AKNN parity (query {i})",
            failures,
        )
        r = recovered.execute(RangeRequest(query, alpha=0.5, radius=3.0))
        t = twin.execute(RangeRequest(query, alpha=0.5, radius=3.0))
        _check(
            sorted(m[0] for m in r.matches) == sorted(m[0] for m in t.matches),
            f"{label}: range parity (query {i})",
            failures,
        )
        r = recovered.execute(SweepRequest(query, k=3, alpha_range=(0.2, 0.9)))
        t = twin.execute(SweepRequest(query, k=3, alpha_range=(0.2, 0.9)))
        same = set(r.assignments) == set(t.assignments) and all(
            r.assignments[oid].approx_equal(t.assignments[oid], tol=1e-7)
            for oid in r.assignments
        )
        _check(same, f"{label}: sweep parity (query {i})", failures)
        r = recovered.execute(ReverseRequest(query, k=2, alpha=0.5))
        t = twin.execute(ReverseRequest(query, k=2, alpha=0.5))
        _check(
            sorted(r.object_ids) == sorted(t.object_ids),
            f"{label}: reverse parity (query {i})",
            failures,
        )


def phase_single(seed: int, workdir: Path, failures: list) -> None:
    print("phase 1: single node, random WAL cut")
    rng = np.random.default_rng(seed)
    config = RuntimeConfig(snapshot_every=0)
    objects = build_dataset(kind="synthetic", n_objects=40, points_per_object=24,
                            seed=seed, space_size=8.0)
    queries = [generate_query_object(rng, kind="synthetic", space_size=8.0,
                                     points_per_object=24) for _ in range(2)]
    durable = workdir / "single"
    db = FuzzyDatabase.build(objects, config=config)
    db.enable_durability(durable)
    ops = _scripted_ops(rng, db.object_ids(), 30, next_id=1000)
    _apply(db, ops)

    wal_bytes = (durable / "wal.log").read_bytes()
    cut = int(rng.integers(8, len(wal_bytes)))
    crashed = workdir / "single-crashed"
    shutil.copytree(durable, crashed)
    (crashed / "wal.log").write_bytes(wal_bytes[:cut])
    print(f"  cut WAL at byte {cut}/{len(wal_bytes)}")

    recovered = FuzzyDatabase.recover(crashed, config=config, resume=False)
    counters = recovered.metrics.as_dict()
    replayed = counters.get(MetricsCollector.WAL_REPLAYED, 0)
    _check(counters.get(MetricsCollector.RECOVERIES) == 1, "one recovery", failures)
    _check(counters.get(MetricsCollector.BULK_LOADS, 0) >= 1,
           "recovery rebuilt the tree via STR bulk load", failures)
    _check(0 <= replayed <= len(ops), f"replayed a prefix ({replayed} records)",
           failures)

    twin = FuzzyDatabase.build(objects, config=config)
    _apply(twin, ops[:replayed])
    _check(sorted(recovered.object_ids()) == sorted(twin.object_ids()),
           "object ids match the twin", failures)
    _parity(recovered, twin, queries, failures, "single")
    recovered.close()
    twin.close()
    db.close()


def phase_sharded(seed: int, workdir: Path, failures: list) -> None:
    print("phase 2: sharded, one shard crashes mid-append")
    rng = np.random.default_rng(seed + 1)
    config = RuntimeConfig(snapshot_every=0, service_shards=3)
    objects = build_dataset(kind="synthetic", n_objects=45, points_per_object=24,
                            seed=seed + 1, space_size=8.0)
    queries = [generate_query_object(rng, kind="synthetic", space_size=8.0,
                                     points_per_object=24) for _ in range(2)]
    durable = workdir / "sharded"
    sharded = ShardedDatabase.build(objects, n_shards=3, config=config)
    sharded.enable_durability(durable)
    sharded.fault_plan = FaultPlan.parse("shard=1,op=wal_append,kind=raise,after=5")

    ops = _scripted_ops(rng, sharded.object_ids(), 36, next_id=2000)
    acknowledged, injected = _apply(sharded, ops)
    _check(injected > 0, f"fault plan fired ({injected} rejected mutations)", failures)

    crashed = workdir / "sharded-crashed"
    shutil.copytree(durable, crashed)
    recovered = ShardedDatabase.recover(crashed, config=config)
    counters = recovered.metrics.as_dict()
    _check(counters.get(MetricsCollector.RECOVERIES) == 3,
           "all three shards recovered", failures)
    _check(counters.get(MetricsCollector.BULK_LOADS) == 3,
           "one STR bulk load per shard", failures)

    twin = ShardedDatabase.build(objects, n_shards=3, config=config)
    _apply(twin, acknowledged)
    _check(sorted(recovered.object_ids()) == sorted(twin.object_ids()),
           "object ids match the acknowledged-ops twin", failures)
    try:
        recovered.validate()
        _check(True, "recovered deployment validates", failures)
    except Exception as exc:  # pragma: no cover - failure path
        _check(False, f"recovered deployment validates ({exc})", failures)
    _parity(recovered, twin, queries, failures, "sharded")
    recovered.close()
    twin.close()
    sharded.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    failures: list = []
    with tempfile.TemporaryDirectory(prefix="recovery-smoke-") as tmp:
        workdir = Path(tmp)
        phase_single(args.seed, workdir, failures)
        phase_sharded(args.seed, workdir, failures)

    if failures:
        print(f"\nrecovery smoke FAILED ({len(failures)} checks):")
        for label in failures:
            print(f"  - {label}")
        return 1
    print("\nrecovery smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
