"""CI gate: the serving layer survives randomized fault injection.

Drives two chaos phases against a sharded :class:`QueryService` and asserts
the failure-semantics contract held:

1. **Transient chaos** — a seeded :meth:`FaultPlan.random` plan (bounded
   ``count`` per rule, so retries eventually win) under a mixed-type
   workload.  Every submitted future must complete within its timeout (zero
   hung futures) and the retry counter must be non-zero — i.e. the injected
   faults actually exercised the retry path rather than being absorbed
   silently.

2. **Dead shard** — a permanent ``raise`` rule on one shard with a small
   breaker threshold.  Every future must still complete, every answer must
   carry partial coverage naming the dead shard, the breaker must reach
   OPEN (non-zero ``breaker_open``), and once open the shard must stop
   being invoked at all (the fault plan's fired count freezes while
   ``breaker_shed`` keeps climbing).

Run locally::

    PYTHONPATH=src python scripts/chaos_smoke.py --seed 7
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import RuntimeConfig  # noqa: E402
from repro.core.requests import (  # noqa: E402
    AknnRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
)
from repro.datasets.builder import build_dataset  # noqa: E402
from repro.datasets.queries import generate_query_object  # noqa: E402
from repro.metrics.counters import MetricsCollector  # noqa: E402
from repro.service import (  # noqa: E402
    BreakerState,
    FaultPlan,
    QueryService,
    ShardedDatabase,
)

FUTURE_TIMEOUT_S = 120.0  # "hung" means missing even this generous bound


def _check(condition: bool, label: str, failures: list) -> None:
    print(f"  {'ok  ' if condition else 'FAIL'} {label}")
    if not condition:
        failures.append(label)


def _mixed_requests(queries, n: int):
    requests = []
    for i in range(n):
        query = queries[i % len(queries)]
        kind = i % 16
        if kind < 8:
            requests.append(AknnRequest(query, k=2 + i % 3, alpha=0.5))
        elif kind < 12:
            requests.append(RangeRequest(query, alpha=0.5, radius=2.0 + i % 2))
        elif kind < 15:
            requests.append(ReverseRequest(query, k=2, alpha=0.5))
        else:
            requests.append(SweepRequest(query, k=2, alpha_range=(0.45, 0.55)))
    return requests


def _build(objects, **config_overrides) -> ShardedDatabase:
    config = RuntimeConfig(
        rtree_max_entries=8,
        cache_capacity=32,
        shard_retry_attempts=3,
        shard_retry_base_ms=0.5,
        shard_retry_max_ms=2.0,
        **config_overrides,
    )
    return ShardedDatabase.build(objects, n_shards=3, placement="hash", config=config)


def _run_workload(database, requests) -> list:
    """Submit everything through a service; return results, never hang."""
    with QueryService(database, window_ms=1.0, max_batch=32) as service:
        futures = [service.submit_request(request) for request in requests]
        return [future.result(timeout=FUTURE_TIMEOUT_S) for future in futures]


def phase_transient(objects, queries, seed: int, n_requests: int, failures: list):
    print(f"\n=== phase 1: transient chaos (seed {seed}) ===")
    database = _build(objects)
    try:
        plan = FaultPlan.random(
            np.random.default_rng(seed), n_shards=database.n_shards, n_rules=6
        )
        database.fault_plan = plan
        print(f"  plan: {plan!r}")
        results = _run_workload(database, _mixed_requests(queries, n_requests))
        counters = database.metrics.as_dict()
        _check(len(results) == n_requests, "every future completed", failures)
        _check(
            all(r.coverage is None or r.coverage.answered for r in results),
            "every answer has at least one contributing shard",
            failures,
        )
        _check(plan.total_fired() > 0, "the fault plan actually fired", failures)
        _check(
            counters.get(MetricsCollector.RETRIES, 0) > 0,
            "retries counter is non-zero",
            failures,
        )
    finally:
        database.close()


def phase_dead_shard(objects, queries, n_requests: int, failures: list):
    print("\n=== phase 2: permanent dead shard ===")
    database = _build(
        objects,
        breaker_failure_threshold=2,
        breaker_reset_timeout_ms=60_000.0,
    )
    try:
        dead = 1
        plan = FaultPlan.parse(f"shard={dead},kind=raise")
        database.fault_plan = plan
        results = _run_workload(database, _mixed_requests(queries, n_requests))
        counters = database.metrics.as_dict()
        _check(len(results) == n_requests, "every future completed", failures)
        _check(
            all(
                r.coverage is not None and dead in r.coverage.failed
                for r in results
            ),
            "every answer is partial and names the dead shard",
            failures,
        )
        _check(
            database._shards[dead].breaker.state is BreakerState.OPEN,
            "the dead shard's breaker reached OPEN",
            failures,
        )
        _check(
            counters.get(MetricsCollector.BREAKER_OPEN, 0) > 0,
            "breaker_open counter is non-zero",
            failures,
        )
        _check(
            counters.get(MetricsCollector.PARTIAL_RESULTS, 0) >= n_requests,
            "every partial answer was counted",
            failures,
        )
        # Once open, the shard is shed at admission: no further invocations.
        fired_before = plan.total_fired()
        _run_workload(database, _mixed_requests(queries, 8))
        _check(
            plan.total_fired() == fired_before,
            "open breaker sheds without touching the shard",
            failures,
        )
    finally:
        database.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--n-requests", type=int, default=48)
    parser.add_argument("--n-objects", type=int, default=48)
    args = parser.parse_args(argv)

    objects = build_dataset(
        kind="synthetic",
        n_objects=args.n_objects,
        points_per_object=12,
        seed=args.seed,
        space_size=8.0,
    )
    rng = np.random.default_rng(args.seed + 1)
    queries = [
        generate_query_object(rng, kind="synthetic", space_size=8.0, points_per_object=12)
        for _ in range(4)
    ]

    failures: list = []
    phase_transient(objects, queries, args.seed, args.n_requests, failures)
    phase_dead_shard(objects, queries, args.n_requests, failures)

    if failures:
        print(f"\nchaos smoke FAILED: {failures}")
        return 1
    print("\nchaos smoke passed: zero hung futures, retry and breaker paths exercised")
    return 0


if __name__ == "__main__":
    sys.exit(main())
