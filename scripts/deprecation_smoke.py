"""CI gate: no in-repo caller may use the deprecated per-type query methods.

Escalates :class:`repro.core.requests.LegacyQueryAPIWarning` — the warning
every legacy shim emits — to an error, then drives the CLI surface end to
end (including one mixed-type AKNN + reverse + range batch through
``fuzzy-knn serve`` under live updates) and the quick benchmark harnesses.
Any code path that still routes through a shim fails the run.

The category is installed programmatically because ``PYTHONWARNINGS`` /
``-W`` resolve custom categories during early interpreter startup, before
the package is importable.

Run locally::

    PYTHONPATH=src python scripts/deprecation_smoke.py
"""

from __future__ import annotations

import importlib.util
import sys
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.requests import LegacyQueryAPIWarning  # noqa: E402

warnings.simplefilter("error", LegacyQueryAPIWarning)

from repro.cli import main as cli_main  # noqa: E402


def _load_benchmark(name: str):
    path = REPO_ROOT / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main() -> int:
    cli_runs = [
        ["aknn", "--n-objects", "60", "--points-per-object", "16",
         "--k", "4", "--space-size", "6"],
        ["rknn", "--n-objects", "40", "--points-per-object", "16",
         "--k", "3", "--space-size", "6"],
        ["reverse", "--n-objects", "40", "--points-per-object", "16",
         "--k", "3", "--space-size", "6"],
        ["batch", "--n-objects", "60", "--points-per-object", "16",
         "--k", "4", "--n-queries", "12", "--space-size", "6", "--stats"],
        # The mixed-type batch smoke: AKNN + reverse + range interleaved
        # through the coalescing service, with live insert/delete churn.
        ["serve", "--n-objects", "80", "--points-per-object", "16",
         "--k", "4", "--space-size", "6", "--shards", "2",
         "--n-requests", "24", "--clients", "2", "--query-pool", "8",
         "--mix", "aknn,reverse,range", "--update-ops", "2", "--stats"],
    ]
    for argv in cli_runs:
        print(f"\n=== fuzzy-knn {' '.join(argv[:1])} (deprecation-clean) ===")
        code = cli_main(argv)
        if code != 0:
            print(f"FAIL: fuzzy-knn {argv[0]} exited {code}")
            return code

    for name, extra in [
        ("bench_batch_executor", ["--quick", "--output", "/tmp/BENCH_batch.json"]),
        ("bench_rknn", ["--quick", "--output", "/tmp/BENCH_rknn.json"]),
    ]:
        print(f"\n=== {name} --quick (deprecation-clean) ===")
        code = _load_benchmark(name).main(extra)
        if code != 0:
            print(f"FAIL: {name} exited {code}")
            return code

    print("\nall in-repo callers are on the unified request surface")
    return 0


if __name__ == "__main__":
    sys.exit(main())
