"""CI gate: standing queries stay exact under churn through the service.

Drives a sharded :class:`QueryService` with a handful of AKNN + range
subscriptions while a seeded mutation stream (inserts and deletes, routed
through the service) churns the deployment, then asserts:

* **Delta parity** — folding each subscription's delta stream into an empty
  member map reproduces exactly the result of re-executing its request from
  scratch, and every stream is gap-free in ``seq``.
* **Screening** — the vectorised bound kernel dismissed at least one insert
  without paying an exact distance evaluation (SUB_SCREENED_OUT > 0), and a
  member delete triggered at least one targeted re-query (SUB_REQUERIES).
* **Shedding** — a depth-1 consumer is shed (stream closed, counter bumped,
  subscription torn down) instead of stalling mutations.

Run locally::

    PYTHONPATH=src python scripts/subscription_smoke.py --seed 7
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import RuntimeConfig  # noqa: E402
from repro.core.requests import AknnRequest, RangeRequest  # noqa: E402
from repro.datasets.builder import build_dataset  # noqa: E402
from repro.datasets.queries import generate_query_object  # noqa: E402
from repro.fuzzy.alpha_distance import alpha_distance  # noqa: E402
from repro.fuzzy.fuzzy_object import FuzzyObject  # noqa: E402
from repro.metrics.counters import MetricsCollector  # noqa: E402
from repro.service import QueryService, ShardedDatabase  # noqa: E402


def _check(condition: bool, label: str, failures: list) -> None:
    print(f"  {'ok  ' if condition else 'FAIL'} {label}")
    if not condition:
        failures.append(label)


def _fold(deltas):
    members, seqs = {}, []
    for delta in deltas:
        seqs.append(delta.seq)
        for object_id in delta.removed:
            members.pop(object_id, None)
        for object_id, distance in delta.added:
            members[object_id] = distance
    return members, seqs == list(range(len(seqs)))


def _reference(database, sub):
    result = database.execute(sub.request)
    if hasattr(result, "neighbors"):
        out = {}
        for neighbor in result.neighbors:
            d = neighbor.distance
            if d is None:
                obj = database.get_object(neighbor.object_id)
                d = alpha_distance(obj, sub.request.query, sub.alpha)
            out[int(neighbor.object_id)] = float(d)
        return out
    return {int(oid): float(d) for oid, d in result.matches}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mutations", type=int, default=60)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    failures: list = []
    config = RuntimeConfig(service_shards=3)
    objects = build_dataset(kind="synthetic", n_objects=45, points_per_object=24,
                            seed=args.seed, space_size=8.0)
    database = ShardedDatabase.build(objects, n_shards=3, config=config)
    service = QueryService(database).start()

    queries = [generate_query_object(rng, kind="synthetic", space_size=8.0,
                                     points_per_object=24) for _ in range(3)]
    deliveries = [
        service.subscribe(AknnRequest(queries[0], k=5, alpha=0.4)),
        service.subscribe(AknnRequest(queries[1], k=3, alpha=0.6)),
        service.subscribe(RangeRequest(queries[2], alpha=0.5, radius=3.0)),
    ]
    print(f"subscribed {service.subscriptions} standing queries")

    # Churn: mixed inserts/deletes through the service, including far-away
    # inserts that the vectorised screen should dismiss for every answer.
    live = list(database.object_ids())
    next_id = 1000
    for step in range(args.mutations):
        if step % 3 == 2 and len(live) > 10:
            service.delete(live.pop(int(rng.integers(0, len(live)))))
        elif step % 5 == 4:
            base = generate_query_object(rng, kind="synthetic", space_size=8.0,
                                         points_per_object=24)
            far = FuzzyObject(base.points + 500.0, base.memberships,
                              object_id=next_id)
            service.insert(far)
            live.append(next_id)
            next_id += 1
        else:
            obj = generate_query_object(rng, kind="synthetic", space_size=8.0,
                                        points_per_object=24)
            service.insert(obj.with_id(next_id))
            live.append(next_id)
            next_id += 1

    for index, delivery in enumerate(deliveries):
        members, gap_free = _fold(delivery.drain())
        _check(gap_free, f"subscription {index}: delta stream is gap-free", failures)
        reference = _reference(database, delivery.subscription)
        same = sorted(members) == sorted(reference) and all(
            abs(members[oid] - reference[oid]) < 1e-9 for oid in reference
        )
        _check(same, f"subscription {index}: delta fold == re-execution "
                     f"({len(reference)} members)", failures)

    counters = service.metrics.as_dict()
    _check(counters.get(MetricsCollector.SUB_DELTAS, 0) > 0,
           f"deltas pushed ({counters.get(MetricsCollector.SUB_DELTAS, 0)})",
           failures)
    _check(counters.get(MetricsCollector.SUB_SCREENED_OUT, 0) > 0,
           f"inserts screened by the bound kernel "
           f"({counters.get(MetricsCollector.SUB_SCREENED_OUT, 0)})", failures)
    _check(counters.get(MetricsCollector.SUB_REQUERIES, 0) > 0,
           f"member deletes re-queried "
           f"({counters.get(MetricsCollector.SUB_REQUERIES, 0)})", failures)

    # Slow consumer: a depth-1 queue must shed, not stall.
    slow = service.subscribe(AknnRequest(queries[0], k=5, alpha=0.4), depth=1)
    for _ in range(20):
        if slow.shed:
            break
        obj = generate_query_object(rng, kind="synthetic", space_size=8.0,
                                    points_per_object=24)
        service.insert(obj.with_id(next_id))
        next_id += 1
    _check(slow.shed and slow.closed, "slow consumer shed and closed", failures)
    _check(service.metrics.get(MetricsCollector.SUBSCRIBERS_SHED) >= 1,
           "shed counter bumped", failures)
    _check(service.subscriptions == 3, "shed subscription torn down", failures)

    service.stop()
    database.close()

    if failures:
        print(f"\nsubscription smoke FAILED ({len(failures)} checks):")
        for label in failures:
            print(f"  - {label}")
        return 1
    print("\nsubscription smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
