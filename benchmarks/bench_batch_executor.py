"""Benchmark: vectorized batch executor vs. looped single-query AKNN.

Measures a 64-query AKNN submission (paper-style synthetic dataset, n=10k
objects by default) through ``Database.execute_batch`` — the planner answers
the whole bucket with one shared traversal — against looping single
``AknnRequest`` executions, asserts the neighbour sets are identical, and
writes the ``BENCH_batch.json`` baseline next to this file so the
performance trajectory of the batch engine is tracked from PR to PR.

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_executor.py
    PYTHONPATH=src python benchmarks/bench_batch_executor.py --quick

The default configuration warms every caching layer first (store buffer
pool, per-object alpha-cut caches, node alpha caches, representative index)
so both paths are measured steady-state, which is the regime the batch
engine targets.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import scipy

from repro.config import RuntimeConfig
from repro.core.requests import AknnRequest
from repro.datasets.builder import DatasetBundle

BASELINE_PATH = Path(__file__).parent / "BENCH_batch.json"


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-objects", type=int, default=10_000)
    parser.add_argument("--points-per-object", type=int, default=40)
    parser.add_argument("--n-queries", type=int, default=64)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument("--method", default="lb_lp_ub")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny configuration for smoke-testing the harness",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero when the measured speedup falls below this factor",
    )
    parser.add_argument(
        "--output", type=Path, default=BASELINE_PATH,
        help="where to write the JSON baseline (default: benchmarks/BENCH_batch.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n_objects = 500
        args.points_per_object = 16
        args.n_queries = 16
        args.k = 5
        args.repeats = 1
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    config = RuntimeConfig(cache_capacity=args.cache_capacity)
    print(
        f"building synthetic dataset: n={args.n_objects}, "
        f"points/object={args.points_per_object} ...",
        flush=True,
    )
    t0 = time.perf_counter()
    bundle = DatasetBundle.create(
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        config=config,
    )
    database = bundle.database
    queries = bundle.queries(args.n_queries)
    print(f"build took {time.perf_counter() - t0:.1f}s")

    requests = [
        AknnRequest(query, k=args.k, alpha=args.alpha, method=args.method)
        for query in queries
    ]

    # Warm every caching layer so both paths are measured steady-state.
    for request in requests:
        database.execute(request)
    database.execute_batch(requests)

    loop_seconds = np.inf
    loop_results = None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        loop_results = [database.execute(request) for request in requests]
        loop_seconds = min(loop_seconds, time.perf_counter() - t0)

    batch_seconds = np.inf
    batch_results = None
    for _ in range(args.repeats):
        database.reset_statistics()
        t0 = time.perf_counter()
        batch_results = database.execute_batch(requests)
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)
    batch_object_accesses = database.object_accesses

    for single, result in zip(loop_results, batch_results):
        assert set(single.object_ids) == set(result.object_ids), (
            "batch executor diverged from the single-query path: "
            f"{sorted(single.object_ids)} != {sorted(result.object_ids)}"
        )

    speedup = loop_seconds / batch_seconds
    qps = args.n_queries / batch_seconds
    print(
        f"\nloop : {loop_seconds * 1000:8.1f} ms "
        f"({loop_seconds / args.n_queries * 1000:.2f} ms/query)"
    )
    print(f"batch: {batch_seconds * 1000:8.1f} ms ({qps:.0f} queries/sec)")
    print(f"speedup: {speedup:.2f}x (identical results)")

    baseline = {
        "benchmark": "bench_batch_executor",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_objects": args.n_objects,
            "points_per_object": args.points_per_object,
            "n_queries": args.n_queries,
            "k": args.k,
            "alpha": args.alpha,
            "method": args.method,
            "cache_capacity": args.cache_capacity,
            "repeats": args.repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": speedup,
        "throughput_qps": qps,
        "batch_stats": {
            "object_accesses": batch_object_accesses,
            "distance_evaluations": sum(
                result.stats.distance_evaluations for result in batch_results
            ),
        },
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"baseline written to {args.output}")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
