"""Figures 13c/14c: RKNN cost versus the probability range length L.

Reproduced claims: the basic sweep deteriorates quickly as the range grows
(more AKNN queries are issued), while the object accesses of RSS / RSS-ICR
are insensitive to L (one AKNN query plus one range search regardless of L);
the advantage of the improved candidate refinement grows with L.
"""

from benchmarks.conftest import BENCH_SCALE, series_average, write_report
from repro.bench.experiments import rknn_range_sweep


def test_report_fig13c_14c_rknn_vs_range(benchmark):
    result = benchmark.pedantic(
        lambda: rknn_range_sweep(BENCH_SCALE), rounds=1, iterations=1
    )
    write_report("fig13c_14c_rknn_range", result)

    basic_accesses = dict(result.series("basic", "object_accesses"))
    basic_calls = dict(result.series("basic", "aknn_calls"))
    rss_accesses = dict(result.series("rss", "object_accesses"))
    lengths = sorted(basic_accesses)
    shortest, longest = lengths[0], lengths[-1]

    # The basic method issues more AKNN calls (and accesses more objects) as
    # the range grows; RSS stays essentially flat.
    assert basic_calls[longest] >= basic_calls[shortest]
    assert basic_accesses[longest] >= basic_accesses[shortest]
    spread = max(rss_accesses.values()) - min(rss_accesses.values())
    assert spread <= 0.5 * max(basic_accesses.values())
    # RSS dominates basic at the longest range by a wide margin.
    assert rss_accesses[longest] * 3 <= basic_accesses[longest]

    assert series_average(result, "rss_icr", "refinement_steps") <= series_average(
        result, "rss", "refinement_steps"
    )
