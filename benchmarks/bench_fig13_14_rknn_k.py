"""Figures 13b/14b: RKNN cost versus the number of requested neighbours k.

Reproduced claims: cost grows with k for every method, the optimised methods
keep their large advantage in object accesses across all k, and RSS-ICR never
needs more refinement steps than RSS.
"""

from benchmarks.conftest import BENCH_SCALE, series_average, write_report
from repro.bench.experiments import rknn_k_sweep


def test_report_fig13b_14b_rknn_vs_k(benchmark):
    result = benchmark.pedantic(lambda: rknn_k_sweep(BENCH_SCALE), rounds=1, iterations=1)
    write_report("fig13b_14b_rknn_k", result)

    basic = dict(result.series("basic", "object_accesses"))
    rss = dict(result.series("rss", "object_accesses"))
    k_values = sorted(basic)
    for k in k_values:
        assert rss[k] <= basic[k]
    # The basic sweep's running time grows with k (more critical probabilities
    # to check); so does its object access count.
    assert basic[k_values[-1]] >= basic[k_values[0]]

    assert series_average(result, "rss_icr", "refinement_steps") <= series_average(
        result, "rss", "refinement_steps"
    )
