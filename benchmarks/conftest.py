"""Shared fixtures and helpers for the benchmark suite.

Every figure of the paper's evaluation has a corresponding ``bench_*`` module.
Two kinds of benchmarks exist:

* *method micro-benchmarks* — a single query per AKNN / RKNN method on a
  shared database; the pytest-benchmark timing table is the running-time
  panel of the figure (Figures 12, 14, 15b).
* *figure reports* — one benchmark running the full parameter sweep of a
  figure through :mod:`repro.bench.experiments` (one round), asserting the
  qualitative claims of the paper and writing the reproduced table to
  ``benchmarks/results/<figure>.txt`` so it can be inspected and diffed.

The scale is deliberately tiny (hundreds of objects, tens of points) so the
whole suite finishes in a few minutes; ``repro.bench.config.LAPTOP_SCALE`` and
the CLI reproduce the same figures at a larger scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.reporting import result_to_full_text
from repro.config import RuntimeConfig
from repro.datasets.builder import DatasetBundle

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale used by every figure report: small enough for pytest-benchmark,
#: dense enough (paper-matched density) for the method ordering to show.
BENCH_SCALE = ExperimentConfig(
    n_objects=400,
    points_per_object=60,
    n_values=(100, 200, 400),
    k_values=(5, 10, 20),
    alpha_values=(0.3, 0.5, 0.7, 0.9),
    range_lengths=(0.05, 0.1, 0.2),
    k=10,
    n_queries=2,
    runtime=RuntimeConfig(rtree_max_entries=16),
)


def write_report(name: str, result) -> Path:
    """Persist a reproduced figure table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(result_to_full_text(result) + "\n", encoding="utf-8")
    return path


def series_average(result, method: str, metric: str) -> float:
    """Average of one metric over a method's series (helper for assertions)."""
    values = [value for _, value in result.series(method, metric)]
    return sum(values) / len(values) if values else 0.0


@pytest.fixture(scope="session")
def bench_bundle() -> DatasetBundle:
    """Shared synthetic database at the benchmark scale (default parameters)."""
    bundle = DatasetBundle.create(
        kind="synthetic",
        n_objects=BENCH_SCALE.n_objects,
        points_per_object=BENCH_SCALE.points_per_object,
        seed=BENCH_SCALE.seed,
        space_size=BENCH_SCALE.space_for(),
        config=BENCH_SCALE.runtime,
        query_seed=BENCH_SCALE.query_seed,
    )
    yield bundle
    bundle.database.close()


@pytest.fixture(scope="session")
def bench_queries(bench_bundle) -> list:
    """Query objects for the shared database."""
    return bench_bundle.queries(BENCH_SCALE.n_queries)
