"""Ablation: brute-force versus KD-tree closest-pair kernels.

The alpha-distance evaluation is a closest-pair problem between two point
sets.  The library switches from a vectorised brute-force kernel to a KD-tree
kernel above a size threshold; this ablation benchmarks both kernels across
set sizes so the cross-over choice is visible.
"""

import numpy as np
import pytest

from repro.geometry.distance import closest_pair_distance


@pytest.mark.parametrize("size", [64, 256, 1024])
@pytest.mark.parametrize("kernel", ["brute_force", "kdtree"])
def test_closest_pair_kernel(benchmark, size, kernel):
    rng = np.random.default_rng(size)
    points_a = rng.random((size, 2)) * 10.0
    points_b = rng.random((size, 2)) * 10.0 + 5.0
    use_kdtree = kernel == "kdtree"

    result = benchmark(
        lambda: closest_pair_distance(points_a, points_b, use_kdtree=use_kdtree)
    )
    # Both kernels must return the same exact distance.
    reference = closest_pair_distance(points_a, points_b, use_kdtree=False)
    assert result == pytest.approx(reference)
