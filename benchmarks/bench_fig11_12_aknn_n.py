"""Figures 11a/12a: AKNN cost versus dataset size N.

Reproduced claims: every method accesses more objects as N grows (the space
gets denser), and the optimised methods stay at or below the basic search at
every N, with the gap widening for larger datasets.
"""

from benchmarks.conftest import BENCH_SCALE, write_report
from repro.bench.experiments import aknn_n_sweep


def test_report_fig11a_12a_aknn_vs_n(benchmark):
    result = benchmark.pedantic(lambda: aknn_n_sweep(BENCH_SCALE), rounds=1, iterations=1)
    write_report("fig11a_12a_aknn_n", result)

    basic = dict(result.series("basic", "object_accesses"))
    optimised = dict(result.series("lb_lp_ub", "object_accesses"))
    n_values = sorted(basic)
    # Access counts grow with N for the basic method.
    assert basic[n_values[-1]] >= basic[n_values[0]]
    # The optimised method never accesses more objects than basic.
    for n in n_values:
        assert optimised[n] <= basic[n] + 1e-9
