"""Ablation: R-tree construction strategy and fan-out.

Compares STR bulk loading against one-by-one insertion (quadratic split) and
different node capacities, measuring build time and the node accesses of a
subsequent AKNN query batch.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.aknn import AKNNSearcher
from repro.fuzzy.summary import build_summary
from repro.index.rtree import RTree


@pytest.fixture(scope="module")
def summaries(bench_bundle):
    database = bench_bundle.database
    return [database.summaries[object_id] for object_id in database.object_ids()]


@pytest.mark.parametrize("strategy", ["bulk_load", "insert"])
def test_rtree_construction(benchmark, summaries, strategy):
    if strategy == "bulk_load":
        tree = benchmark(lambda: RTree.bulk_load(summaries, max_entries=16))
    else:
        def build():
            tree = RTree(max_entries=16)
            for summary in summaries:
                tree.insert(summary)
            return tree

        tree = benchmark.pedantic(build, rounds=2, iterations=1)
    tree.validate()
    benchmark.extra_info["height"] = tree.height
    benchmark.extra_info["nodes"] = tree.node_count()


@pytest.mark.parametrize("max_entries", [8, 32, 64])
def test_rtree_fanout_query_cost(benchmark, bench_bundle, bench_queries, max_entries):
    database = bench_bundle.database
    summaries = [database.summaries[object_id] for object_id in database.object_ids()]
    tree = RTree.bulk_load(summaries, max_entries=max_entries)
    searcher = AKNNSearcher(database.store, tree)
    query = bench_queries[0]

    def run():
        return searcher.search(query, k=BENCH_SCALE.k, alpha=BENCH_SCALE.alpha, method="lb")

    result = benchmark(run)
    benchmark.extra_info["node_accesses"] = result.stats.node_accesses
    benchmark.extra_info["object_accesses"] = result.stats.object_accesses
    assert len(result) == BENCH_SCALE.k
