"""Ablation: conservative-line approximation versus the exact alpha-cut MBR.

The improved lower bound reconstructs ``M_A(alpha)*`` from two linear
functions per dimension (Equation 2) instead of storing one MBR per
membership level.  This ablation measures what that compression costs in
bound tightness: for a sample of database objects it compares

* the approximated lower bound  ``MinDist(M_A(alpha)*, M_Q(alpha))`` against
* the ideal lower bound          ``MinDist(M_A(alpha),  M_Q(alpha))``

and records the average tightness ratio in ``extra_info`` while benchmarking
the evaluation cost of each variant.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.query import PreparedQuery
from repro.geometry.mbr import min_dist

SAMPLE_OBJECTS = 50


def _sample_ids(database):
    ids = database.object_ids()
    step = max(1, len(ids) // SAMPLE_OBJECTS)
    return ids[::step][:SAMPLE_OBJECTS]


@pytest.mark.parametrize("variant", ["lopt_approximation", "exact_alpha_mbr"])
def test_lower_bound_variant(benchmark, bench_bundle, bench_queries, variant):
    database = bench_bundle.database
    query = bench_queries[0]
    alpha = 0.7
    prepared = PreparedQuery(query, alpha)
    ids = _sample_ids(database)
    summaries = [database.summaries[object_id] for object_id in ids]
    objects = [database.get_object(object_id) for object_id in ids]

    if variant == "lopt_approximation":
        def run():
            return [prepared.improved_lower_bound(summary) for summary in summaries]
    else:
        def run():
            return [
                min_dist(prepared.query_mbr, obj.alpha_mbr(alpha)) for obj in objects
            ]

    bounds = benchmark(run)

    exact_bounds = np.array(
        [min_dist(prepared.query_mbr, obj.alpha_mbr(alpha)) for obj in objects]
    )
    approx_bounds = np.array(bounds)
    # The approximation can only be looser (smaller), never tighter.
    assert np.all(approx_bounds <= exact_bounds + 1e-9)
    positive = exact_bounds > 1e-12
    ratio = float(np.mean(approx_bounds[positive] / exact_bounds[positive])) if positive.any() else 1.0
    benchmark.extra_info["tightness_vs_exact"] = round(ratio, 4)
