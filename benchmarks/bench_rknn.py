"""Benchmark: vectorized batch reverse-kNN vs. the looped ``pruned`` path.

Measures reverse AKNN queries (paper-style synthetic dataset, n=5k objects
by default) through the rebuilt ``method="batch"`` engine — vectorized
all-pairs candidate filter over the SoA summary arrays plus one shared
batch-verification traversal — against the looped ``pruned`` path (O(N^2)
Python filter, one single-query AKNN per candidate), asserts the
reverse-neighbour sets are identical, and writes the ``BENCH_rknn.json``
baseline next to this file so the performance trajectory of the reverse
engine is tracked from PR to PR.

Run directly::

    PYTHONPATH=src python benchmarks/bench_rknn.py
    PYTHONPATH=src python benchmarks/bench_rknn.py --quick

``--quick`` shrinks the dataset for CI smoke runs and additionally pins
three-way parity (``linear`` == ``pruned`` == ``batch``), so a silent
divergence of the new engine fails the workflow.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import scipy

from repro.config import RuntimeConfig
from repro.core.requests import ReverseRequest
from repro.datasets.builder import DatasetBundle

BASELINE_PATH = Path(__file__).parent / "BENCH_rknn.json"


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-objects", type=int, default=5_000)
    parser.add_argument("--points-per-object", type=int, default=16)
    parser.add_argument("--n-queries", type=int, default=4)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="repeats of the batch side (the looped side runs once)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny configuration for smoke-testing the harness (adds a "
        "three-way linear/pruned/batch parity assert)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero when the measured speedup falls below this factor",
    )
    parser.add_argument(
        "--output", type=Path, default=BASELINE_PATH,
        help="where to write the JSON baseline (default: benchmarks/BENCH_rknn.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n_objects = 300
        args.points_per_object = 12
        args.n_queries = 2
        args.k = 4
        args.repeats = 1
    return args


def main(argv=None) -> int:
    args = parse_args(argv)
    config = RuntimeConfig(cache_capacity=args.cache_capacity)
    print(
        f"building synthetic dataset: n={args.n_objects}, "
        f"points/object={args.points_per_object} ...",
        flush=True,
    )
    t0 = time.perf_counter()
    bundle = DatasetBundle.create(
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        config=config,
    )
    database = bundle.database
    queries = bundle.queries(args.n_queries)
    print(f"build took {time.perf_counter() - t0:.1f}s", flush=True)

    # Warm the caching layers (store buffer pool, alpha-cut caches, node
    # alpha caches, representative index) so both paths run steady-state.
    database.execute(ReverseRequest(queries[0], k=args.k, alpha=args.alpha))

    t0 = time.perf_counter()
    pruned_results = [
        database.execute(
            ReverseRequest(query, k=args.k, alpha=args.alpha, method="pruned")
        )
        for query in queries
    ]
    pruned_seconds = time.perf_counter() - t0
    print(
        f"pruned (looped): {pruned_seconds * 1000:8.1f} ms "
        f"({pruned_seconds / args.n_queries * 1000:.1f} ms/query)",
        flush=True,
    )

    batch_seconds = np.inf
    batch_results = None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        batch_results = [
            database.execute(ReverseRequest(query, k=args.k, alpha=args.alpha))
            for query in queries
        ]
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)

    for pruned, batch in zip(pruned_results, batch_results):
        assert pruned.object_ids == batch.object_ids, (
            "batch reverse engine diverged from the pruned path: "
            f"{pruned.object_ids} != {batch.object_ids}"
        )
    if args.quick:
        for query, batch in zip(queries, batch_results):
            linear = database.execute(
                ReverseRequest(query, k=args.k, alpha=args.alpha, method="linear")
            )
            assert linear.object_ids == batch.object_ids, (
                "batch-vs-linear parity failed: "
                f"{linear.object_ids} != {batch.object_ids}"
            )
        print("three-way parity (linear == pruned == batch) OK")

    # One coalesced bucket amortises the filter matrix across the queries.
    t0 = time.perf_counter()
    bucket_results = database.execute_batch(
        [ReverseRequest(query, k=args.k, alpha=args.alpha) for query in queries]
    )
    bucket_seconds = time.perf_counter() - t0
    for batch, bucket in zip(batch_results, bucket_results):
        assert batch.object_ids == bucket.object_ids

    speedup = pruned_seconds / batch_seconds
    print(
        f"batch          : {batch_seconds * 1000:8.1f} ms "
        f"({batch_seconds / args.n_queries * 1000:.1f} ms/query)"
    )
    print(
        f"batch (bucket) : {bucket_seconds * 1000:8.1f} ms "
        f"({bucket_seconds / args.n_queries * 1000:.1f} ms/query, "
        f"one coalesced flush)"
    )
    print(f"speedup: {speedup:.2f}x (identical reverse-neighbour sets)")

    baseline = {
        "benchmark": "bench_rknn",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_objects": args.n_objects,
            "points_per_object": args.points_per_object,
            "n_queries": args.n_queries,
            "k": args.k,
            "alpha": args.alpha,
            "cache_capacity": args.cache_capacity,
            "repeats": args.repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "pruned_seconds": pruned_seconds,
        "batch_seconds": batch_seconds,
        "bucket_seconds": bucket_seconds,
        "speedup": speedup,
        "batch_stats": {
            "candidates": [
                result.stats.extra.get("candidates", 0.0)
                for result in batch_results
            ],
            "reverse_neighbours": [len(result) for result in batch_results],
        },
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"baseline written to {args.output}")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
