"""Figure 15a/15b: AKNN methods on the synthetic vs the (simulated) real dataset.

Reproduced claim: the basic method performs worst on both datasets, the
improved lower bound (LB) cuts object accesses, and LB-LP-UB is the best
method; the relative ordering is the same on both datasets.
"""

from benchmarks.conftest import BENCH_SCALE, series_average, write_report
from repro.bench.experiments import aknn_dataset_sweep


def test_report_fig15_dataset_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: aknn_dataset_sweep(BENCH_SCALE), rounds=1, iterations=1
    )
    write_report("fig15_dataset", result)

    for dataset in ("synthetic", "cells"):
        accesses = {
            method: dict(result.series(method, "object_accesses"))[dataset]
            for method in result.methods()
        }
        # Basic is the worst method; the full optimisation stack is the best.
        assert accesses["lb_lp_ub"] <= accesses["basic"]
        assert accesses["lb"] <= accesses["basic"]
        assert accesses["lb_lp"] <= accesses["lb"] + 1e-9
