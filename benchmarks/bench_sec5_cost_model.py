"""Section 5: the analytical access-cost model against measurements.

Reproduced claims: Equation 8 predicts more object accesses as alpha (or k,
or N) increases, and its prediction stays within an order of magnitude of the
measured basic AKNN search on the matching synthetic dataset.
"""

from benchmarks.conftest import BENCH_SCALE, write_report
from repro.bench.experiments import cost_model_validation


def test_report_sec5_cost_model(benchmark):
    result = benchmark.pedantic(
        lambda: cost_model_validation(BENCH_SCALE), rounds=1, iterations=1
    )
    write_report("sec5_cost_model", result)

    measured = dict(result.series("measured_basic", "object_accesses"))
    predicted = dict(result.series("predicted_eq8", "object_accesses"))
    alphas = sorted(measured)

    # Both curves rise with alpha (the basic search's Figure 11c trend).
    assert measured[alphas[-1]] >= measured[alphas[0]]
    assert predicted[alphas[-1]] >= predicted[alphas[0]]
    # The model is an asymptotic estimate: demand order-of-magnitude agreement.
    for alpha in alphas:
        assert predicted[alpha] / 10 <= measured[alpha] <= predicted[alpha] * 10
