"""Benchmark: the durability subsystem's three cost claims.

1. **STR bulk load vs. incremental build** — recovery and cold ``open()``
   pack the R-tree with one Sort-Tile-Recursive pass instead of one Guttman
   insert (with quadratic splits) per object.  At ``--n-objects`` scale the
   bulk path must be at least ``--min-speedup`` times faster (the PR's
   acceptance gate at n=50k is 5x); ``--quick`` drops the gate, since fixed
   overheads dominate at smoke scale.

2. **WAL overhead on the write path** — sustained insert throughput with
   durability off, with the WAL at ``sync=none`` and at the ``sync=flush``
   default.  Reported as ops/sec; the point of the number is to keep the
   write-ahead tax visible from PR to PR, not to gate it.

3. **Subscription maintenance vs. re-polling** — ``--subscriptions``
   standing kNN queries are kept exact through ``--mutations`` mutations
   via delta maintenance (vectorised screen + targeted re-queries), and the
   same history is replayed against the naive alternative: re-executing
   every registered request after every mutation.  Maintenance must win.

Results land in ``BENCH_durability.json`` next to this file.

Run directly::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import RuntimeConfig  # noqa: E402
from repro.core.database import FuzzyDatabase  # noqa: E402
from repro.core.requests import AknnRequest  # noqa: E402
from repro.fuzzy.fuzzy_object import FuzzyObject  # noqa: E402
from repro.fuzzy.summary import build_summary  # noqa: E402
from repro.index.bulk import bulk_load_tree  # noqa: E402
from repro.index.rtree import RTree  # noqa: E402
from repro.service.subscriptions import SubscriptionEngine  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "BENCH_durability.json"


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-objects", type=int, default=50_000,
                        help="summaries for the bulk-load comparison")
    parser.add_argument("--points-per-object", type=int, default=8)
    parser.add_argument("--wal-inserts", type=int, default=1_500,
                        help="inserts per WAL-throughput pass")
    parser.add_argument("--subscriptions", type=int, default=8)
    parser.add_argument("--mutations", type=int, default=120)
    parser.add_argument("--sub-objects", type=int, default=400,
                        help="database size for the subscription comparison")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required STR-vs-incremental speedup (0 disables the gate)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny configuration for smoke-testing the harness",
    )
    parser.add_argument(
        "--output", type=Path, default=BASELINE_PATH,
        help="where to write the JSON baseline "
             "(default: benchmarks/BENCH_durability.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n_objects = 2_000
        args.wal_inserts = 200
        args.subscriptions = 4
        args.mutations = 30
        args.sub_objects = 120
        args.min_speedup = 0.0  # fixed overheads dominate at smoke scale
    return args


def _objects(rng, n, points, first_id=0, scale=100.0):
    out = []
    centers = rng.random((n, 2)) * scale
    for i in range(n):
        pts = centers[i] + rng.normal(scale=0.5, size=(points, 2))
        memberships = rng.random(points)
        memberships[int(rng.integers(0, points))] = 1.0
        out.append(FuzzyObject(pts, np.clip(memberships, 1e-3, 1.0),
                               object_id=first_id + i))
    return out


def bench_bulk_load(args, rng):
    print(f"[1/3] STR bulk load vs incremental build (n={args.n_objects})")
    objects = _objects(rng, args.n_objects, args.points_per_object)
    summaries = [build_summary(obj, rng=rng) for obj in objects]
    config = RuntimeConfig()

    t0 = time.perf_counter()
    bulk_tree = bulk_load_tree(summaries, config=config)
    t_bulk = time.perf_counter() - t0
    bulk_tree.validate()

    t0 = time.perf_counter()
    incremental = RTree(max_entries=config.rtree_max_entries,
                        min_fill=config.rtree_min_fill)
    for summary in summaries:
        incremental.insert(summary)
    t_incremental = time.perf_counter() - t0
    assert len(incremental) == len(bulk_tree) == args.n_objects

    speedup = t_incremental / t_bulk if t_bulk > 0 else float("inf")
    print(f"      bulk {t_bulk:.3f}s | incremental {t_incremental:.3f}s "
          f"| speedup {speedup:.1f}x")
    return {
        "n_objects": args.n_objects,
        "bulk_seconds": round(t_bulk, 4),
        "incremental_seconds": round(t_incremental, 4),
        "speedup": round(speedup, 2),
    }


def _insert_pass(objects, config, durable_dir=None):
    database = FuzzyDatabase.build([], config=config)
    if durable_dir is not None:
        database.enable_durability(durable_dir)
    t0 = time.perf_counter()
    for obj in objects:
        database.insert(obj)
    elapsed = time.perf_counter() - t0
    database.close()
    return len(objects) / elapsed


def bench_wal(args, rng):
    print(f"[2/3] insert throughput with/without WAL (n={args.wal_inserts})")
    objects = _objects(rng, args.wal_inserts, args.points_per_object,
                       first_id=0)
    results = {}
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as tmp:
        tmp = Path(tmp)
        # Warmup: the first pass otherwise pays one-time costs (allocator,
        # ufunc dispatch caches) and skews whichever variant runs first.
        _insert_pass(objects[: max(50, len(objects) // 10)], RuntimeConfig())
        results["off"] = _insert_pass(objects, RuntimeConfig())
        for sync in ("none", "flush"):
            target = tmp / sync
            results[sync] = _insert_pass(
                objects, RuntimeConfig(wal_sync=sync, snapshot_every=0), target
            )
            shutil.rmtree(target, ignore_errors=True)
    for name, rate in results.items():
        print(f"      wal={name:<5} {rate:,.0f} inserts/sec")
    return {
        "inserts": args.wal_inserts,
        "ops_per_sec": {name: round(rate, 1) for name, rate in results.items()},
        "flush_overhead": round(results["off"] / results["flush"], 2),
    }


def bench_subscriptions(args, rng):
    print(f"[3/3] subscription maintenance vs re-poll "
          f"(S={args.subscriptions}, M={args.mutations})")
    base = _objects(rng, args.sub_objects, args.points_per_object, scale=10.0)
    queries = _objects(rng, args.subscriptions, args.points_per_object,
                       first_id=10_000_000, scale=10.0)
    requests = [AknnRequest(q, k=5, alpha=0.4) for q in queries]

    def mutation_stream():
        stream_rng = np.random.default_rng(args.seed + 1)
        live = list(range(args.sub_objects))
        extra = _objects(stream_rng, args.mutations, args.points_per_object,
                         first_id=1_000_000, scale=10.0)
        ops = []
        for step in range(args.mutations):
            if step % 3 == 2 and len(live) > 10:
                ops.append(("delete", live.pop(int(stream_rng.integers(0, len(live))))))
            else:
                ops.append(("insert", extra[step]))
        return ops

    ops = mutation_stream()

    # Maintained: the engine keeps every answer exact via deltas.
    maintained = FuzzyDatabase.build(base)
    engine = SubscriptionEngine(maintained)
    maintained.add_update_listener(engine)
    subs = [engine.subscribe(request) for request in requests]
    t0 = time.perf_counter()
    for op, payload in ops:
        if op == "insert":
            maintained.insert(payload)
        else:
            maintained.delete(payload)
    t_maintained = time.perf_counter() - t0
    maintained_answers = [dict(sub.members) for sub in subs]

    # Re-poll: the same history, re-executing every request after every op.
    polled = FuzzyDatabase.build(base)
    t0 = time.perf_counter()
    for op, payload in ops:
        if op == "insert":
            polled.insert(payload)
        else:
            polled.delete(payload)
        last = [polled.execute(request) for request in requests]
    t_polled = time.perf_counter() - t0

    # Parity: the final maintained answers equal the final re-poll answers.
    for sub, maintained_members, result in zip(subs, maintained_answers, last):
        assert sorted(maintained_members) == sorted(
            int(n.object_id) for n in result.neighbors
        ), "maintenance diverged from re-polling"

    speedup = t_polled / t_maintained if t_maintained > 0 else float("inf")
    print(f"      maintain {t_maintained:.3f}s | re-poll {t_polled:.3f}s "
          f"| speedup {speedup:.1f}x")
    maintained.close()
    polled.close()
    return {
        "subscriptions": args.subscriptions,
        "mutations": args.mutations,
        "maintain_seconds": round(t_maintained, 4),
        "repoll_seconds": round(t_polled, 4),
        "speedup": round(speedup, 2),
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)

    bulk = bench_bulk_load(args, rng)
    wal = bench_wal(args, rng)
    subscriptions = bench_subscriptions(args, rng)

    payload = {
        "benchmark": "durability",
        "quick": bool(args.quick),
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "bulk_load": bulk,
        "wal": wal,
        "subscriptions": subscriptions,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if args.min_speedup and bulk["speedup"] < args.min_speedup:
        print(f"FAIL: STR speedup {bulk['speedup']}x is below the "
              f"{args.min_speedup}x gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
