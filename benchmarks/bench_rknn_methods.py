"""Per-method RKNN micro-benchmarks (running-time panel of Figure 14).

One RKNN query per method at the paper's default range length (L = 0.2);
``extra_info`` carries object accesses (Figure 13) and refinement steps (the
quantity Lemma 4 reduces).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.requests import SweepRequest
from repro.core.rknn import RKNN_METHODS

# The naive method is excluded: like the paper we only report it as
# "prohibitive" (it probes the entire dataset once per membership level).
BENCH_METHODS = tuple(m for m in RKNN_METHODS if m != "naive")


@pytest.mark.parametrize("method", BENCH_METHODS)
def test_rknn_method(benchmark, bench_bundle, bench_queries, method):
    database = bench_bundle.database
    query = bench_queries[0]
    alpha_range = BENCH_SCALE.alpha_range()

    request = SweepRequest(
        query, k=BENCH_SCALE.k, alpha_range=alpha_range, method=method
    )

    def run():
        return database.execute(request)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["object_accesses"] = result.stats.object_accesses
    benchmark.extra_info["refinement_steps"] = result.stats.refinement_steps
    benchmark.extra_info["aknn_calls"] = result.stats.aknn_calls
    assert len(result) >= BENCH_SCALE.k
