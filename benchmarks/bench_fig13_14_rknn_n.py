"""Figures 13a/14a: RKNN cost versus dataset size N.

Reproduced claims: all methods degrade as the dataset grows, but RSS and
RSS-ICR access several times fewer objects than the basic sweep (the paper
reports one or more orders of magnitude at its full scale), and RSS-ICR needs
no more refinement steps than RSS.
"""

from benchmarks.conftest import BENCH_SCALE, series_average, write_report
from repro.bench.experiments import rknn_n_sweep


def test_report_fig13a_14a_rknn_vs_n(benchmark):
    result = benchmark.pedantic(lambda: rknn_n_sweep(BENCH_SCALE), rounds=1, iterations=1)
    write_report("fig13a_14a_rknn_n", result)

    basic = dict(result.series("basic", "object_accesses"))
    rss = dict(result.series("rss", "object_accesses"))
    icr = dict(result.series("rss_icr", "object_accesses"))
    n_values = sorted(basic)
    # The basic sweep degrades with N and RSS prunes most of its accesses.
    assert basic[n_values[-1]] >= basic[n_values[0]]
    for n in n_values:
        assert rss[n] <= basic[n]
        assert icr[n] <= basic[n]
    # At the largest N the gap is at least 3x (paper: >= one order of magnitude
    # at 125x our scale).
    assert rss[n_values[-1]] * 3 <= basic[n_values[-1]]

    # ICR reduces the refinement work relative to RSS.
    assert series_average(result, "rss_icr", "refinement_steps") <= series_average(
        result, "rss", "refinement_steps"
    )
