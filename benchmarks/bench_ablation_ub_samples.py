"""Ablation: size of the query sample used by the improved upper bound.

The Lemma-1 upper bound compares the stored representative point against a
sample of ``n`` points from the query alpha-cut.  The paper only requires
``n << |Q_alpha|``; this ablation shows the trade-off — larger samples give a
tighter bound (fewer object accesses) at a higher per-entry CPU cost.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.config import RuntimeConfig
from repro.core.aknn import AKNNSearcher


@pytest.mark.parametrize("n_samples", [1, 4, 16, 64])
def test_upper_bound_sample_size(benchmark, bench_bundle, bench_queries, n_samples):
    database = bench_bundle.database
    query = bench_queries[0]
    config = RuntimeConfig(
        upper_bound_samples=n_samples,
        rtree_max_entries=BENCH_SCALE.runtime.rtree_max_entries,
    )
    searcher = AKNNSearcher(database.store, database.tree, config)

    def run():
        database.reset_statistics()
        return searcher.search(
            query, k=BENCH_SCALE.k, alpha=BENCH_SCALE.alpha, method="lb_lp_ub"
        )

    result = benchmark(run)
    benchmark.extra_info["object_accesses"] = result.stats.object_accesses
    assert len(result) == BENCH_SCALE.k
