"""Benchmark: sharded coalescing query service vs. the unsharded query loop.

Closed-loop serving benchmark for the service subsystem.  The baseline is
the single-shard, single-threaded loop — one ``Database.aknn`` call per
request, the way a naive server would answer traffic.  The service side
partitions the same dataset across ``--shards`` shards and serves the same
request stream through :class:`~repro.service.QueryService`: requests are
submitted in waves of ``--wave`` concurrent outstanding futures (the bounded
admission queue is the backpressure), coalesced per ``(k, alpha, method)``
bucket and flushed through the globally-bootstrapped shard fan-out.

Reported per side: sustained queries/sec over the whole run and, for the
service, p50/p99 end-to-end request latency (submit to future resolution).
Results land in ``BENCH_service.json`` next to this file so the serving
trajectory is tracked from PR to PR.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick

The default configuration warms every caching layer (store buffer pools,
alpha-cut caches, representative indexes) before measuring, so both sides
run steady-state — the regime a long-lived service lives in.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import scipy

from repro.config import RuntimeConfig
from repro.core.requests import AknnRequest
from repro.datasets.builder import DatasetBundle
from repro.service import QueryService, ShardedDatabase

BASELINE_PATH = Path(__file__).parent / "BENCH_service.json"


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-objects", type=int, default=10_000)
    parser.add_argument("--points-per-object", type=int, default=40)
    parser.add_argument("--n-requests", type=int, default=512)
    parser.add_argument("--query-pool", type=int, default=64)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument("--method", default="lb_lp_ub")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--placement", choices=("hash", "space"), default="hash")
    # The serving default (RuntimeConfig) leans latency at 2 ms; the
    # benchmark leans throughput, letting buckets fill to max_batch.
    parser.add_argument("--window-ms", type=float, default=8.0)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument("--wave", type=int, default=256,
                        help="outstanding requests per submission wave")
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny configuration for smoke-testing the harness",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero when the measured speedup falls below this factor",
    )
    parser.add_argument(
        "--output", type=Path, default=BASELINE_PATH,
        help="where to write the JSON baseline (default: benchmarks/BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n_objects = 400
        args.points_per_object = 16
        args.n_requests = 64
        args.query_pool = 16
        args.k = 5
        args.shards = 2
        args.wave = 32
        args.repeats = 1
    return args


def run_loop_baseline(database, requests, args) -> float:
    """One pass of the unsharded single-request loop; returns elapsed seconds."""
    t0 = time.perf_counter()
    for index in range(args.n_requests):
        database.execute(requests[index % len(requests)])
    return time.perf_counter() - t0


def run_service_pass(service, requests, args):
    """One closed-loop pass through the service; returns elapsed seconds."""
    done = 0
    t0 = time.perf_counter()
    while done < args.n_requests:
        wave = min(args.wave, args.n_requests - done)
        futures = [
            service.submit_request(requests[(done + i) % len(requests)])
            for i in range(wave)
        ]
        for future in futures:
            future.result(timeout=600)
        done += wave
    return time.perf_counter() - t0


def main(argv=None) -> int:
    args = parse_args(argv)
    config = RuntimeConfig(
        cache_capacity=args.cache_capacity,
        coalesce_window_ms=args.window_ms,
        coalesce_max_batch=args.max_batch,
        service_shards=args.shards,
        shard_placement=args.placement,
    )
    print(
        f"building synthetic dataset: n={args.n_objects}, "
        f"points/object={args.points_per_object} ...",
        flush=True,
    )
    t0 = time.perf_counter()
    bundle = DatasetBundle.create(
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        config=config,
    )
    database = bundle.database
    queries = bundle.queries(args.query_pool)
    objects = list(database.store.iter_objects(count_accesses=False))
    sharded = ShardedDatabase.build(
        objects, n_shards=args.shards, placement=args.placement, config=config
    )
    print(
        f"build took {time.perf_counter() - t0:.1f}s "
        f"(shard sizes {sharded.shard_sizes()})"
    )

    requests = [
        AknnRequest(query, k=args.k, alpha=args.alpha, method=args.method)
        for query in queries
    ]

    # Warm every caching layer on both sides so the comparison is
    # steady-state serving, not first-touch costs.
    for request in requests:
        database.execute(request)
    sharded.execute_batch(requests)

    # Parity guard: the service path must answer exactly like the loop.
    check = sharded.execute_batch(requests)
    for request, result in zip(requests, check):
        single = database.execute(request)
        assert set(single.object_ids) == set(result.object_ids), (
            "sharded service diverged from the single-tree path"
        )

    loop_seconds = np.inf
    service_seconds = np.inf
    service_stats = None
    # Alternate the two sides so ambient machine noise hits both equally.
    for _ in range(args.repeats):
        loop_seconds = min(loop_seconds, run_loop_baseline(database, requests, args))
        with QueryService(sharded) as service:
            for request in requests[:8]:  # re-warm the flusher thread
                service.execute(request)
            service_seconds = min(
                service_seconds, run_service_pass(service, requests, args)
            )
            service_stats = service.stats()

    loop_qps = args.n_requests / loop_seconds
    service_qps = args.n_requests / service_seconds
    speedup = service_qps / loop_qps
    print(f"\nloop    : {loop_qps:8.1f} queries/sec ({loop_seconds:.2f}s)")
    print(
        f"service : {service_qps:8.1f} queries/sec sustained "
        f"({service_seconds:.2f}s, {args.shards} shards + coalescing)"
    )
    print(
        f"latency : p50 {service_stats.p50_latency_ms:.1f} ms, "
        f"p99 {service_stats.p99_latency_ms:.1f} ms "
        f"(mean batch {service_stats.mean_batch_size:.1f})"
    )
    print(f"speedup : {speedup:.2f}x sustained QPS (identical results)")

    baseline = {
        "benchmark": "bench_service",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_objects": args.n_objects,
            "points_per_object": args.points_per_object,
            "n_requests": args.n_requests,
            "query_pool": args.query_pool,
            "k": args.k,
            "alpha": args.alpha,
            "method": args.method,
            "shards": args.shards,
            "placement": args.placement,
            "window_ms": args.window_ms,
            "max_batch": args.max_batch,
            "wave": args.wave,
            "cache_capacity": args.cache_capacity,
            "repeats": args.repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "loop_seconds": loop_seconds,
        "loop_qps": loop_qps,
        "service_seconds": service_seconds,
        "service_qps": service_qps,
        "speedup": speedup,
        "latency_ms": {
            "p50": service_stats.p50_latency_ms,
            "p99": service_stats.p99_latency_ms,
            "mean": service_stats.mean_latency_ms,
        },
        "service_stats": {
            "batches_flushed": service_stats.batches_flushed,
            "mean_batch_size": service_stats.mean_batch_size,
            "max_batch_size": service_stats.max_batch_size,
            "requests_shed": service_stats.requests_shed,
            "shard_sizes": sharded.shard_sizes(),
        },
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"baseline written to {args.output}")
    sharded.close()
    database.close()

    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
