"""Per-method AKNN micro-benchmarks (running-time panel of Figures 12 / 15b).

Each benchmark answers the paper's default query (k=20 scaled to the bench
dataset, alpha=0.5) with one AKNN variant; the pytest-benchmark table is the
method comparison, and ``extra_info`` records the object accesses (the metric
of Figures 11 / 15a).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.aknn import AKNN_METHODS
from repro.core.requests import AknnRequest


@pytest.mark.parametrize("method", AKNN_METHODS)
def test_aknn_method(benchmark, bench_bundle, bench_queries, method):
    database = bench_bundle.database
    query = bench_queries[0]

    request = AknnRequest(query, k=BENCH_SCALE.k, alpha=BENCH_SCALE.alpha, method=method)

    def run():
        return database.execute(request)

    result = benchmark(run)
    benchmark.extra_info["object_accesses"] = result.stats.object_accesses
    benchmark.extra_info["node_accesses"] = result.stats.node_accesses
    assert len(result) == BENCH_SCALE.k


@pytest.mark.parametrize("alpha", [0.3, 0.9])
@pytest.mark.parametrize("method", ["basic", "lb_lp_ub"])
def test_aknn_alpha_extremes(benchmark, bench_bundle, bench_queries, method, alpha):
    """The threshold extremes where basic and fully-optimised search diverge most."""
    database = bench_bundle.database
    query = bench_queries[0]

    request = AknnRequest(query, k=BENCH_SCALE.k, alpha=alpha, method=method)

    def run():
        return database.execute(request)

    result = benchmark(run)
    benchmark.extra_info["object_accesses"] = result.stats.object_accesses
    assert len(result) == BENCH_SCALE.k
