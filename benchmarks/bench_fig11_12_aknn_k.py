"""Figures 11b/12b: AKNN cost versus the number of requested neighbours k.

Reproduced claims: all methods access more objects as k grows, and the
optimised methods are less sensitive to k than the basic search.
"""

from benchmarks.conftest import BENCH_SCALE, write_report
from repro.bench.experiments import aknn_k_sweep


def test_report_fig11b_12b_aknn_vs_k(benchmark):
    result = benchmark.pedantic(lambda: aknn_k_sweep(BENCH_SCALE), rounds=1, iterations=1)
    write_report("fig11b_12b_aknn_k", result)

    basic = dict(result.series("basic", "object_accesses"))
    optimised = dict(result.series("lb_lp_ub", "object_accesses"))
    k_values = sorted(basic)
    # Cost grows with k for every method.
    assert basic[k_values[-1]] >= basic[k_values[0]]
    assert optimised[k_values[-1]] >= optimised[k_values[0]]
    # The optimised method stays at or below the basic one for every k.
    for k in k_values:
        assert optimised[k] <= basic[k] + 1e-9
    # ... and the absolute growth from the smallest to the largest k is no
    # worse than the basic method's (reduced sensitivity to k).
    assert (optimised[k_values[-1]] - optimised[k_values[0]]) <= (
        basic[k_values[-1]] - basic[k_values[0]]
    ) + 1e-9
