"""Figures 11c/12c: AKNN cost versus the probability threshold alpha.

Reproduced claim (the most distinctive trend of the evaluation): as alpha
increases the basic search accesses *more* objects (the k-th neighbour
distance grows while the support MBRs it prunes with stay fixed), whereas the
fully optimised search accesses *fewer* objects (the tighter alpha-cut MBRs
track the shrinking objects).
"""

from benchmarks.conftest import BENCH_SCALE, write_report
from repro.bench.experiments import aknn_alpha_sweep


def test_report_fig11c_12c_aknn_vs_alpha(benchmark):
    result = benchmark.pedantic(
        lambda: aknn_alpha_sweep(BENCH_SCALE), rounds=1, iterations=1
    )
    write_report("fig11c_12c_aknn_alpha", result)

    basic = dict(result.series("basic", "object_accesses"))
    optimised = dict(result.series("lb_lp_ub", "object_accesses"))
    alphas = sorted(basic)
    low, high = alphas[0], alphas[-1]
    # Basic heads up as alpha grows; the optimised method heads down.
    assert basic[high] >= basic[low]
    assert optimised[high] <= optimised[low]
    # And the optimised method dominates basic at every threshold.
    for alpha in alphas:
        assert optimised[alpha] <= basic[alpha] + 1e-9
