"""An in-memory R-tree over fuzzy-object summaries.

Supported operations:

* one-by-one insertion with Guttman's quadratic split,
* Sort-Tile-Recursive (STR) bulk loading, the default when building a
  database from a full dataset,
* rectangle range search (used by the RSS optimisation of Section 4.2),
* structural validation (used by the test suite).

The best-first kNN traversal itself lives in :mod:`repro.core.aknn`; the tree
only exposes its root and nodes so the searchers can maintain their own
priority queues and count node accesses through a
:class:`~repro.metrics.counters.MetricsCollector`.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_RTREE_MAX_ENTRIES, DEFAULT_RTREE_MIN_FILL
from repro.exceptions import IndexError_
from repro.fuzzy.summary import FuzzyObjectSummary
from repro.geometry.mbr import MBR
from repro.index.entry import InternalEntry, LeafEntry
from repro.index.node import Entry, RTreeNode
from repro.metrics.counters import MetricsCollector


class RTree:
    """R-tree whose data entries are fuzzy-object summaries."""

    def __init__(
        self,
        max_entries: int = DEFAULT_RTREE_MAX_ENTRIES,
        min_fill: float = DEFAULT_RTREE_MIN_FILL,
    ):
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise IndexError_("min_fill must be in (0, 0.5]")
        self.max_entries = max_entries
        self.min_entries = max(1, int(math.ceil(max_entries * min_fill)))
        self.root = RTreeNode(level=0)
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        summaries: Sequence[FuzzyObjectSummary],
        max_entries: int = DEFAULT_RTREE_MAX_ENTRIES,
        min_fill: float = DEFAULT_RTREE_MIN_FILL,
    ) -> "RTree":
        """Build a tree with Sort-Tile-Recursive packing.

        STR produces well-filled, spatially coherent leaves which keeps the
        best-first search close to the paper's measured behaviour.
        """
        tree = cls(max_entries=max_entries, min_fill=min_fill)
        if not summaries:
            return tree
        leaf_entries: List[Entry] = [LeafEntry(s) for s in summaries]
        nodes = tree._pack_level(leaf_entries, level=0)
        level = 1
        while len(nodes) > 1:
            entries: List[Entry] = [
                InternalEntry(node.compute_mbr(), node) for node in nodes
            ]
            nodes = tree._pack_level(entries, level=level)
            level += 1
        tree.root = nodes[0]
        tree._size = len(summaries)
        return tree

    def _pack_level(self, entries: List[Entry], level: int) -> List[RTreeNode]:
        """Pack ``entries`` into nodes of ``level`` using STR tiling."""
        capacity = self.max_entries
        n = len(entries)
        n_nodes = max(1, math.ceil(n / capacity))
        dims = entries[0].mbr.dimensions
        centers = np.asarray([e.mbr.center for e in entries])
        if dims == 1 or n_nodes == 1:
            order = np.argsort(centers[:, 0])
            ordered = [entries[i] for i in order]
        else:
            # Classic 2-d STR: sort by x, cut into vertical slices, then sort
            # each slice by y.  Higher dimensions reuse the first two axes.
            n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
            slice_size = math.ceil(n / n_slices)
            order = np.argsort(centers[:, 0])
            ordered = []
            for start in range(0, n, slice_size):
                slice_idx = order[start : start + slice_size]
                slice_centers = centers[slice_idx]
                inner = slice_idx[np.argsort(slice_centers[:, 1])]
                ordered.extend(entries[i] for i in inner)
        nodes = []
        for start in range(0, n, capacity):
            nodes.append(RTreeNode(level=level, entries=ordered[start : start + capacity]))
        return nodes

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, summary: FuzzyObjectSummary) -> None:
        """Insert one summary, splitting nodes on overflow."""
        entry = LeafEntry(summary)
        split = self._insert_into(self.root, entry)
        if split is not None:
            old_root = self.root
            new_root = RTreeNode(level=old_root.level + 1)
            new_root.add(InternalEntry(old_root.compute_mbr(), old_root))
            new_root.add(InternalEntry(split.compute_mbr(), split))
            self.root = new_root
        self._size += 1

    def _insert_into(self, node: RTreeNode, entry: LeafEntry) -> Optional[RTreeNode]:
        if node.is_leaf:
            node.add(entry)
        else:
            child_entry = self._choose_subtree(node, entry.mbr)
            split = self._insert_into(child_entry.child, entry)
            child_entry.refresh_mbr()
            node.refresh_child_mbr(child_entry)
            if split is not None:
                node.add(InternalEntry(split.compute_mbr(), split))
        if len(node.entries) > self.max_entries:
            return self._split_node(node)
        return None

    @staticmethod
    def _choose_subtree(node: RTreeNode, mbr: MBR) -> InternalEntry:
        """Guttman's ChooseLeaf criterion: least enlargement, then least area."""
        best = None
        best_key = None
        for entry in node.entries:
            enlargement = entry.mbr.enlargement(mbr)
            key = (enlargement, entry.mbr.area())
            if best_key is None or key < best_key:
                best = entry
                best_key = key
        assert best is not None
        return best

    def _split_node(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split; ``node`` keeps one group, the sibling is returned."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while remaining:
            # If one group must take everything left to reach minimum fill,
            # assign the rest to it outright.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            index = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            cost_a = mbr_a.enlargement(entry.mbr)
            cost_b = mbr_b.enlargement(entry.mbr)
            if (cost_a, mbr_a.area(), len(group_a)) <= (cost_b, mbr_b.area(), len(group_b)):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)

        node.entries = group_a
        node.invalidate_soa()
        return RTreeNode(level=node.level, entries=group_b)

    @staticmethod
    def _pick_seeds(entries: Sequence[Entry]) -> Tuple[int, int]:
        """The pair of entries wasting the most area when grouped together."""
        best_pair = (0, 1)
        best_waste = -math.inf
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].mbr.union(entries[j].mbr)
                waste = union.area() - entries[i].mbr.area() - entries[j].mbr.area()
                if waste > best_waste:
                    best_waste = waste
                    best_pair = (i, j)
        return best_pair

    @staticmethod
    def _pick_next(remaining: Sequence[Entry], mbr_a: MBR, mbr_b: MBR) -> int:
        """The entry with the strongest preference for one of the groups."""
        best_index = 0
        best_diff = -1.0
        for i, entry in enumerate(remaining):
            diff = abs(mbr_a.enlargement(entry.mbr) - mbr_b.enlargement(entry.mbr))
            if diff > best_diff:
                best_diff = diff
                best_index = i
        return best_index

    # ------------------------------------------------------------------
    # Search primitives
    # ------------------------------------------------------------------
    def range_query(
        self, region: MBR, metrics: Optional[MetricsCollector] = None
    ) -> List[LeafEntry]:
        """All leaf entries whose support MBR intersects ``region``."""
        result: List[LeafEntry] = []
        if self._size == 0:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            if metrics is not None:
                metrics.increment(MetricsCollector.NODE_ACCESSES)
            for entry in node.entries:
                if not entry.mbr.intersects(region):
                    continue
                if node.is_leaf:
                    result.append(entry)  # type: ignore[arg-type]
                else:
                    stack.append(entry.child)  # type: ignore[union-attr]
        return result

    def leaf_entries(self) -> Iterator[LeafEntry]:
        """Every data entry in the tree."""
        if self._size == 0:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries  # type: ignore[misc]
            else:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        return self.root.level + 1

    def node_count(self) -> int:
        """Total number of nodes."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return count

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IndexError_` on violation."""
        seen_objects = set()
        self._validate_node(self.root, is_root=True, seen_objects=seen_objects)
        if len(seen_objects) != self._size:
            raise IndexError_(
                f"tree size mismatch: {len(seen_objects)} entries vs {self._size} recorded"
            )

    def _validate_node(self, node: RTreeNode, is_root: bool, seen_objects: set) -> None:
        if len(node.entries) > self.max_entries:
            raise IndexError_("node exceeds max_entries")
        if not is_root and self._size > 0 and len(node.entries) == 0:
            raise IndexError_("non-root node is empty")
        if node.is_leaf:
            for entry in node.entries:
                if not isinstance(entry, LeafEntry):
                    raise IndexError_("leaf node contains a non-leaf entry")
                if entry.object_id in seen_objects:
                    raise IndexError_(f"duplicate object id {entry.object_id}")
                seen_objects.add(entry.object_id)
            return
        for entry in node.entries:
            if not isinstance(entry, InternalEntry):
                raise IndexError_("internal node contains a non-internal entry")
            if entry.child.level != node.level - 1:
                raise IndexError_("child level mismatch")
            child_mbr = entry.child.compute_mbr()
            if not entry.mbr.contains(child_mbr):
                raise IndexError_("internal entry MBR does not cover its child")
            self._validate_node(entry.child, is_root=False, seen_objects=seen_objects)
