"""An in-memory R-tree over fuzzy-object summaries.

Supported operations:

* one-by-one insertion with Guttman's quadratic split,
* deletion with Guttman's CondenseTree: the entry is located through a
  containment-guided descent, underfull nodes along the path are dissolved
  and their surviving entries reinserted at their original level, and a
  root left with a single child is shortened,
* Sort-Tile-Recursive (STR) bulk loading, the default when building a
  database from a full dataset,
* rectangle range search (used by the RSS optimisation of Section 4.2),
* structural validation (used by the test suite).

Every structural mutation bumps :attr:`RTree.mutations`, which lets callers
that cache derived structures (for example the batch executor's
representative KD-tree) detect that the indexed set changed even when the
entry count did not (an insert/delete pair).

The best-first kNN traversal itself lives in :mod:`repro.core.aknn`; the tree
only exposes its root and nodes so the searchers can maintain their own
priority queues and count node accesses through a
:class:`~repro.metrics.counters.MetricsCollector`.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_RTREE_MAX_ENTRIES, DEFAULT_RTREE_MIN_FILL
from repro.exceptions import IndexError_
from repro.fuzzy.summary import FuzzyObjectSummary
from repro.geometry.mbr import MBR
from repro.index.entry import InternalEntry, LeafEntry
from repro.index.node import Entry, RTreeNode
from repro.metrics.counters import MetricsCollector


class RTree:
    """R-tree whose data entries are fuzzy-object summaries."""

    def __init__(
        self,
        max_entries: int = DEFAULT_RTREE_MAX_ENTRIES,
        min_fill: float = DEFAULT_RTREE_MIN_FILL,
    ):
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise IndexError_("min_fill must be in (0, 0.5]")
        self.max_entries = max_entries
        self.min_entries = max(1, int(math.ceil(max_entries * min_fill)))
        self.root = RTreeNode(level=0)
        self._size = 0
        self.mutations = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        summaries: Sequence[FuzzyObjectSummary],
        max_entries: int = DEFAULT_RTREE_MAX_ENTRIES,
        min_fill: float = DEFAULT_RTREE_MIN_FILL,
    ) -> "RTree":
        """Build a tree with Sort-Tile-Recursive packing.

        STR produces well-filled, spatially coherent leaves which keeps the
        best-first search close to the paper's measured behaviour.
        """
        tree = cls(max_entries=max_entries, min_fill=min_fill)
        if not summaries:
            return tree
        leaf_entries: List[Entry] = [LeafEntry(s) for s in summaries]
        nodes = tree._pack_level(leaf_entries, level=0)
        level = 1
        while len(nodes) > 1:
            entries: List[Entry] = [
                InternalEntry(node.compute_mbr(), node) for node in nodes
            ]
            nodes = tree._pack_level(entries, level=level)
            level += 1
        tree.root = nodes[0]
        tree._size = len(summaries)
        return tree

    def _pack_level(self, entries: List[Entry], level: int) -> List[RTreeNode]:
        """Pack ``entries`` into nodes of ``level`` using STR tiling."""
        capacity = self.max_entries
        n = len(entries)
        n_nodes = max(1, math.ceil(n / capacity))
        dims = entries[0].mbr.dimensions
        centers = np.asarray([e.mbr.center for e in entries])
        if dims == 1 or n_nodes == 1:
            order = np.argsort(centers[:, 0])
            ordered = [entries[i] for i in order]
        else:
            # Classic 2-d STR: sort by x, cut into vertical slices, then sort
            # each slice by y.  Higher dimensions reuse the first two axes.
            n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
            slice_size = math.ceil(n / n_slices)
            order = np.argsort(centers[:, 0])
            ordered = []
            for start in range(0, n, slice_size):
                slice_idx = order[start : start + slice_size]
                slice_centers = centers[slice_idx]
                inner = slice_idx[np.argsort(slice_centers[:, 1])]
                ordered.extend(entries[i] for i in inner)
        nodes = []
        for start in range(0, n, capacity):
            nodes.append(RTreeNode(level=level, entries=ordered[start : start + capacity]))
        return nodes

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, summary: FuzzyObjectSummary) -> None:
        """Insert one summary, splitting nodes on overflow."""
        self._insert_entry(LeafEntry(summary), target_level=0)
        self._size += 1
        self.mutations += 1

    def _insert_entry(self, entry: Entry, target_level: int) -> None:
        """Place ``entry`` into a node of ``target_level``, growing the root on split."""
        split = self._insert_into(self.root, entry, target_level)
        if split is not None:
            old_root = self.root
            new_root = RTreeNode(level=old_root.level + 1)
            new_root.add(InternalEntry(old_root.compute_mbr(), old_root))
            new_root.add(InternalEntry(split.compute_mbr(), split))
            self.root = new_root

    def _insert_into(
        self, node: RTreeNode, entry: Entry, target_level: int
    ) -> Optional[RTreeNode]:
        if node.level == target_level:
            node.add(entry)
        else:
            child_entry = self._choose_subtree(node, entry.mbr)
            split = self._insert_into(child_entry.child, entry, target_level)
            child_entry.refresh_mbr()
            node.refresh_child_mbr(child_entry)
            if split is not None:
                node.add(InternalEntry(split.compute_mbr(), split))
        if len(node.entries) > self.max_entries:
            return self._split_node(node)
        return None

    @staticmethod
    def _choose_subtree(node: RTreeNode, mbr: MBR) -> InternalEntry:
        """Guttman's ChooseLeaf criterion: least enlargement, then least area."""
        best = None
        best_key = None
        for entry in node.entries:
            enlargement = entry.mbr.enlargement(mbr)
            key = (enlargement, entry.mbr.area())
            if best_key is None or key < best_key:
                best = entry
                best_key = key
        assert best is not None
        return best

    def _split_node(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split; ``node`` keeps one group, the sibling is returned."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while remaining:
            # If one group must take everything left to reach minimum fill,
            # assign the rest to it outright.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            index = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            cost_a = mbr_a.enlargement(entry.mbr)
            cost_b = mbr_b.enlargement(entry.mbr)
            if (cost_a, mbr_a.area(), len(group_a)) <= (cost_b, mbr_b.area(), len(group_b)):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)

        node.entries = group_a
        node.invalidate_soa()
        return RTreeNode(level=node.level, entries=group_b)

    @staticmethod
    def _pick_seeds(entries: Sequence[Entry]) -> Tuple[int, int]:
        """The pair of entries wasting the most area when grouped together."""
        best_pair = (0, 1)
        best_waste = -math.inf
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].mbr.union(entries[j].mbr)
                waste = union.area() - entries[i].mbr.area() - entries[j].mbr.area()
                if waste > best_waste:
                    best_waste = waste
                    best_pair = (i, j)
        return best_pair

    @staticmethod
    def _pick_next(remaining: Sequence[Entry], mbr_a: MBR, mbr_b: MBR) -> int:
        """The entry with the strongest preference for one of the groups."""
        best_index = 0
        best_diff = -1.0
        for i, entry in enumerate(remaining):
            diff = abs(mbr_a.enlargement(entry.mbr) - mbr_b.enlargement(entry.mbr))
            if diff > best_diff:
                best_diff = diff
                best_index = i
        return best_index

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, object_id: int, mbr: Optional[MBR] = None) -> None:
        """Remove the data entry for ``object_id`` (Guttman's CondenseTree).

        ``mbr`` is the entry's support MBR when the caller knows it (it guides
        the descent so only covering subtrees are searched); without it the
        whole tree is scanned for the entry.  Underfull nodes along the
        deletion path are dissolved and their entries reinserted at their
        original level; a root left with a single child is shortened.
        Raises :class:`IndexError_` when the object is not indexed.
        """
        path = self._find_leaf(self.root, int(object_id), mbr)
        if path is None:
            raise IndexError_(f"object {object_id} is not indexed")
        leaf = path[-1]
        entry = next(e for e in leaf.entries if e.object_id == object_id)
        leaf.remove_entry(entry)
        self._size -= 1
        self.mutations += 1
        orphans = self._condense(path)
        # Taller orphan subtrees go back first so lower-level entries can
        # descend into them (the empty-root seeding below depends on it).
        for level, orphan in sorted(orphans, key=lambda item: -item[0]):
            self._reinsert(orphan, level)
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child
        if not self.root.is_leaf and not self.root.entries:
            self.root = RTreeNode(level=0)

    def delete_lazy(self, object_id: int, mbr: Optional[MBR] = None) -> None:
        """Remove the data entry for ``object_id`` without condensing.

        The deferred-compaction write path (:mod:`repro.index.bulk`): the
        entry is removed, ancestor MBRs are tightened, and nodes left *empty*
        are pruned upward — but underfull nodes are tolerated instead of
        being dissolved and reinserted.  This keeps the per-delete cost at
        one root-to-leaf walk; the accumulated fill debt is repaid in one STR
        rebuild when :class:`~repro.index.bulk.CompactionManager` decides the
        debt ratio crossed its threshold.  All :meth:`validate` invariants
        are preserved (validation rejects *empty* non-root nodes, never
        underfull ones).
        """
        path = self._find_leaf(self.root, int(object_id), mbr)
        if path is None:
            raise IndexError_(f"object {object_id} is not indexed")
        leaf = path[-1]
        entry = next(e for e in leaf.entries if e.object_id == object_id)
        leaf.remove_entry(entry)
        self._size -= 1
        self.mutations += 1
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            parent_entry = next(e for e in parent.entries if e.child is node)
            if not node.entries:
                parent.remove_entry(parent_entry)
            else:
                parent_entry.refresh_mbr()
                parent.refresh_child_mbr(parent_entry)
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child
        if not self.root.is_leaf and not self.root.entries:
            self.root = RTreeNode(level=0)

    def _find_leaf(
        self, node: RTreeNode, object_id: int, mbr: Optional[MBR]
    ) -> Optional[List[RTreeNode]]:
        """Root-to-leaf path ending at the node holding ``object_id``."""
        if node.is_leaf:
            if any(e.object_id == object_id for e in node.entries):
                return [node]
            return None
        for entry in node.entries:
            if mbr is not None and not entry.mbr.contains(mbr):
                continue
            tail = self._find_leaf(entry.child, object_id, mbr)
            if tail is not None:
                return [node, *tail]
        return None

    def _condense(self, path: List[RTreeNode]) -> List[Tuple[int, Entry]]:
        """Dissolve underfull nodes along ``path``, bottom-up.

        Returns the orphaned entries as ``(level, entry)`` pairs, where
        ``level`` is the node level the entry must be reinserted at.  Nodes
        that stay adequately filled get their parent MBRs tightened instead.
        """
        orphans: List[Tuple[int, Entry]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            parent_entry = next(e for e in parent.entries if e.child is node)
            if len(node.entries) < self.min_entries:
                parent.remove_entry(parent_entry)
                orphans.extend((node.level, e) for e in node.entries)
            else:
                parent_entry.refresh_mbr()
                parent.refresh_child_mbr(parent_entry)
        return orphans

    def _reinsert(self, entry: Entry, target_level: int) -> None:
        """Reinsert one orphaned entry into a node of ``target_level``.

        An empty root (every subtree dissolved) is reseeded directly: an
        orphaned subtree becomes the new root, an orphaned data entry a fresh
        leaf root.
        """
        if not self.root.entries:
            if isinstance(entry, InternalEntry):
                self.root = entry.child
            else:
                self.root = RTreeNode(level=0, entries=[entry])
            return
        if isinstance(entry, InternalEntry) and entry.child.level >= self.root.level:
            # The orphaned subtree is as tall as the (reseeded) tree itself:
            # join both under a fresh root instead of descending.
            old_root = self.root
            new_root = RTreeNode(level=entry.child.level + 1)
            new_root.add(InternalEntry(old_root.compute_mbr(), old_root))
            new_root.add(entry)
            self.root = new_root
            return
        self._insert_entry(entry, target_level)

    def adopt(self, other: "RTree") -> None:
        """Take over ``other``'s nodes in place.

        Deferred compaction repacks into a fresh tree and grafts it here so
        every searcher holding a reference to *this* tree sees the rebuilt
        structure; the mutation counter bump invalidates derived caches.
        """
        self.root = other.root
        self._size = other._size
        self.mutations += 1

    # ------------------------------------------------------------------
    # Search primitives
    # ------------------------------------------------------------------
    def range_query(
        self, region: MBR, metrics: Optional[MetricsCollector] = None
    ) -> List[LeafEntry]:
        """All leaf entries whose support MBR intersects ``region``."""
        result: List[LeafEntry] = []
        if self._size == 0:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            if metrics is not None:
                metrics.increment(MetricsCollector.NODE_ACCESSES)
            for entry in node.entries:
                if not entry.mbr.intersects(region):
                    continue
                if node.is_leaf:
                    result.append(entry)  # type: ignore[arg-type]
                else:
                    stack.append(entry.child)  # type: ignore[union-attr]
        return result

    def leaf_entries(self) -> Iterator[LeafEntry]:
        """Every data entry in the tree."""
        if self._size == 0:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries  # type: ignore[misc]
            else:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[union-attr]

    def leaf_alpha_bounds(
        self, alpha: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``M_A(alpha)*`` (Equation 2) of every data entry, as flat arrays.

        Returns ``(object_ids, lower, upper)`` — an ``(N,)`` id array aligned
        with ``(N, d)`` lo/hi matrices of the approximated alpha-cut MBRs,
        assembled leaf by leaf from the nodes' SoA views so each leaf's
        Equation-2 reconstruction is computed once per (node, alpha) and
        shared through its per-alpha cache.  An empty tree yields
        ``(0,)`` / ``(0, 0)``-shaped arrays.
        """
        if self._size == 0:
            empty = np.empty((0, 0))
            return np.empty(0, dtype=np.int64), empty, empty
        ids: List[np.ndarray] = []
        lowers: List[np.ndarray] = []
        uppers: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if not node.entries:
                    continue
                soa = node.soa()
                lower, upper = soa.approx_alpha_bounds(alpha)
                ids.append(soa.object_ids)
                lowers.append(lower)
                uppers.append(upper)
            else:
                stack.extend(entry.child for entry in node.entries)
        return (
            np.concatenate(ids),
            np.concatenate(lowers),
            np.concatenate(uppers),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        return self.root.level + 1

    def node_count(self) -> int:
        """Total number of nodes."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return count

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IndexError_` on violation."""
        seen_objects = set()
        self._validate_node(self.root, is_root=True, seen_objects=seen_objects)
        if len(seen_objects) != self._size:
            raise IndexError_(
                f"tree size mismatch: {len(seen_objects)} entries vs {self._size} recorded"
            )

    def _validate_node(self, node: RTreeNode, is_root: bool, seen_objects: set) -> None:
        if len(node.entries) > self.max_entries:
            raise IndexError_("node exceeds max_entries")
        if not is_root and self._size > 0 and len(node.entries) == 0:
            raise IndexError_("non-root node is empty")
        if node.is_leaf:
            for entry in node.entries:
                if not isinstance(entry, LeafEntry):
                    raise IndexError_("leaf node contains a non-leaf entry")
                if entry.object_id in seen_objects:
                    raise IndexError_(f"duplicate object id {entry.object_id}")
                seen_objects.add(entry.object_id)
            return
        for entry in node.entries:
            if not isinstance(entry, InternalEntry):
                raise IndexError_("internal node contains a non-internal entry")
            if entry.child.level != node.level - 1:
                raise IndexError_("child level mismatch")
            child_mbr = entry.child.compute_mbr()
            if not entry.mbr.contains(child_mbr):
                raise IndexError_("internal entry MBR does not cover its child")
            self._validate_node(entry.child, is_root=False, seen_objects=seen_objects)
