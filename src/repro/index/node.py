"""R-tree nodes."""

from __future__ import annotations

from typing import List, Union

from repro.exceptions import IndexError_
from repro.geometry.mbr import MBR
from repro.index.entry import InternalEntry, LeafEntry

Entry = Union[LeafEntry, InternalEntry]


class RTreeNode:
    """A node of the R-tree.

    ``level`` 0 denotes a leaf node (its entries are :class:`LeafEntry`);
    higher levels hold :class:`InternalEntry` children.
    """

    __slots__ = ("level", "entries")

    def __init__(self, level: int = 0, entries: List[Entry] | None = None):
        self.level = level
        self.entries: List[Entry] = list(entries) if entries else []

    @property
    def is_leaf(self) -> bool:
        """Whether the node stores data entries."""
        return self.level == 0

    def compute_mbr(self) -> MBR:
        """Tightest MBR enclosing every entry of the node."""
        if not self.entries:
            raise IndexError_("cannot compute the MBR of an empty node")
        return MBR.union_of(entry.mbr for entry in self.entries)

    def add(self, entry: Entry) -> None:
        """Append an entry (caller is responsible for overflow handling)."""
        if self.is_leaf and not isinstance(entry, LeafEntry):
            raise IndexError_("leaf nodes only accept LeafEntry instances")
        if not self.is_leaf and not isinstance(entry, InternalEntry):
            raise IndexError_("internal nodes only accept InternalEntry instances")
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"RTreeNode({kind}, level={self.level}, entries={len(self.entries)})"
