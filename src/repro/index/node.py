"""R-tree nodes."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.exceptions import IndexError_
from repro.geometry.mbr import MBR
from repro.index.entry import InternalEntry, LeafEntry
from repro.index.soa import NodeSoA

Entry = Union[LeafEntry, InternalEntry]


class RTreeNode:
    """A node of the R-tree.

    ``level`` 0 denotes a leaf node (its entries are :class:`LeafEntry`);
    higher levels hold :class:`InternalEntry` children.

    Besides the entry list, every node lazily exposes a struct-of-arrays view
    (:meth:`soa`) holding contiguous ``(n, d)`` arrays of its children's MBRs
    and leaf summaries, which is what the searchers evaluate bounds against.
    The view is maintained incrementally on :meth:`add` and invalidated on
    structural rewrites.
    """

    __slots__ = ("level", "entries", "_soa", "_soa_list_id")

    def __init__(self, level: int = 0, entries: List[Entry] | None = None):
        self.level = level
        self.entries: List[Entry] = list(entries) if entries else []
        self._soa: Optional[NodeSoA] = None
        self._soa_list_id: int = 0

    @property
    def is_leaf(self) -> bool:
        """Whether the node stores data entries."""
        return self.level == 0

    def compute_mbr(self) -> MBR:
        """Tightest MBR enclosing every entry of the node."""
        if not self.entries:
            raise IndexError_("cannot compute the MBR of an empty node")
        return MBR.union_of(entry.mbr for entry in self.entries)

    def add(self, entry: Entry) -> None:
        """Append an entry (caller is responsible for overflow handling)."""
        if self.is_leaf and not isinstance(entry, LeafEntry):
            raise IndexError_("leaf nodes only accept LeafEntry instances")
        if not self.is_leaf and not isinstance(entry, InternalEntry):
            raise IndexError_("internal nodes only accept InternalEntry instances")
        self.entries.append(entry)
        if self._soa is not None:
            self._soa.append(entry)

    def remove_entry(self, entry: Entry) -> None:
        """Remove an entry, keeping the SoA view aligned.

        A populated view is updated in place (the matching row shifts out); a
        node left empty drops its view entirely, since a SoA cannot represent
        zero rows.
        """
        index = self.entries.index(entry)
        self.entries.pop(index)
        if self._soa is not None:
            if self.entries:
                self._soa.remove_row(index)
            else:
                self._soa = None

    # ------------------------------------------------------------------
    # Struct-of-arrays view
    # ------------------------------------------------------------------
    def soa(self) -> NodeSoA:
        """The vectorised view of this node's entries (built lazily, cached).

        A stale view caused by wholesale entry replacement is detected through
        the row count and the identity of the ``entries`` list (rebinding
        ``node.entries`` to a new list always rebuilds); in-place MBR
        refreshes must go through :meth:`refresh_child_mbr` (or
        :meth:`invalidate_soa`) instead.
        """
        if (
            self._soa is None
            or self._soa.n != len(self.entries)
            or self._soa_list_id != id(self.entries)
        ):
            self._soa = NodeSoA(self.entries, is_leaf=self.is_leaf)
            self._soa_list_id = id(self.entries)
        return self._soa

    def invalidate_soa(self) -> None:
        """Drop the cached view after a structural rewrite of ``entries``."""
        self._soa = None

    def refresh_child_mbr(self, entry: InternalEntry) -> None:
        """Propagate an in-place directory-entry MBR refresh into the view."""
        if self._soa is not None:
            self._soa.refresh_box(self.entries.index(entry), entry.mbr)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"RTreeNode({kind}, level={self.level}, entries={len(self.entries)})"
