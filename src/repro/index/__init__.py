"""R-tree spatial index substrate.

The AKNN / RKNN algorithms index fuzzy objects with an R-tree whose leaf
entries summarise one fuzzy object each (support MBR, kernel MBR, conservative
lines and representative point — see :mod:`repro.fuzzy.summary`); the actual
point sets stay in the object store.

* :mod:`~repro.index.entry` — leaf and internal entries.
* :mod:`~repro.index.node` — tree nodes.
* :class:`~repro.index.rtree.RTree` — insertion with quadratic split, STR
  bulk loading, rectangle range search and validation.
* :mod:`~repro.index.bulk` — the counted STR bulk-load entry point used by
  recovery/cold opens and the lazy-delete compaction manager.
"""

from repro.index.bulk import CompactionManager, bulk_load_tree
from repro.index.entry import LeafEntry, InternalEntry
from repro.index.node import RTreeNode
from repro.index.rtree import RTree

__all__ = [
    "LeafEntry",
    "InternalEntry",
    "RTreeNode",
    "RTree",
    "bulk_load_tree",
    "CompactionManager",
]
