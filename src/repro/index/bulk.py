"""Counted STR bulk loading and deferred compaction.

Two pieces move the R-tree's expensive maintenance off the write path:

* :func:`bulk_load_tree` — the one entry point through which recovery, cold
  ``open()`` and compaction rebuild a tree.  It delegates to
  :meth:`repro.index.rtree.RTree.bulk_load` (Sort-Tile-Recursive packing:
  one argsort by x, tiles re-sorted by y, nodes packed level by level) and
  bumps the BULK_LOADS counter, which is how the crash-recovery tests *prove*
  the fast path was taken rather than one-insert-at-a-time rebuilding.
* :class:`CompactionManager` — durable databases delete with
  :meth:`~repro.index.rtree.RTree.delete_lazy` (no orphan reinsertion on the
  write path) and let the manager track the accumulated fill debt.  Once
  ``lazy deletes / live entries`` crosses ``compaction_debt_ratio`` the whole
  tree is repacked with one STR pass, amortising what Guttman's CondenseTree
  would have paid per delete.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config import DEFAULT_COMPACTION_DEBT_RATIO, RuntimeConfig
from repro.fuzzy.summary import FuzzyObjectSummary
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector


def bulk_load_tree(
    summaries: Iterable[FuzzyObjectSummary],
    config: Optional[RuntimeConfig] = None,
    metrics: Optional[MetricsCollector] = None,
) -> RTree:
    """STR-pack ``summaries`` into a fresh tree, counting the bulk load."""
    config = config or RuntimeConfig()
    tree = RTree.bulk_load(
        list(summaries),
        max_entries=config.rtree_max_entries,
        min_fill=config.rtree_min_fill,
    )
    if metrics is not None:
        metrics.increment(MetricsCollector.BULK_LOADS)
    return tree


class CompactionManager:
    """Tracks lazy-delete debt and repacks the tree when it grows too large.

    The owner calls :meth:`note_lazy_delete` after every
    :meth:`~repro.index.rtree.RTree.delete_lazy` and then offers the tree to
    :meth:`maybe_compact`; a non-``None`` return value is the freshly packed
    replacement tree (the caller swaps it in under its own write lock).
    """

    def __init__(
        self,
        *,
        debt_ratio: float = DEFAULT_COMPACTION_DEBT_RATIO,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if not 0.0 < debt_ratio <= 1.0:
            raise ValueError("debt_ratio must be in (0, 1]")
        self.debt_ratio = float(debt_ratio)
        self.metrics = metrics
        self._debt = 0

    @property
    def debt(self) -> int:
        """Lazy deletes since the last compaction (or construction)."""
        return self._debt

    def note_lazy_delete(self) -> None:
        self._debt += 1
        if self.metrics is not None:
            self.metrics.increment(MetricsCollector.LAZY_DELETES)

    def due(self, live_entries: int) -> bool:
        """Whether the debt ratio crossed the rebuild threshold."""
        if self._debt == 0:
            return False
        return self._debt >= self.debt_ratio * max(1, live_entries)

    def maybe_compact(
        self,
        tree: RTree,
        summaries: Iterable[FuzzyObjectSummary],
        config: Optional[RuntimeConfig] = None,
    ) -> Optional[RTree]:
        """Return a repacked replacement for ``tree`` when compaction is due."""
        if not self.due(len(tree)):
            return None
        rebuilt = bulk_load_tree(summaries, config=config, metrics=self.metrics)
        self._debt = 0
        if self.metrics is not None:
            self.metrics.increment(MetricsCollector.COMPACTIONS)
        return rebuilt
