"""R-tree entries.

Two kinds of entries exist:

* :class:`LeafEntry` — corresponds to one fuzzy object.  Its MBR is the MBR of
  the object's support (``M_A`` in the paper).  The attached
  :class:`~repro.fuzzy.summary.FuzzyObjectSummary` carries the extra payload
  the optimised bounds need.
* :class:`InternalEntry` — points to a child node and stores the MBR covering
  everything below it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fuzzy.summary import FuzzyObjectSummary
from repro.geometry.mbr import MBR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.node import RTreeNode


class LeafEntry:
    """A data entry referencing one fuzzy object."""

    __slots__ = ("summary",)

    def __init__(self, summary: FuzzyObjectSummary):
        self.summary = summary

    @property
    def mbr(self) -> MBR:
        """MBR of the object's support set."""
        return self.summary.support_mbr

    @property
    def object_id(self) -> int:
        """Identifier used to probe the object store."""
        return self.summary.object_id

    def __repr__(self) -> str:
        return f"LeafEntry(object_id={self.object_id})"


class InternalEntry:
    """A directory entry referencing a child node."""

    __slots__ = ("mbr", "child")

    def __init__(self, mbr: MBR, child: "RTreeNode"):
        self.mbr = mbr
        self.child = child

    def refresh_mbr(self) -> None:
        """Recompute the MBR from the child's entries after structural changes."""
        self.mbr = self.child.compute_mbr()

    def __repr__(self) -> str:
        return f"InternalEntry(child_level={self.child.level})"
