"""Struct-of-arrays (SoA) views of R-tree nodes.

The per-entry objects (:class:`~repro.index.entry.LeafEntry` /
:class:`~repro.index.entry.InternalEntry`) are convenient for tree
maintenance, but evaluating a bound against every entry of a node one Python
object at a time dominates the query cost.  :class:`NodeSoA` mirrors a node's
entries as contiguous ``(n, d)`` arrays so the searchers compute ``MinDist``,
``MaxDist`` and the approximated alpha-cut MBR ``M_A(alpha)*`` (Equation 2)
for the whole node in a handful of NumPy calls.

A leaf SoA additionally carries the summary payload of every entry — kernel
MBRs, conservative-line coefficients and representative kernel points — and
memoises the Equation-2 reconstruction per threshold in a small LRU cache, so
repeated queries at the same ``alpha`` (and every query of a batch) share one
reconstruction per node.

The SoA is maintained incrementally: appending an entry grows the arrays with
amortised-doubling capacity, and directory-entry MBR refreshes update the
affected row in place.  Structural rewrites (node splits) invalidate the view,
which is rebuilt lazily on next access.

The element-wise formulas are kept identical to the scalar paths in
:mod:`repro.geometry.mbr` and :class:`~repro.fuzzy.summary.FuzzyObjectSummary`
so vectorized and per-entry evaluation agree to the last bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_NODE_ALPHA_CACHE_CAPACITY
from repro.geometry.mbr import MBR
from repro.index.entry import InternalEntry, LeafEntry
from repro.storage.cache import LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.node import Entry


# ----------------------------------------------------------------------
# Vectorized bound kernels
# ----------------------------------------------------------------------
def min_dist_to_boxes(
    query_lower: np.ndarray,
    query_upper: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> np.ndarray:
    """``MinDist`` (Equation 1) between one or more query boxes and ``n`` boxes.

    ``query_lower`` / ``query_upper`` may be ``(d,)`` (one query, result
    ``(n,)``) or ``(B, d)`` (a batch, result ``(B, n)``); ``lower`` / ``upper``
    are the ``(n, d)`` box arrays.
    """
    gap = np.maximum(
        0.0,
        np.maximum(
            lower - query_upper[..., None, :], query_lower[..., None, :] - upper
        ),
    )
    return np.sqrt(np.einsum("...nd,...nd->...n", gap, gap))


def max_dist_to_boxes(
    query_lower: np.ndarray,
    query_upper: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> np.ndarray:
    """``MaxDist`` (Equation 3), with the same broadcasting as :func:`min_dist_to_boxes`."""
    span = np.maximum(
        np.abs(upper - query_lower[..., None, :]),
        np.abs(lower - query_upper[..., None, :]),
    )
    return np.sqrt(np.einsum("...nd,...nd->...n", span, span))


# Element budget of one (rows, N) MaxDist block in the all-pairs reverse-kNN
# filter kernel; bounds peak memory at a few megabytes regardless of N.
_PAIRWISE_BLOCK_ELEMENTS = 1_048_576


def certainly_closer_counts(
    row_lower: np.ndarray,
    row_upper: np.ndarray,
    all_lower: np.ndarray,
    all_upper: np.ndarray,
    thresholds: np.ndarray,
    self_index: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-row counts of boxes whose ``MaxDist`` beats the row's threshold.

    For every row box ``i`` (``row_lower``/``row_upper``, shape ``(m, d)``)
    and every box ``j`` of the full set (``all_lower``/``all_upper``, shape
    ``(N, d)``), the pair is counted when ``MaxDist(row_i, box_j) <
    thresholds[..., i]`` — the all-pairs disqualification test of the reverse
    AKNN candidate filter, evaluated as chunked ``(rows, N)`` matrices so the
    peak temporary stays bounded for any ``N``.

    ``thresholds`` is ``(m,)`` for one query or ``(Q, m)`` for a batch of
    queries sharing the same boxes (the MaxDist matrix is query-independent,
    so a whole coalesced bucket pays for it once); the result has the same
    leading shape.  ``self_index`` gives each row's position within the full
    box set so the row's pairing with itself is excluded from its count.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    single = thresholds.ndim == 1
    if single:
        thresholds = thresholds[None, :]
    m = row_lower.shape[0]
    n = all_lower.shape[0]
    counts = np.zeros((thresholds.shape[0], m), dtype=np.int64)
    # The (Q, rows, N) comparison temp is the peak allocation, so the row
    # budget divides by the query count as well as the box count.
    chunk = max(1, _PAIRWISE_BLOCK_ELEMENTS // max(1, n * thresholds.shape[0]))
    for start in range(0, m, chunk):
        stop = min(m, start + chunk)
        md = max_dist_to_boxes(
            row_lower[start:stop], row_upper[start:stop], all_lower, all_upper
        )
        block = thresholds[:, start:stop]
        counts[:, start:stop] = (md[None, :, :] < block[:, :, None]).sum(axis=2)
        if self_index is not None:
            rows = np.arange(start, stop)
            self_md = md[rows - start, self_index[start:stop]]
            counts[:, start:stop] -= self_md[None, :] < block
    return counts[0] if single else counts


def rep_to_samples_distances(reps: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Lemma 1 upper bounds: ``min_{q in samples} ||rep_i - q||`` per row.

    ``reps`` is ``(n, d)``, ``samples`` is ``(s, d)``; the result is ``(n,)``.
    """
    diff = reps[:, None, :] - samples[None, :, :]
    sq = np.einsum("nsd,nsd->ns", diff, diff)
    return np.sqrt(sq.min(axis=1))


class NodeSoA:
    """Contiguous arrays mirroring the entries of one R-tree node.

    Attributes are backed by over-allocated buffers; the public accessors
    return views truncated to the live row count ``n`` so appends stay
    amortised O(d).
    """

    __slots__ = (
        "is_leaf",
        "dimensions",
        "_n",
        "_lo",
        "_hi",
        "_kernel_lo",
        "_kernel_hi",
        "_up_slope",
        "_up_icpt",
        "_lo_slope",
        "_lo_icpt",
        "_reps",
        "_object_ids",
        "_alpha_cache",
    )

    def __init__(self, entries: Sequence["Entry"], is_leaf: bool):
        if not entries:
            raise ValueError("cannot build a SoA view of an empty node")
        self.is_leaf = is_leaf
        self.dimensions = entries[0].mbr.dimensions
        n = len(entries)
        capacity = max(4, n)
        d = self.dimensions
        self._n = 0
        self._lo = np.empty((capacity, d))
        self._hi = np.empty((capacity, d))
        if is_leaf:
            self._kernel_lo = np.empty((capacity, d))
            self._kernel_hi = np.empty((capacity, d))
            self._up_slope = np.empty((capacity, d))
            self._up_icpt = np.empty((capacity, d))
            self._lo_slope = np.empty((capacity, d))
            self._lo_icpt = np.empty((capacity, d))
            self._reps = np.empty((capacity, d))
            self._object_ids = np.empty(capacity, dtype=np.int64)
        else:
            self._kernel_lo = self._kernel_hi = None
            self._up_slope = self._up_icpt = None
            self._lo_slope = self._lo_icpt = None
            self._reps = None
            self._object_ids = None
        self._alpha_cache: LRUCache[float, Tuple[np.ndarray, np.ndarray]] = LRUCache(
            DEFAULT_NODE_ALPHA_CACHE_CAPACITY if is_leaf else 0
        )
        for entry in entries:
            self.append(entry)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of live rows (entries mirrored)."""
        return self._n

    def _grow(self) -> None:
        capacity = self._lo.shape[0] * 2

        def enlarge(buffer: np.ndarray) -> np.ndarray:
            grown = np.empty((capacity,) + buffer.shape[1:], dtype=buffer.dtype)
            grown[: self._n] = buffer[: self._n]
            return grown

        self._lo = enlarge(self._lo)
        self._hi = enlarge(self._hi)
        if self.is_leaf:
            self._kernel_lo = enlarge(self._kernel_lo)
            self._kernel_hi = enlarge(self._kernel_hi)
            self._up_slope = enlarge(self._up_slope)
            self._up_icpt = enlarge(self._up_icpt)
            self._lo_slope = enlarge(self._lo_slope)
            self._lo_icpt = enlarge(self._lo_icpt)
            self._reps = enlarge(self._reps)
            self._object_ids = enlarge(self._object_ids)

    def append(self, entry: "Entry") -> None:
        """Mirror one appended entry (amortised-doubling growth)."""
        if self._n == self._lo.shape[0]:
            self._grow()
        i = self._n
        mbr = entry.mbr
        self._lo[i] = mbr.lower
        self._hi[i] = mbr.upper
        if self.is_leaf:
            if not isinstance(entry, LeafEntry):  # pragma: no cover - guarded upstream
                raise TypeError("leaf SoA only accepts LeafEntry rows")
            summary = entry.summary
            self._kernel_lo[i] = summary.kernel_mbr.lower
            self._kernel_hi[i] = summary.kernel_mbr.upper
            for dim in range(self.dimensions):
                self._up_slope[i, dim] = summary.upper_lines[dim].slope
                self._up_icpt[i, dim] = summary.upper_lines[dim].intercept
                self._lo_slope[i, dim] = summary.lower_lines[dim].slope
                self._lo_icpt[i, dim] = summary.lower_lines[dim].intercept
            self._reps[i] = summary.representative
            self._object_ids[i] = summary.object_id
        elif not isinstance(entry, InternalEntry):  # pragma: no cover
            raise TypeError("internal SoA only accepts InternalEntry rows")
        self._n = i + 1
        self._alpha_cache.clear()

    def refresh_box(self, index: int, mbr: MBR) -> None:
        """Update one row's MBR in place after a directory-entry refresh."""
        self._lo[index] = mbr.lower
        self._hi[index] = mbr.upper
        self._alpha_cache.clear()

    def remove_row(self, index: int) -> None:
        """Drop one row in place after an entry deletion.

        The rows above ``index`` shift down by one so the view stays aligned
        with the node's ``entries`` list (which removes by ``list.pop``); the
        memoised per-alpha reconstructions are invalidated.
        """
        n = self._n
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for SoA of {n} rows")

        def shift(buffer: np.ndarray) -> None:
            buffer[index : n - 1] = buffer[index + 1 : n]

        shift(self._lo)
        shift(self._hi)
        if self.is_leaf:
            shift(self._kernel_lo)
            shift(self._kernel_hi)
            shift(self._up_slope)
            shift(self._up_icpt)
            shift(self._lo_slope)
            shift(self._lo_icpt)
            shift(self._reps)
            shift(self._object_ids)
        self._n = n - 1
        self._alpha_cache.clear()

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    @property
    def lo(self) -> np.ndarray:
        """``(n, d)`` lower bounds of the entry MBRs."""
        return self._lo[: self._n]

    @property
    def hi(self) -> np.ndarray:
        """``(n, d)`` upper bounds of the entry MBRs."""
        return self._hi[: self._n]

    @property
    def reps(self) -> np.ndarray:
        """``(n, d)`` representative kernel points (leaf SoA only)."""
        return self._reps[: self._n]

    @property
    def object_ids(self) -> np.ndarray:
        """``(n,)`` object ids (leaf SoA only)."""
        return self._object_ids[: self._n]

    # ------------------------------------------------------------------
    # Vectorized bounds
    # ------------------------------------------------------------------
    def approx_alpha_bounds(self, alpha: float) -> Tuple[np.ndarray, np.ndarray]:
        """``M_A(alpha)*`` (Equation 2) for every leaf entry, memoised per alpha.

        Returns ``(lower, upper)`` arrays of shape ``(n, d)``; element-wise the
        computation matches
        :meth:`repro.fuzzy.summary.FuzzyObjectSummary.approx_alpha_mbr`.
        """
        if not self.is_leaf:
            raise TypeError("approx_alpha_bounds requires a leaf SoA")
        alpha = float(alpha)
        cached = self._alpha_cache.get(alpha)
        if cached is not None:
            return cached
        n = self._n
        delta_up = np.maximum(0.0, self._up_slope[:n] * alpha + self._up_icpt[:n])
        delta_lo = np.maximum(0.0, self._lo_slope[:n] * alpha + self._lo_icpt[:n])
        upper = np.minimum(self._kernel_hi[:n] + delta_up, self._hi[:n])
        lower = np.maximum(self._kernel_lo[:n] - delta_lo, self._lo[:n])
        # Numerical safety, as in the scalar path: collapse inverted intervals
        # onto their midpoint so the approximation stays a valid box.
        inverted = lower > upper
        if inverted.any():
            mid = (lower + upper) / 2.0
            lower = np.where(inverted, mid, lower)
            upper = np.where(inverted, mid, upper)
        result = (lower, upper)
        self._alpha_cache.put(alpha, result)
        return result

    def min_dist(self, query_lower: np.ndarray, query_upper: np.ndarray) -> np.ndarray:
        """``MinDist`` from the query box(es) to every entry MBR."""
        return min_dist_to_boxes(query_lower, query_upper, self.lo, self.hi)

    def improved_min_dist(
        self, alpha: float, query_lower: np.ndarray, query_upper: np.ndarray
    ) -> np.ndarray:
        """``d-_alpha`` (Section 3.2): MinDist against ``M_A(alpha)*`` per entry."""
        lower, upper = self.approx_alpha_bounds(alpha)
        return min_dist_to_boxes(query_lower, query_upper, lower, upper)

    def max_dist(
        self, alpha: float, query_lower: np.ndarray, query_upper: np.ndarray
    ) -> np.ndarray:
        """``MaxDist(M_A(alpha)*, M_Q(alpha))`` per entry (lazy-probe upper bound)."""
        lower, upper = self.approx_alpha_bounds(alpha)
        return max_dist_to_boxes(query_lower, query_upper, lower, upper)

    def rep_upper_bounds(self, query_samples: np.ndarray) -> np.ndarray:
        """Lemma 1 upper bounds from the stored representatives to ``Q'_alpha``."""
        return rep_to_samples_distances(self.reps, query_samples)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"NodeSoA({kind}, n={self._n}, d={self.dimensions})"
