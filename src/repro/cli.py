"""Command-line interface.

Installed as the ``fuzzy-knn`` console script (see ``pyproject.toml``), also
runnable as ``python -m repro.cli``.  Subcommands:

``generate``
    Build a dataset, index it, and persist the database to a directory.

``aknn`` / ``rknn``
    Run a single query (with a freshly generated query object) against either
    a saved database or an in-memory one generated on the fly, and print the
    result together with its cost counters.

``batch``
    Run a batch of AKNN queries through the vectorized batch executor and
    report the aggregate cost plus throughput (queries/sec).

``experiment``
    Reproduce one of the paper's figures and print the corresponding tables.

All query subcommands accept ``--stats`` to additionally dump every collected
counter, including cache hit/miss telemetry (object-store buffer pool,
per-object alpha-cut caches, distance-profile store).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.bench.config import scale_for_name
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import result_to_full_text
from repro.core.database import FuzzyDatabase
from repro.datasets.builder import build_database
from repro.datasets.queries import generate_query_object


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kind", choices=("synthetic", "cells"), default="synthetic")
    parser.add_argument("--n-objects", type=int, default=1000)
    parser.add_argument("--points-per-object", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--space-size", type=float, default=100.0)


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--database", default=None, help="directory of a saved database")
    _add_dataset_arguments(parser)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--query-seed", type=int, default=99)
    parser.add_argument(
        "--stats",
        action="store_true",
        help="dump every collected counter, including cache hit/miss telemetry",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="fuzzy-knn",
        description="kNN search for fuzzy objects (SIGMOD 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate and persist a database")
    _add_dataset_arguments(generate)
    generate.add_argument("--output", required=True, help="directory for the database")

    aknn = subparsers.add_parser("aknn", help="run one ad-hoc kNN query")
    _add_query_arguments(aknn)
    aknn.add_argument("--alpha", type=float, default=0.5)
    aknn.add_argument(
        "--method", choices=("basic", "lb", "lb_lp", "lb_lp_ub"), default="lb_lp_ub"
    )

    rknn = subparsers.add_parser("rknn", help="run one range kNN query")
    _add_query_arguments(rknn)
    rknn.add_argument("--alpha-start", type=float, default=0.4)
    rknn.add_argument("--alpha-end", type=float, default=0.6)
    rknn.add_argument(
        "--method", choices=("naive", "basic", "rss", "rss_icr"), default="rss_icr"
    )

    batch = subparsers.add_parser(
        "batch", help="run a batch of AKNN queries through the vectorized executor"
    )
    _add_query_arguments(batch)
    batch.add_argument("--alpha", type=float, default=0.5)
    batch.add_argument("--n-queries", type=int, default=64)
    batch.add_argument(
        "--method", choices=("basic", "lb", "lb_lp", "lb_lp_ub"), default="lb_lp_ub"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the refinement phase (default: config)",
    )

    experiment = subparsers.add_parser("experiment", help="reproduce one paper figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    experiment.add_argument(
        "--scale", choices=("tiny", "laptop", "paper"), default="laptop"
    )
    return parser


def _print_stats_details(database: FuzzyDatabase, stats) -> None:
    """Dump every collected counter plus cache hit/miss telemetry."""
    from repro.fuzzy.fuzzy_object import CUT_CACHE_STATS

    print("counters:")
    for name, value in sorted(stats.as_dict().items()):
        print(f"  {name}: {value}")
    store = database.store.statistics
    print(
        f"store cache: {store.cache_hits} hits, "
        f"{store.physical_reads} physical reads"
    )
    print(
        f"alpha-cut cache: {CUT_CACHE_STATS['hits']} hits, "
        f"{CUT_CACHE_STATS['misses']} misses"
    )


def _load_or_build_database(args: argparse.Namespace) -> FuzzyDatabase:
    if args.database:
        return FuzzyDatabase.open(args.database)
    return build_database(
        kind=args.kind,
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        space_size=args.space_size,
    )


def _command_generate(args: argparse.Namespace) -> int:
    database = build_database(
        kind=args.kind,
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        space_size=args.space_size,
        path=args.output,
    )
    database.save(args.output)
    print(
        f"wrote {len(database)} {args.kind} objects "
        f"({args.points_per_object} points each) to {args.output}"
    )
    database.close()
    return 0


def _command_aknn(args: argparse.Namespace) -> int:
    database = _load_or_build_database(args)
    rng = np.random.default_rng(args.query_seed)
    query = generate_query_object(
        rng, kind=args.kind, space_size=args.space_size,
        points_per_object=args.points_per_object,
    )
    result = database.aknn(query, k=args.k, alpha=args.alpha, method=args.method)
    print(f"AKNN(k={args.k}, alpha={args.alpha}, method={args.method})")
    for neighbor in result.sorted_by_distance():
        distance = (
            f"{neighbor.distance:.4f}" if neighbor.distance is not None
            else f"<= {neighbor.upper_bound:.4f}"
        )
        print(f"  object {neighbor.object_id:>6}  distance {distance}")
    print(
        f"cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.node_accesses} node accesses, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    if args.stats:
        _print_stats_details(database, result.stats)
    database.close()
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    database = _load_or_build_database(args)
    rng = np.random.default_rng(args.query_seed)
    queries = [
        generate_query_object(
            rng, kind=args.kind, space_size=args.space_size,
            points_per_object=args.points_per_object,
        )
        for _ in range(args.n_queries)
    ]
    result = database.aknn_batch(
        queries, k=args.k, alpha=args.alpha, method=args.method, workers=args.workers
    )
    print(
        f"BATCH AKNN({args.n_queries} queries, k={args.k}, alpha={args.alpha}, "
        f"method={args.method})"
    )
    print(
        f"cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.node_accesses} node accesses, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    print(f"throughput: {result.throughput_qps:.1f} queries/sec")
    if args.stats:
        _print_stats_details(database, result.stats)
    database.close()
    return 0


def _command_rknn(args: argparse.Namespace) -> int:
    database = _load_or_build_database(args)
    rng = np.random.default_rng(args.query_seed)
    query = generate_query_object(
        rng, kind=args.kind, space_size=args.space_size,
        points_per_object=args.points_per_object,
    )
    alpha_range = (args.alpha_start, args.alpha_end)
    result = database.rknn(query, k=args.k, alpha_range=alpha_range, method=args.method)
    print(f"RKNN(k={args.k}, range=[{args.alpha_start}, {args.alpha_end}], method={args.method})")
    for object_id in result.object_ids:
        print(f"  object {object_id:>6}  qualifying {result.assignments[object_id]}")
    print(
        f"cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.aknn_calls} AKNN calls, "
        f"{result.stats.refinement_steps} refinement steps, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    if args.stats:
        _print_stats_details(database, result.stats)
    database.close()
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    config = scale_for_name(args.scale)
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        result = run_experiment(name, config)
        print(result_to_full_text(result))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "aknn": _command_aknn,
        "rknn": _command_rknn,
        "batch": _command_batch,
        "experiment": _command_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised through the console script
    sys.exit(main())
