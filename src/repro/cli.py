"""Command-line interface.

Installed as the ``fuzzy-knn`` console script (see ``pyproject.toml``), also
runnable as ``python -m repro.cli``.  Subcommands:

``generate``
    Build a dataset, index it, and persist the database to a directory.

``aknn`` / ``rknn`` / ``reverse``
    Build one typed request (``AknnRequest`` / ``SweepRequest`` /
    ``ReverseRequest``; see :mod:`repro.core.requests`) with a freshly
    generated query object, execute it against either a saved database or an
    in-memory one generated on the fly, and print the result together with
    its cost counters.  ``rknn`` is the paper's *alpha-range* kNN sweep;
    ``reverse`` is the reverse AKNN query (monochromatic semantics — which
    objects count the query among their own k nearest neighbours).

``batch``
    Submit a batch of ``AknnRequest`` objects through ``execute_batch``; the
    planner answers the whole bucket with one shared traversal and the
    command reports the aggregate cost plus throughput (queries/sec).

``serve``
    Stand up the sharded query service (partitioned indexes + request
    coalescing) and drive it closed-loop with concurrent clients submitting
    typed requests, reporting sustained queries/sec and p50/p99 latency.
    ``--mix`` interleaves request *types* (AKNN / reverse / range) in one
    workload — the coalescer buckets them by ``bucket_key()`` — and
    ``--update-ops`` mixes live inserts/deletes into the run to exercise the
    epoch machinery.  ``--wal-dir`` makes the shards durable (per-shard
    write-ahead logs + snapshots), ``--subscribers`` registers standing
    queries that receive result deltas from the live updates.

``recover``
    Rebuild a durable database directory after a crash: last snapshot + WAL
    tail replay + one STR bulk load per shard, then validate.

``experiment``
    Reproduce one of the paper's figures and print the corresponding tables.

All query subcommands accept ``--stats`` to additionally dump every collected
counter, including cache hit/miss telemetry (object-store buffer pool,
per-object alpha-cut caches, distance-profile store).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.bench.config import scale_for_name
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import result_to_full_text
from repro.core.database import FuzzyDatabase
from repro.core.requests import (
    AknnRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
)
from repro.datasets.builder import build_database
from repro.datasets.queries import generate_query_object


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kind", choices=("synthetic", "cells"), default="synthetic")
    parser.add_argument("--n-objects", type=int, default=1000)
    parser.add_argument("--points-per-object", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--space-size", type=float, default=100.0)


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--database", default=None, help="directory of a saved database")
    _add_dataset_arguments(parser)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--query-seed", type=int, default=99)
    parser.add_argument(
        "--stats",
        action="store_true",
        help="dump every collected counter, including cache hit/miss telemetry",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="fuzzy-knn",
        description="kNN search for fuzzy objects (SIGMOD 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate and persist a database")
    _add_dataset_arguments(generate)
    generate.add_argument("--output", required=True, help="directory for the database")

    aknn = subparsers.add_parser("aknn", help="run one ad-hoc kNN query")
    _add_query_arguments(aknn)
    aknn.add_argument("--alpha", type=float, default=0.5)
    aknn.add_argument(
        "--method", choices=("basic", "lb", "lb_lp", "lb_lp_ub"), default="lb_lp_ub"
    )

    rknn = subparsers.add_parser(
        "rknn",
        help="run one alpha-range kNN query (threshold sweep; NOT reverse kNN)",
        description=(
            "Run the paper's Range kNN query (Definition 5): sweep the "
            "probability threshold over [--alpha-start, --alpha-end] and "
            "report, per qualifying object, the sub-ranges in which it is "
            "among the query's k nearest neighbours.  Despite the shared "
            "initialism, this is not a reverse kNN query — use the "
            "'reverse' subcommand for that."
        ),
    )
    _add_query_arguments(rknn)
    rknn.add_argument("--alpha-start", type=float, default=0.4)
    rknn.add_argument("--alpha-end", type=float, default=0.6)
    rknn.add_argument(
        "--method", choices=("naive", "basic", "rss", "rss_icr"), default="rss_icr"
    )

    reverse = subparsers.add_parser(
        "reverse",
        help="run one reverse kNN query (who counts the query among their k-NN)",
        description=(
            "Run a reverse AKNN query with monochromatic semantics: every "
            "dataset object A is returned iff the query object would be among "
            "A's k nearest neighbours at threshold --alpha, where A's "
            "neighbours are drawn from the dataset without A itself, plus the "
            "query.  Methods: 'linear' verifies every object exhaustively; "
            "'pruned' filters candidates through the summary bounds, then "
            "verifies each with one single-query AKNN; 'batch' (default) "
            "evaluates the filter as vectorized all-pairs matrices over the "
            "SoA summary arrays and verifies every surviving candidate "
            "through one shared batch traversal.  All methods return "
            "identical reverse-neighbour sets."
        ),
    )
    _add_query_arguments(reverse)
    reverse.add_argument("--alpha", type=float, default=0.5)
    reverse.add_argument(
        "--method", choices=("linear", "pruned", "batch"), default="batch"
    )

    batch = subparsers.add_parser(
        "batch", help="run a batch of AKNN queries through the vectorized executor"
    )
    _add_query_arguments(batch)
    batch.add_argument("--alpha", type=float, default=0.5)
    batch.add_argument("--n-queries", type=int, default=64)
    batch.add_argument(
        "--method", choices=("basic", "lb", "lb_lp", "lb_lp_ub"), default="lb_lp_ub"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the refinement phase (default: config)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the sharded query service closed-loop and report QPS + latency",
        description=(
            "Partition the dataset across --shards independent indexes, start "
            "the coalescing QueryService in front of them, and drive it with "
            "--clients concurrent threads submitting --n-requests typed "
            "requests.  --mix selects the request types in the workload "
            "(e.g. --mix aknn,reverse,range submits a mixed-type stream); "
            "the coalescer groups concurrent submissions by their "
            "bucket_key(), so each flushed bucket shares one traversal / "
            "filter pass.  Tuning guide: shard count should not exceed "
            "physical cores (fan-out runs one thread per shard); a larger "
            "--window-ms coalesces more aggressively (higher throughput, "
            "higher p50), a smaller one favours latency.  See the ROADMAP's "
            "'Serving architecture' section for details."
        ),
    )
    _add_query_arguments(serve)
    serve.add_argument("--alpha", type=float, default=0.5)
    serve.add_argument(
        "--method", choices=("basic", "lb", "lb_lp", "lb_lp_ub"), default="lb_lp_ub"
    )
    serve.add_argument(
        "--shards", type=int, default=4, help="number of index partitions"
    )
    serve.add_argument(
        "--placement", choices=("hash", "space"), default="hash",
        help="shard placement policy (hash: uniform; space: axis stripes)",
    )
    serve.add_argument(
        "--n-requests", type=int, default=256, help="total requests to serve"
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads"
    )
    serve.add_argument(
        "--query-pool", type=int, default=64,
        help="number of distinct query objects the clients draw from",
    )
    serve.add_argument(
        "--window-ms", type=float, default=2.0,
        help="coalescer window: max milliseconds a request waits for companions",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="bucket size that triggers an immediate flush",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="admission-control bound on waiting requests",
    )
    serve.add_argument(
        "--update-ops", type=int, default=0,
        help="live insert+delete pairs applied concurrently with the run",
    )
    serve.add_argument(
        "--mix", default="aknn",
        help=(
            "comma-separated request types the clients draw from "
            "(aknn, reverse, range); e.g. --mix aknn,reverse,range submits "
            "a mixed-type workload through one coalescing surface"
        ),
    )
    serve.add_argument(
        "--radius", type=float, default=5.0,
        help="radius used by range requests in a --mix workload",
    )
    serve.add_argument(
        "--fault-plan", default=None,
        help=(
            "inject faults into the shard fan-out: ';'-separated rules of "
            "key=value pairs, e.g. 'shard=1,kind=raise,count=3;"
            "shard=0,op=aknn_batch,kind=delay,delay_ms=20' "
            "(see repro.service.faults)"
        ),
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline budget in milliseconds (default: none)",
    )
    serve.add_argument(
        "--wal-dir", default=None,
        help=(
            "enable durability: every live mutation is logged to a per-shard "
            "write-ahead log under this directory before it is applied, and "
            "shards snapshot independently ('fuzzy-knn recover' heals the "
            "directory after a crash)"
        ),
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=0,
        help=(
            "snapshot a shard and truncate its WAL every N logged mutations "
            "(0: snapshot only on clean shutdown)"
        ),
    )
    serve.add_argument(
        "--subscribers", type=int, default=0,
        help=(
            "standing kNN queries registered up front; live updates push "
            "result deltas to their streams and the run reports how many "
            "deltas were produced"
        ),
    )

    recover = subparsers.add_parser(
        "recover",
        help="rebuild a durable database directory after a crash",
        description=(
            "Read the directory's manifest, load the last snapshot, replay "
            "the WAL tail (idempotently — ids are never recycled), rebuild "
            "the R-tree with one STR bulk-load pass per shard, and validate "
            "the result.  Works on both single-node directories "
            "(FuzzyDatabase.enable_durability) and sharded ones "
            "(per-shard subdirectories; shards recover independently)."
        ),
    )
    recover.add_argument("directory", help="durable database directory (holds MANIFEST.json)")
    recover.add_argument(
        "--stats", action="store_true",
        help="dump every recovery counter",
    )

    experiment = subparsers.add_parser("experiment", help="reproduce one paper figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    experiment.add_argument(
        "--scale", choices=("tiny", "laptop", "paper"), default="laptop"
    )
    return parser


def _print_stats_details(database: FuzzyDatabase, stats) -> None:
    """Dump every collected counter plus cache hit/miss telemetry."""
    from repro.fuzzy.fuzzy_object import CUT_CACHE_STATS

    print("counters:")
    for name, value in sorted(stats.as_dict().items()):
        print(f"  {name}: {value}")
    store = database.store.statistics
    print(
        f"store cache: {store.cache_hits} hits, "
        f"{store.physical_reads} physical reads"
    )
    print(
        f"alpha-cut cache: {CUT_CACHE_STATS['hits']} hits, "
        f"{CUT_CACHE_STATS['misses']} misses"
    )


def _load_or_build_database(args: argparse.Namespace) -> FuzzyDatabase:
    if args.database:
        return FuzzyDatabase.open(args.database)
    return build_database(
        kind=args.kind,
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        space_size=args.space_size,
    )


def _command_generate(args: argparse.Namespace) -> int:
    database = build_database(
        kind=args.kind,
        n_objects=args.n_objects,
        points_per_object=args.points_per_object,
        seed=args.seed,
        space_size=args.space_size,
        path=args.output,
    )
    database.save(args.output)
    print(
        f"wrote {len(database)} {args.kind} objects "
        f"({args.points_per_object} points each) to {args.output}"
    )
    database.close()
    return 0


def _command_aknn(args: argparse.Namespace) -> int:
    database = _load_or_build_database(args)
    rng = np.random.default_rng(args.query_seed)
    query = generate_query_object(
        rng, kind=args.kind, space_size=args.space_size,
        points_per_object=args.points_per_object,
    )
    result = database.execute(
        AknnRequest(query, k=args.k, alpha=args.alpha, method=args.method)
    )
    print(f"AKNN(k={args.k}, alpha={args.alpha}, method={args.method})")
    for neighbor in result.sorted_by_distance():
        distance = (
            f"{neighbor.distance:.4f}" if neighbor.distance is not None
            else f"<= {neighbor.upper_bound:.4f}"
        )
        print(f"  object {neighbor.object_id:>6}  distance {distance}")
    print(
        f"cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.node_accesses} node accesses, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    if args.stats:
        _print_stats_details(database, result.stats)
    database.close()
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    import time

    from repro.core.results import QueryStats

    database = _load_or_build_database(args)
    if args.workers is not None:
        # The batch executor reads batch_workers from the shared config at
        # call time, so overriding it here applies the flag to every bucket
        # this command executes through the request surface.
        database.config.batch_workers = args.workers
    rng = np.random.default_rng(args.query_seed)
    requests = [
        AknnRequest(
            generate_query_object(
                rng, kind=args.kind, space_size=args.space_size,
                points_per_object=args.points_per_object,
            ),
            k=args.k,
            alpha=args.alpha,
            method=args.method,
        )
        for _ in range(args.n_queries)
    ]
    database.reset_statistics()
    t0 = time.perf_counter()
    results = database.execute_batch(requests)
    elapsed = time.perf_counter() - t0
    aggregate = QueryStats()
    for result in results:
        aggregate.merge(result.stats)
    aggregate.object_accesses = database.object_accesses
    aggregate.elapsed_seconds = elapsed
    if elapsed > 0.0:
        aggregate.extra["throughput_qps"] = args.n_queries / elapsed
    print(
        f"BATCH AKNN({args.n_queries} queries, k={args.k}, alpha={args.alpha}, "
        f"method={args.method})"
    )
    print(
        f"cost: {aggregate.object_accesses} object accesses, "
        f"{aggregate.distance_evaluations} distance evaluations, "
        f"{elapsed:.3f}s"
    )
    if elapsed > 0.0:
        print(f"throughput: {args.n_queries / elapsed:.1f} queries/sec")
    if args.stats:
        _print_stats_details(database, aggregate)
        for name, value in sorted(database.metrics.as_dict().items()):
            print(f"  planner.{name}: {value}")
    database.close()
    return 0


def _command_rknn(args: argparse.Namespace) -> int:
    database = _load_or_build_database(args)
    rng = np.random.default_rng(args.query_seed)
    query = generate_query_object(
        rng, kind=args.kind, space_size=args.space_size,
        points_per_object=args.points_per_object,
    )
    alpha_range = (args.alpha_start, args.alpha_end)
    result = database.execute(
        SweepRequest(query, k=args.k, alpha_range=alpha_range, method=args.method)
    )
    print(f"RKNN(k={args.k}, range=[{args.alpha_start}, {args.alpha_end}], method={args.method})")
    for object_id in result.object_ids:
        print(f"  object {object_id:>6}  qualifying {result.assignments[object_id]}")
    print(
        f"cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.aknn_calls} AKNN calls, "
        f"{result.stats.refinement_steps} refinement steps, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    if args.stats:
        _print_stats_details(database, result.stats)
    database.close()
    return 0


def _command_reverse(args: argparse.Namespace) -> int:
    database = _load_or_build_database(args)
    rng = np.random.default_rng(args.query_seed)
    query = generate_query_object(
        rng, kind=args.kind, space_size=args.space_size,
        points_per_object=args.points_per_object,
    )
    result = database.execute(
        ReverseRequest(query, k=args.k, alpha=args.alpha, method=args.method)
    )
    print(
        f"REVERSE AKNN(k={args.k}, alpha={args.alpha}, method={args.method}): "
        f"{len(result)} reverse neighbours"
    )
    for object_id in result.object_ids:
        print(f"  object {object_id:>6}  distance {result.distances[object_id]:.4f}")
    print(
        f"cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.node_accesses} node accesses, "
        f"{int(result.stats.extra.get('candidates', 0.0))} candidates, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    if args.stats:
        _print_stats_details(database, result.stats)
    database.close()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import threading
    import time

    from repro.config import RuntimeConfig
    from repro.exceptions import BackpressureError, DeadlineExceededError
    from repro.service import FaultPlan, QueryService, ShardedDatabase

    if args.database:
        source = FuzzyDatabase.open(args.database)
        objects = list(source.store.iter_objects(count_accesses=False))
        source.close()
    else:
        from repro.datasets.builder import build_dataset

        objects = build_dataset(
            kind=args.kind,
            n_objects=args.n_objects,
            points_per_object=args.points_per_object,
            seed=args.seed,
            space_size=args.space_size,
        )
    config = RuntimeConfig(
        service_shards=args.shards,
        shard_placement=args.placement,
        coalesce_window_ms=args.window_ms,
        coalesce_max_batch=args.max_batch,
        service_queue_depth=args.queue_depth,
        snapshot_every=args.snapshot_every,
        cache_capacity=4096,
    )
    database = ShardedDatabase.build(objects, config=config)
    print(
        f"serving {len(database)} objects over {database.n_shards} shards "
        f"({args.placement} placement, sizes {database.shard_sizes()})"
    )
    if args.wal_dir:
        database.enable_durability(args.wal_dir)
        cadence = (
            f"snapshot every {args.snapshot_every} appends"
            if args.snapshot_every
            else "snapshot on shutdown"
        )
        print(f"durability: per-shard WALs under {args.wal_dir} ({cadence})")
    if args.fault_plan:
        database.fault_plan = FaultPlan.parse(args.fault_plan)
        print(f"fault plan armed: {database.fault_plan!r}")

    kinds = [kind.strip() for kind in args.mix.split(",") if kind.strip()]
    unknown = sorted(set(kinds) - {"aknn", "reverse", "range"})
    if not kinds or unknown:
        raise SystemExit(
            f"--mix must name request types from aknn/reverse/range, got {args.mix!r}"
        )

    rng = np.random.default_rng(args.query_seed)
    queries = [
        generate_query_object(
            rng, kind=args.kind, space_size=args.space_size,
            points_per_object=args.points_per_object,
        )
        for _ in range(args.query_pool)
    ]

    def make_request(index: int):
        """One typed request, rotating through the --mix kinds."""
        query = queries[index % len(queries)]
        kind = kinds[index % len(kinds)]
        if kind == "reverse":
            return ReverseRequest(
                query, k=args.k, alpha=args.alpha, deadline_ms=args.deadline_ms
            )
        if kind == "range":
            return RangeRequest(
                query, alpha=args.alpha, radius=args.radius,
                deadline_ms=args.deadline_ms,
            )
        return AknnRequest(
            query, k=args.k, alpha=args.alpha, method=args.method,
            deadline_ms=args.deadline_ms,
        )

    completed_per_client = [0] * args.clients

    def client(client_index: int, n_requests: int) -> None:
        for i in range(n_requests):
            request = make_request(client_index + i * args.clients)
            try:
                service.execute(request)
            except (BackpressureError, DeadlineExceededError):
                continue  # shed or expired; reported via stats
            completed_per_client[client_index] += 1

    def mutator(n_ops: int) -> None:
        update_rng = np.random.default_rng(args.seed + 12345)
        for _ in range(n_ops):
            obj = generate_query_object(
                update_rng, kind=args.kind, space_size=args.space_size,
                points_per_object=args.points_per_object,
            )
            object_id = service.insert(obj)
            service.delete(object_id)

    with QueryService(database) as service:
        # Warm caches and the shard pool before the measured phase.
        for index in range(min(8, len(queries))):
            try:
                service.execute(make_request(index))
            except (BackpressureError, DeadlineExceededError):
                pass  # shed or expired warm-up; the measured phase still runs

        subscriptions = [
            service.subscribe(
                AknnRequest(queries[index % len(queries)], k=args.k, alpha=args.alpha)
            )
            for index in range(args.subscribers)
        ]

        per_client = max(1, args.n_requests // args.clients)
        threads = [
            threading.Thread(target=client, args=(index, per_client))
            for index in range(args.clients)
        ]
        if args.update_ops:
            threads.append(threading.Thread(target=mutator, args=(args.update_ops,)))
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        stats = service.stats()
        if subscriptions:
            # seq counts every delta a subscription emitted (including the
            # initial answer); shed streams stopped consuming mid-run.
            deltas = sum(
                sub.subscription.seq for sub in subscriptions
                if sub.subscription is not None
            )
            shed_subs = sum(1 for sub in subscriptions if sub.shed)
            print(
                f"subscriptions: {len(subscriptions)} standing queries, "
                f"{deltas} deltas pushed, {shed_subs} shed"
            )

    attempted = per_client * args.clients
    served = sum(completed_per_client)
    print(
        f"SERVE({attempted} requests, {args.clients} clients, k={args.k}, "
        f"alpha={args.alpha}, method={args.method}, mix={'+'.join(kinds)})"
    )
    print(
        f"throughput: {served / elapsed:.1f} queries/sec sustained "
        f"({served}/{attempted} answered, {elapsed:.2f}s wall)"
    )
    print(
        f"latency: p50 {stats.p50_latency_ms:.2f} ms, "
        f"p99 {stats.p99_latency_ms:.2f} ms, mean {stats.mean_latency_ms:.2f} ms"
    )
    print(
        f"coalescing: {stats.batches_flushed} batches, "
        f"mean size {stats.mean_batch_size:.1f}, max {stats.max_batch_size}, "
        f"{stats.requests_shed} shed"
    )
    if args.update_ops:
        print(f"live updates: {args.update_ops} insert+delete pairs, epoch {database.epoch}")
    if args.fault_plan:
        shard_counters = database.metrics.as_dict()
        print(
            f"resilience: {database.fault_plan.total_fired()} faults fired, "
            f"{int(shard_counters.get('retries', 0))} retries, "
            f"{int(shard_counters.get('breaker_open', 0))} breaker opens, "
            f"{int(shard_counters.get('partial_results', 0))} partial results"
        )
    if args.stats:
        print("counters:")
        for name, value in sorted(stats.as_dict().items()):
            print(f"  {name}: {value}")
        for name, value in sorted(database.metrics.as_dict().items()):
            print(f"  shards.{name}: {value}")
    database.close()
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    from repro.service import ShardedDatabase
    from repro.storage import read_manifest

    manifest = read_manifest(args.directory)
    if manifest.kind == "sharded":
        database = ShardedDatabase.recover(args.directory)
        n_shards = database.n_shards
    else:
        database = FuzzyDatabase.recover(args.directory)
        n_shards = 1
    database.validate()
    counters = database.metrics.as_dict()
    print(
        f"recovered {len(database)} objects "
        f"({manifest.kind}, {n_shards} shard(s)) from {args.directory}"
    )
    print(
        f"replay: {counters.get('wal_replayed', 0)} WAL records, "
        f"{counters.get('wal_torn_tails', 0)} torn tails truncated, "
        f"{counters.get('bulk_loads', 0)} STR bulk loads"
    )
    if args.stats:
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name}: {value}")
    database.close()
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    config = scale_for_name(args.scale)
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        result = run_experiment(name, config)
        print(result_to_full_text(result))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "aknn": _command_aknn,
        "rknn": _command_rknn,
        "reverse": _command_reverse,
        "batch": _command_batch,
        "serve": _command_serve,
        "recover": _command_recover,
        "experiment": _command_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised through the console script
    sys.exit(main())
