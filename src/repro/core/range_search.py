"""Range search at a fixed probability threshold.

``AlphaRangeSearcher`` retrieves every object whose alpha-distance to the
query is at most a given radius.  It is the second building block of the RSS
optimisation for RKNN queries (Algorithm 4, line 3): after one AKNN query at
the end of the probability range fixes the radius, a single range search at
the start of the range collects the complete candidate set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.query import PreparedQuery
from repro.core.results import QueryStats, RangeSearchResult
from repro.exceptions import InvalidQueryError
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.index.entry import LeafEntry
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore


class AlphaRangeSearcher:
    """Answers "all objects within ``radius`` at threshold ``alpha``" queries."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        config: Optional[RuntimeConfig] = None,
    ):
        self.store = store
        self.tree = tree
        self.config = (config or RuntimeConfig()).validate()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        use_improved_bounds: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> RangeSearchResult:
        """Return ``(object_id, distance)`` for every object within ``radius``."""
        if radius < 0:
            raise InvalidQueryError(f"radius must be non-negative, got {radius}")
        metrics = MetricsCollector()
        prepared = PreparedQuery(query, alpha, self.config, rng, metrics)
        before = self.store.statistics.snapshot()
        timer = Timer().start()
        matches, _ = self.collect(prepared, radius, use_improved_bounds=use_improved_bounds)
        elapsed = timer.stop()
        stats = QueryStats(
            object_accesses=self.store.statistics.object_accesses - before.object_accesses,
            node_accesses=metrics.get(MetricsCollector.NODE_ACCESSES),
            distance_evaluations=metrics.get(MetricsCollector.DISTANCE_EVALUATIONS),
            lower_bound_evaluations=metrics.get(MetricsCollector.LOWER_BOUND_EVALUATIONS),
            range_calls=1,
            elapsed_seconds=elapsed,
        )
        return RangeSearchResult(matches=matches, radius=radius, alpha=alpha, stats=stats)

    # ------------------------------------------------------------------
    # Lower-level entry used by the RKNN searcher
    # ------------------------------------------------------------------
    def collect(
        self,
        prepared: PreparedQuery,
        radius: float,
        use_improved_bounds: bool = True,
    ) -> Tuple[List[Tuple[int, float]], Dict[int, FuzzyObject]]:
        """Traverse the tree, probe candidates, and also hand back the objects.

        The probed :class:`FuzzyObject` instances are returned so the caller
        (the RSS / RSS-ICR refinement) can compute their distance profiles
        without paying a second object access for data it already read.
        """
        metrics = prepared.metrics
        matches: List[Tuple[int, float]] = []
        objects: Dict[int, FuzzyObject] = {}
        if len(self.tree) == 0:
            return matches, objects

        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            metrics.increment(MetricsCollector.NODE_ACCESSES)
            if not node.entries:
                continue
            # Bounds for the whole node come from its SoA view in one NumPy
            # call; only surviving entries are touched in Python.
            if node.is_leaf:
                bounds = prepared.leaf_lower_bounds(
                    node.soa(), improved=use_improved_bounds
                )
                for entry, bound in zip(node.entries, bounds):
                    if bound > radius:
                        continue
                    leaf: LeafEntry = entry  # type: ignore[assignment]
                    obj = self.store.get(leaf.object_id)
                    distance = prepared.distance_to(obj)
                    if distance <= radius:
                        matches.append((leaf.object_id, distance))
                        objects[leaf.object_id] = obj
            else:
                bounds = prepared.node_lower_bounds(node.soa())
                for entry, bound in zip(node.entries, bounds):
                    if bound <= radius:
                        stack.append(entry.child)  # type: ignore[union-attr]
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        return matches, objects
