"""The top-level facade bundling store, index and searchers.

:class:`FuzzyDatabase` is what most users interact with::

    from repro import FuzzyDatabase

    db = FuzzyDatabase.build(objects, path="cells.db")
    result = db.aknn(query, k=20, alpha=0.5)
    ranges = db.rknn(query, k=20, alpha_range=(0.3, 0.6))

It owns the object store (point sets on disk or in memory), the R-tree over
per-object summaries, and one searcher per query type.  A database built on
disk can be persisted (:meth:`FuzzyDatabase.save`) and re-opened later
(:meth:`FuzzyDatabase.open`) without rebuilding summaries or re-fitting
conservative lines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.aknn import AKNNSearcher
from repro.core.executor import BatchQueryExecutor
from repro.core.linear_scan import LinearScanSearcher
from repro.core.range_search import AlphaRangeSearcher
from repro.core.results import AKNNResult, BatchResult, RangeSearchResult, RKNNResult
from repro.core.reverse_nn import ReverseAKNNSearcher, ReverseKNNResult
from repro.core.rknn import RKNNSearcher
from repro.exceptions import ObjectNotFoundError, StorageError
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.summary import FuzzyObjectSummary, build_summary
from repro.index.rtree import RTree
from repro.storage.object_store import ObjectStore

# File names used by save() / open().
_DATA_FILE = "objects.dat"
_CATALOG_FILE = "catalog.json"
_CATALOG_VERSION = 1


class FuzzyDatabase:
    """A searchable collection of fuzzy objects."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        summaries: Dict[int, FuzzyObjectSummary],
        config: Optional[RuntimeConfig] = None,
    ):
        self.store = store
        self.tree = tree
        self.summaries = summaries
        self.config = (config or RuntimeConfig()).validate()
        self._aknn = AKNNSearcher(store, tree, self.config)
        self._rknn = RKNNSearcher(store, tree, self.config)
        self._range = AlphaRangeSearcher(store, tree, self.config)
        self._linear = LinearScanSearcher(store, self.config)
        self._executor = BatchQueryExecutor(store, tree, self.config)
        self._reverse = ReverseAKNNSearcher(
            store, tree, self.config, executor=self._executor
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[FuzzyObject],
        path: Optional[os.PathLike | str] = None,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "FuzzyDatabase":
        """Build a database from an iterable of fuzzy objects.

        Parameters
        ----------
        objects:
            Fuzzy objects to load.  Objects without an id receive sequential
            ids; explicit ids must be unique.
        path:
            Directory for the on-disk data file.  ``None`` keeps the point
            sets in memory (useful for tests and small examples).
        config:
            Runtime configuration (R-tree fan-out, cache capacity, ...).
        rng:
            Randomness source for representative-point selection.
        """
        config = (config or RuntimeConfig()).validate()
        data_path = None
        if path is not None:
            directory = Path(path)
            directory.mkdir(parents=True, exist_ok=True)
            data_path = directory / _DATA_FILE
        store = ObjectStore(
            path=data_path,
            cache_capacity=config.cache_capacity,
            cut_cache_capacity=config.alpha_cut_cache_capacity,
        )

        summaries: Dict[int, FuzzyObjectSummary] = {}
        for obj in objects:
            object_id = store.put(obj)
            if obj.object_id is None:
                obj = obj.with_id(object_id)
            summaries[object_id] = build_summary(obj, rng=rng)

        tree = RTree.bulk_load(
            list(summaries.values()),
            max_entries=config.rtree_max_entries,
            min_fill=config.rtree_min_fill,
        )
        return cls(store, tree, summaries, config)

    @classmethod
    def from_store(
        cls,
        store: ObjectStore,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "FuzzyDatabase":
        """Index an already-populated object store.

        Summaries are computed by streaming the store without charging the
        query-time access counter (this is an offline build step).
        """
        config = (config or RuntimeConfig()).validate()
        summaries: Dict[int, FuzzyObjectSummary] = {}
        for obj in store.iter_objects(count_accesses=False):
            summaries[int(obj.object_id)] = build_summary(obj, rng=rng)
        tree = RTree.bulk_load(
            list(summaries.values()),
            max_entries=config.rtree_max_entries,
            min_fill=config.rtree_min_fill,
        )
        return cls(store, tree, summaries, config)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        """Ad-hoc kNN query (Definition 4)."""
        return self._aknn.search(query, k, alpha, method=method, rng=rng)

    def aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        initial_tau=None,
        initial_exact=None,
    ) -> BatchResult:
        """Answer a batch of AKNN queries through the vectorized executor.

        One R-tree traversal is shared by the whole batch, all bounds are
        evaluated as ``(batch, node)`` matrices, and every probed object is
        fetched once; see :class:`~repro.core.executor.BatchQueryExecutor`.
        Neighbour sets are identical to looping :meth:`aknn` per query, up to
        ties: when several objects sit at exactly the k-th distance, any of
        the equally-correct k-sets may be returned (the batch engine breaks
        ties by object id, the single-query searchers by traversal order).
        ``initial_tau`` forwards externally-bootstrapped per-query pruning
        radii to the executor (used by the sharded fan-out; see
        :meth:`BatchQueryExecutor.aknn_batch`).
        """
        return self._executor.aknn_batch(
            list(queries), k, alpha, method=method, workers=workers, rng=rng,
            initial_tau=initial_tau, initial_exact=initial_exact,
        )

    def rknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha_range: Tuple[float, float],
        method: str = "rss_icr",
        aknn_method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> RKNNResult:
        """Range kNN query (Definition 5)."""
        return self._rknn.search(
            query, k, alpha_range, method=method, aknn_method=aknn_method, rng=rng
        )

    def range_search(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RangeSearchResult:
        """All objects within ``radius`` of the query at threshold ``alpha``."""
        return self._range.search(query, alpha, radius, rng=rng)

    def reverse_aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "pruned",
        rng: Optional[np.random.Generator] = None,
    ) -> ReverseKNNResult:
        """Reverse AKNN query: objects that count ``query`` among their k nearest.

        ``method`` selects ``"linear"`` (exhaustive verification),
        ``"pruned"`` (summary filter, then one single-query AKNN per
        candidate) or ``"batch"`` (vectorized all-pairs filter, then one
        shared batch traversal verifying every candidate; see
        :mod:`repro.core.reverse_nn`).  All three return identical
        reverse-neighbour sets.
        """
        return self._reverse.search(query, k, alpha, method=method, rng=rng)

    def reverse_aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[ReverseKNNResult]:
        """Answer a bucket of reverse AKNN queries sharing ``(k, alpha)``.

        The whole bucket shares the vectorized candidate filter's all-pairs
        MaxDist matrix and one batch traversal verifying the union of every
        query's candidates; results are identical to calling
        :meth:`reverse_aknn` per query.
        """
        return self._reverse.search_batch(list(queries), k, alpha, rng=rng)

    def distance_join(
        self,
        alpha: float,
        epsilon: float,
        other: Optional["FuzzyDatabase"] = None,
        method: str = "index",
    ):
        """Alpha-distance join with ``other`` (self-join when omitted)."""
        from repro.core.join import AlphaDistanceJoin

        join = AlphaDistanceJoin(
            self.store,
            self.tree,
            right_store=None if other is None else other.store,
            right_tree=None if other is None else other.tree,
            config=self.config,
        )
        return join.join(alpha, epsilon, method=method)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def insert(
        self,
        obj: FuzzyObject,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Add one object to the running database; returns its object id.

        The object is appended to the store, summarised, and inserted into
        the R-tree (Guttman insertion with quadratic splits).  The next query
        sees it immediately; derived caches (the batch executor's
        representative index, node SoA views) refresh themselves through the
        tree's mutation counter and incremental SoA maintenance.  Geometry is
        revalidated first (non-finite points would poison MBRs and distance
        evaluations) before any store or index state is touched.
        """
        object_id = self.store.put(obj.require_finite())
        if obj.object_id is None:
            obj = obj.with_id(object_id)
        summary = build_summary(obj, rng=rng)
        self.summaries[object_id] = summary
        self.tree.insert(summary)
        return object_id

    def delete(self, object_id: int) -> None:
        """Remove one object from the running database.

        The R-tree entry is deleted (condense-tree with orphan reinsertion),
        the summary dropped, and the store slot released.  Deleted ids are
        never reassigned, so per-id caches cannot alias a later insert.
        """
        object_id = int(object_id)
        summary = self.summaries.get(object_id)
        if summary is None:
            raise ObjectNotFoundError(f"object {object_id} is not in the database")
        self.tree.delete(object_id, mbr=summary.support_mbr)
        del self.summaries[object_id]
        self.store.delete(object_id)

    def linear_scan(self) -> LinearScanSearcher:
        """The exhaustive baseline searcher (ground truth for tests)."""
        return self._linear

    def get_object(self, object_id: int) -> FuzzyObject:
        """Probe one object from the store (counted as an object access)."""
        return self.store.get(object_id)

    # ------------------------------------------------------------------
    # Introspection and statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def object_ids(self) -> List[int]:
        """Ids of every stored object."""
        return self.store.object_ids()

    def reset_statistics(self) -> None:
        """Zero the store's access counters before a measured query."""
        self.store.reset_statistics()

    @property
    def object_accesses(self) -> int:
        """Object accesses since the last :meth:`reset_statistics`."""
        return self.store.access_count

    def validate(self) -> None:
        """Check index invariants (raises on violation)."""
        self.tree.validate()
        if len(self.tree) != len(self.store):
            raise StorageError(
                f"index holds {len(self.tree)} entries but the store has "
                f"{len(self.store)} objects"
            )

    def close(self) -> None:
        """Close the backing data file."""
        self.store.close()

    def __enter__(self) -> "FuzzyDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: os.PathLike | str) -> Path:
        """Write the catalogue (summaries + slot table) next to the data file.

        The database must have been built with an on-disk ``path``; the data
        file itself is already on disk, so only the catalogue is written.
        Returns the catalogue path.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        catalog = {
            "version": _CATALOG_VERSION,
            "config": {
                "rtree_max_entries": self.config.rtree_max_entries,
                "rtree_min_fill": self.config.rtree_min_fill,
                "upper_bound_samples": self.config.upper_bound_samples,
                "cache_capacity": self.config.cache_capacity,
            },
            "slots": {
                str(oid): list(slot) for oid, slot in self.store.slot_table().items()
            },
            "id_watermark": self.store.id_watermark,
            "summaries": [summary.to_dict() for summary in self.summaries.values()],
        }
        catalog_path = directory / _CATALOG_FILE
        with open(catalog_path, "w", encoding="utf-8") as handle:
            json.dump(catalog, handle)
        return catalog_path

    @classmethod
    def open(
        cls,
        path: os.PathLike | str,
        config: Optional[RuntimeConfig] = None,
    ) -> "FuzzyDatabase":
        """Re-open a database previously written by :meth:`save`."""
        directory = Path(path)
        catalog_path = directory / _CATALOG_FILE
        data_path = directory / _DATA_FILE
        if not catalog_path.exists() or not data_path.exists():
            raise StorageError(f"no saved database found under {directory}")
        with open(catalog_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
        if catalog.get("version") != _CATALOG_VERSION:
            raise StorageError(
                f"unsupported catalogue version {catalog.get('version')!r}"
            )
        if config is None:
            stored = catalog.get("config", {})
            config = RuntimeConfig(
                upper_bound_samples=int(stored.get("upper_bound_samples", 8)),
                rtree_max_entries=int(stored.get("rtree_max_entries", 32)),
                rtree_min_fill=float(stored.get("rtree_min_fill", 0.4)),
                cache_capacity=int(stored.get("cache_capacity", 0)),
            )
        config = config.validate()
        slot_table = {
            int(oid): (int(slot[0]), int(slot[1]))
            for oid, slot in catalog["slots"].items()
        }
        store = ObjectStore.open_existing(
            data_path,
            slot_table,
            cache_capacity=config.cache_capacity,
            cut_cache_capacity=config.alpha_cut_cache_capacity,
            id_watermark=int(catalog.get("id_watermark", 0)),
        )
        summaries = {
            int(payload["object_id"]): FuzzyObjectSummary.from_dict(payload)
            for payload in catalog["summaries"]
        }
        tree = RTree.bulk_load(
            list(summaries.values()),
            max_entries=config.rtree_max_entries,
            min_fill=config.rtree_min_fill,
        )
        return cls(store, tree, summaries, config)
