"""The top-level facade bundling store, index and searchers.

:class:`FuzzyDatabase` is what most users interact with.  It implements the
:class:`~repro.core.requests.QueryEngine` protocol — every query is a typed
request executed through one surface::

    from repro import AknnRequest, FuzzyDatabase, SweepRequest

    db = FuzzyDatabase.build(objects, path="cells.db")
    result = db.execute(AknnRequest(query, k=20, alpha=0.5))
    ranges = db.execute(SweepRequest(query, k=20, alpha_range=(0.3, 0.6)))
    results = db.execute_batch(mixed_requests)  # types may mix freely

``execute_batch`` groups a mixed submission into per-type, per-bucket
sub-batches (see :mod:`repro.core.requests`); requests sharing a
``bucket_key()`` are answered by the corresponding shared engine (one R-tree
traversal for an AKNN bucket, one filter matrix + verification traversal for
a reverse bucket).  The old per-type methods (``aknn``, ``rknn``, ...)
remain as deprecated shims delegating to ``execute``.

The database owns the object store (point sets on disk or in memory), the
R-tree over per-object summaries, and one searcher per query type.  A
database built on disk can be persisted (:meth:`FuzzyDatabase.save`) and
re-opened later (:meth:`FuzzyDatabase.open`) without rebuilding summaries or
re-fitting conservative lines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.aknn import AKNNSearcher
from repro.core.executor import BatchQueryExecutor
from repro.core.linear_scan import LinearScanSearcher
from repro.core.range_search import AlphaRangeSearcher
from repro.core.requests import (
    AknnRequest,
    QueryRequest,
    RangeRequest,
    ReverseMethod,
    ReverseRequest,
    SweepRequest,
    execute_plan,
    warn_legacy,
)
from repro.core.results import AKNNResult, BatchResult, RangeSearchResult, RKNNResult
from repro.core.reverse_nn import ReverseAKNNSearcher, ReverseKNNResult
from repro.core.rknn import RKNNSearcher
from repro.exceptions import ObjectNotFoundError, StorageError
from repro.fuzzy.alpha_distance import DistanceProfileStore
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.summary import FuzzyObjectSummary, build_summary
from repro.index.bulk import CompactionManager, bulk_load_tree
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector, SharedMetricsCollector
from repro.storage.object_store import ObjectStore
from repro.storage.serialization import decode_object, encode_object
from repro.storage.snapshot import Manifest, SnapshotManager, read_manifest
from repro.storage.wal import WriteAheadLog

# File names used by save() / open().
_DATA_FILE = "objects.dat"
_CATALOG_FILE = "catalog.json"
_CATALOG_VERSION = 1


class FuzzyDatabase:
    """A searchable collection of fuzzy objects."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        summaries: Dict[int, FuzzyObjectSummary],
        config: Optional[RuntimeConfig] = None,
    ):
        self.store = store
        self.tree = tree
        self.summaries = summaries
        self.config = (config or RuntimeConfig()).validate()
        # One d_alpha memo shared by the sweep searcher and the reverse
        # engine: overlapping (query, object) evaluations are paid once.
        self.profile_store = DistanceProfileStore(self.config.profile_cache_capacity)
        self._aknn = AKNNSearcher(store, tree, self.config)
        self._rknn = RKNNSearcher(
            store, tree, self.config, profile_store=self.profile_store
        )
        self._range = AlphaRangeSearcher(store, tree, self.config)
        self._linear = LinearScanSearcher(store, self.config)
        self._executor = BatchQueryExecutor(store, tree, self.config)
        self._reverse = ReverseAKNNSearcher(
            store,
            tree,
            self.config,
            executor=self._executor,
            profile_store=self.profile_store,
        )
        # Request-planner telemetry (plan_groups / plan_requests / the shared
        # batch counters), observable per database instance.
        self.metrics = SharedMetricsCollector()
        # Durability machinery, attached by enable_durability()/recover().
        self._wal: Optional[WriteAheadLog] = None
        self._snapshots: Optional[SnapshotManager] = None
        self._compaction: Optional[CompactionManager] = None
        self._durable_dir: Optional[Path] = None
        # Update listeners (e.g. the standing-query engine), notified after
        # every applied mutation.
        self._update_listeners: List = []
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[FuzzyObject],
        path: Optional[os.PathLike | str] = None,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "FuzzyDatabase":
        """Build a database from an iterable of fuzzy objects.

        Parameters
        ----------
        objects:
            Fuzzy objects to load.  Objects without an id receive sequential
            ids; explicit ids must be unique.
        path:
            Directory for the on-disk data file.  ``None`` keeps the point
            sets in memory (useful for tests and small examples).
        config:
            Runtime configuration (R-tree fan-out, cache capacity, ...).
        rng:
            Randomness source for representative-point selection.
        """
        config = (config or RuntimeConfig()).validate()
        data_path = None
        if path is not None:
            directory = Path(path)
            directory.mkdir(parents=True, exist_ok=True)
            data_path = directory / _DATA_FILE
        store = ObjectStore(
            path=data_path,
            cache_capacity=config.cache_capacity,
            cut_cache_capacity=config.alpha_cut_cache_capacity,
        )

        summaries: Dict[int, FuzzyObjectSummary] = {}
        for obj in objects:
            object_id = store.put(obj)
            if obj.object_id is None:
                obj = obj.with_id(object_id)
            summaries[object_id] = build_summary(obj, rng=rng)

        boot = SharedMetricsCollector()
        tree = bulk_load_tree(summaries.values(), config=config, metrics=boot)
        db = cls(store, tree, summaries, config)
        db.metrics.merge(boot)
        return db

    @classmethod
    def from_store(
        cls,
        store: ObjectStore,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "FuzzyDatabase":
        """Index an already-populated object store.

        Summaries are computed by streaming the store without charging the
        query-time access counter (this is an offline build step).
        """
        config = (config or RuntimeConfig()).validate()
        summaries: Dict[int, FuzzyObjectSummary] = {}
        for obj in store.iter_objects(count_accesses=False):
            summaries[int(obj.object_id)] = build_summary(obj, rng=rng)
        boot = SharedMetricsCollector()
        tree = bulk_load_tree(summaries.values(), config=config, metrics=boot)
        db = cls(store, tree, summaries, config)
        db.metrics.merge(boot)
        return db

    # ------------------------------------------------------------------
    # The query surface (QueryEngine protocol)
    # ------------------------------------------------------------------
    def execute(
        self,
        request: QueryRequest,
        *,
        rng: Optional[np.random.Generator] = None,
    ):
        """Answer one typed request (see :mod:`repro.core.requests`)."""
        return execute_plan(self, [request], rng=rng)[0]

    def execute_batch(
        self,
        requests: Iterable[QueryRequest],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> List:
        """Answer a submission that may mix request types freely.

        The planner groups the submission into per-type, per-``bucket_key()``
        sub-batches; requests sharing a key are answered through the shared
        engines (one R-tree traversal per AKNN bucket, one filter matrix +
        one verification traversal per reverse bucket).  Results come back in
        submission order.
        """
        return execute_plan(self, list(requests), rng=rng)

    # Bucket hooks consumed by the planners in repro.core.requests.  A bucket
    # of one runs the single-query searcher (bit-identical to the historical
    # per-type methods); larger buckets run the shared batch engines.  The
    # ``deadline`` keyword is the bucket's abort point (latest member expiry);
    # loops over members check it between queries, the batch engines between
    # traversal chunks.
    def _execute_aknn_bucket(
        self,
        bucket: Sequence[AknnRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List[AKNNResult]:
        first = bucket[0]
        if len(bucket) == 1:
            if deadline is not None:
                deadline.check("aknn")
            return [
                self._aknn.search(
                    first.query, first.k, first.alpha,
                    method=first.method.value, rng=rng,
                )
            ]
        self.metrics.increment(MetricsCollector.BATCH_QUERIES, len(bucket))
        batch = self._run_aknn_batch(
            [request.query for request in bucket],
            first.k,
            first.alpha,
            method=first.method.value,
            rng=rng,
            deadline=deadline,
        )
        return batch.results

    def _execute_range_bucket(
        self,
        bucket: Sequence[RangeRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List[RangeSearchResult]:
        results = []
        for request in bucket:
            if deadline is not None:
                deadline.check("range")
            results.append(
                self._range.search(request.query, request.alpha, request.radius, rng=rng)
            )
        return results

    def _execute_sweep_bucket(
        self,
        bucket: Sequence[SweepRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List[RKNNResult]:
        results = []
        for request in bucket:
            if deadline is not None:
                deadline.check("sweep")
            results.append(
                self._rknn.search(
                    request.query,
                    request.k,
                    request.alpha_range,
                    method=request.method.value,
                    aknn_method=request.aknn_method.value,
                    rng=rng,
                )
            )
        return results

    def _execute_reverse_bucket(
        self,
        bucket: Sequence[ReverseRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List[ReverseKNNResult]:
        first = bucket[0]
        self.metrics.increment(MetricsCollector.REVERSE_QUERIES, len(bucket))
        if first.method is ReverseMethod.BATCH:
            return self._reverse.search_batch(
                [request.query for request in bucket], first.k, first.alpha, rng=rng,
                deadline=deadline,
            )
        # linear / pruned exist as parity baselines; they share nothing.
        results = []
        for request in bucket:
            if deadline is not None:
                deadline.check("reverse")
            results.append(
                self._reverse.search(
                    request.query, request.k, request.alpha,
                    method=request.method.value, rng=rng,
                )
            )
        return results

    def _run_aknn_batch(
        self,
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        initial_tau=None,
        initial_exact=None,
        deadline=None,
    ) -> BatchResult:
        """The vectorized batch engine (internal; full :class:`BatchResult`).

        One R-tree traversal is shared by the whole batch, all bounds are
        evaluated as ``(batch, node)`` matrices, and every probed object is
        fetched once; see :class:`~repro.core.executor.BatchQueryExecutor`.
        Neighbour sets are identical to the single-query path up to distance
        ties at the k-th rank (the batch engine breaks ties by object id,
        the single-query searchers by traversal order).  ``initial_tau`` /
        ``initial_exact`` forward externally-bootstrapped per-query pruning
        radii (used by the sharded fan-out and the reverse verifier).
        """
        return self._executor.aknn_batch(
            list(queries), k, alpha, method=method, workers=workers, rng=rng,
            initial_tau=initial_tau, initial_exact=initial_exact, deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Deprecated per-type shims (delegate to the request surface)
    # ------------------------------------------------------------------
    def aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        """Deprecated: use ``execute(AknnRequest(...))``."""
        warn_legacy("FuzzyDatabase.aknn()", "execute(AknnRequest(...))")
        return self.execute(
            AknnRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )

    def aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        initial_tau=None,
        initial_exact=None,
    ) -> BatchResult:
        """Deprecated: use ``execute_batch([AknnRequest(...), ...])``.

        Kept for the batch-level :class:`BatchResult` telemetry (aggregate
        stats + throughput); the unified surface returns plain per-request
        results instead.
        """
        warn_legacy(
            "FuzzyDatabase.aknn_batch()", "execute_batch([AknnRequest(...), ...])"
        )
        return self._run_aknn_batch(
            queries, k, alpha, method=method, workers=workers, rng=rng,
            initial_tau=initial_tau, initial_exact=initial_exact,
        )

    def rknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha_range: Tuple[float, float],
        method: str = "rss_icr",
        aknn_method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> RKNNResult:
        """Deprecated: use ``execute(SweepRequest(...))``."""
        warn_legacy("FuzzyDatabase.rknn()", "execute(SweepRequest(...))")
        return self.execute(
            SweepRequest(
                query, k=k, alpha_range=tuple(alpha_range),
                method=method, aknn_method=aknn_method,
            ),
            rng=rng,
        )

    def range_search(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RangeSearchResult:
        """Deprecated: use ``execute(RangeRequest(...))``."""
        warn_legacy("FuzzyDatabase.range_search()", "execute(RangeRequest(...))")
        return self.execute(
            RangeRequest(query, alpha=alpha, radius=radius), rng=rng
        )

    def reverse_aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "pruned",
        rng: Optional[np.random.Generator] = None,
    ) -> ReverseKNNResult:
        """Deprecated: use ``execute(ReverseRequest(...))``."""
        warn_legacy("FuzzyDatabase.reverse_aknn()", "execute(ReverseRequest(...))")
        return self.execute(
            ReverseRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )

    def reverse_aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[ReverseKNNResult]:
        """Deprecated: use ``execute_batch([ReverseRequest(...), ...])``."""
        warn_legacy(
            "FuzzyDatabase.reverse_aknn_batch()",
            "execute_batch([ReverseRequest(...), ...])",
        )
        return self.execute_batch(
            [
                ReverseRequest(query, k=k, alpha=alpha, method=ReverseMethod.BATCH)
                for query in queries
            ],
            rng=rng,
        )

    def distance_join(
        self,
        alpha: float,
        epsilon: float,
        other: Optional["FuzzyDatabase"] = None,
        method: str = "index",
    ):
        """Alpha-distance join with ``other`` (self-join when omitted)."""
        from repro.core.join import AlphaDistanceJoin

        join = AlphaDistanceJoin(
            self.store,
            self.tree,
            right_store=None if other is None else other.store,
            right_tree=None if other is None else other.tree,
            config=self.config,
        )
        return join.join(alpha, epsilon, method=method)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def add_update_listener(self, listener) -> None:
        """Register ``listener`` for post-apply mutation notifications.

        The listener must expose ``notify_insert(obj)`` and
        ``notify_delete(object_id)`` (see
        :class:`~repro.service.subscriptions.SubscriptionEngine`); both are
        called synchronously after the mutation is fully applied.
        """
        self._update_listeners.append(listener)

    def remove_update_listener(self, listener) -> None:
        try:
            self._update_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_insert(self, obj: FuzzyObject) -> None:
        for listener in list(self._update_listeners):
            listener.notify_insert(obj)

    def _notify_delete(self, object_id: int) -> None:
        for listener in list(self._update_listeners):
            listener.notify_delete(object_id)

    def insert(
        self,
        obj: FuzzyObject,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Add one object to the running database; returns its object id.

        The object is appended to the store, summarised, and inserted into
        the R-tree (Guttman insertion with quadratic splits).  The next query
        sees it immediately; derived caches (the batch executor's
        representative index, node SoA views) refresh themselves through the
        tree's mutation counter and incremental SoA maintenance.  Geometry is
        revalidated first (non-finite points would poison MBRs and distance
        evaluations) before any store or index state is touched.

        With durability enabled the mutation is logged *before* it is
        applied (write-ahead ordering): the id is pre-assigned from the
        store's watermark, the encoded object goes into the WAL, and only
        then does the store append.  A crash at any point in between is
        covered — replay re-applies the logged record, and ids never recycle
        so replaying an already-applied record is a no-op.
        """
        obj = obj.require_finite()
        if self._wal is not None:
            if obj.object_id is None:
                obj = obj.with_id(self.store.id_watermark)
            self._wal.append_insert(int(obj.object_id), encode_object(obj))
        object_id = self.store.put(obj)
        if obj.object_id is None:
            obj = obj.with_id(object_id)
        summary = build_summary(obj, rng=rng)
        self.summaries[object_id] = summary
        self.tree.insert(summary)
        if self._snapshots is not None:
            self._snapshots.record_append()
        self._notify_insert(obj)
        return object_id

    def delete(self, object_id: int) -> None:
        """Remove one object from the running database.

        Without durability the R-tree entry is deleted with Guttman's
        condense-tree (orphan reinsertion on the write path).  A durable
        database logs the delete first, then takes the deferred path:
        :meth:`~repro.index.rtree.RTree.delete_lazy` removes the entry and
        prunes empty nodes only, and the accumulated fill debt is repaid by
        an STR repack once :class:`~repro.index.bulk.CompactionManager`
        says it is due.  Deleted ids are never reassigned, so per-id caches
        cannot alias a later insert.
        """
        object_id = int(object_id)
        if object_id not in self.summaries:
            raise ObjectNotFoundError(f"object {object_id} is not in the database")
        if self._wal is not None:
            self._wal.append_delete(object_id)
        # pop() wins exactly once under concurrent deletes of the same id;
        # the loser reports the consistent not-found instead of a KeyError.
        summary = self.summaries.pop(object_id, None)
        if summary is None:
            raise ObjectNotFoundError(f"object {object_id} is not in the database")
        if self._compaction is not None:
            self.tree.delete_lazy(object_id, mbr=summary.support_mbr)
            self._compaction.note_lazy_delete()
            rebuilt = self._compaction.maybe_compact(
                self.tree, self.summaries.values(), self.config
            )
            if rebuilt is not None:
                self.tree.adopt(rebuilt)
        else:
            self.tree.delete(object_id, mbr=summary.support_mbr)
        self.store.delete(object_id)
        if self._snapshots is not None:
            self._snapshots.record_append()
        self._notify_delete(object_id)

    def linear_scan(self) -> LinearScanSearcher:
        """The exhaustive baseline searcher (ground truth for tests)."""
        return self._linear

    def get_object(self, object_id: int) -> FuzzyObject:
        """Probe one object from the store (counted as an object access)."""
        return self.store.get(object_id)

    # ------------------------------------------------------------------
    # Introspection and statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def object_ids(self) -> List[int]:
        """Ids of every stored object."""
        return self.store.object_ids()

    def reset_statistics(self) -> None:
        """Zero the store's access counters before a measured query."""
        self.store.reset_statistics()

    @property
    def object_accesses(self) -> int:
        """Object accesses since the last :meth:`reset_statistics`."""
        return self.store.access_count

    def validate(self) -> None:
        """Check index invariants (raises on violation)."""
        self.tree.validate()
        if len(self.tree) != len(self.store):
            raise StorageError(
                f"index holds {len(self.tree)} entries but the store has "
                f"{len(self.store)} objects"
            )

    def close(self) -> None:
        """Close the database; a durable one takes a final snapshot first."""
        if self._closed:
            return
        self._closed = True
        if self._snapshots is not None:
            self._snapshots.snapshot()
        if self._wal is not None:
            self._wal.close()
        self.store.close()

    def __enter__(self) -> "FuzzyDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: os.PathLike | str) -> Path:
        """Write the catalogue (summaries + slot table) next to the data file.

        The catalogue is published atomically (tmp file + ``os.replace``):
        a crash mid-save leaves the previous good catalogue intact instead
        of a half-written one.  A database whose store is in memory (or
        backed elsewhere) first materialises its records into
        ``objects.dat`` inside ``path`` — also atomically — so the saved
        directory is always self-contained.  Returns the catalogue path.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        data_path = directory / _DATA_FILE
        store_path = self.store.path
        if store_path is not None and Path(store_path).resolve() == data_path.resolve():
            # The data file already lives here; make its appends durable
            # before the catalogue starts referencing their offsets.
            self.store.flush()
            slots = self.store.slot_table()
        else:
            slots = self.store.dump(data_path)
        catalog = {
            "version": _CATALOG_VERSION,
            "config": {
                "rtree_max_entries": self.config.rtree_max_entries,
                "rtree_min_fill": self.config.rtree_min_fill,
                "upper_bound_samples": self.config.upper_bound_samples,
                "cache_capacity": self.config.cache_capacity,
            },
            "slots": {str(oid): list(slot) for oid, slot in slots.items()},
            "id_watermark": self.store.id_watermark,
            "summaries": [summary.to_dict() for summary in self.summaries.values()],
        }
        catalog_path = directory / _CATALOG_FILE
        tmp_path = directory / (_CATALOG_FILE + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(catalog, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, catalog_path)
        return catalog_path

    @classmethod
    def _load_snapshot(
        cls,
        directory: Path,
        config: Optional[RuntimeConfig],
        data_file: str = _DATA_FILE,
        catalog_file: str = _CATALOG_FILE,
    ) -> Tuple[ObjectStore, Dict[int, FuzzyObjectSummary], RuntimeConfig]:
        """Load the persisted store + summaries without building the tree."""
        catalog_path = directory / catalog_file
        data_path = directory / data_file
        if not catalog_path.exists() or not data_path.exists():
            raise StorageError(f"no saved database found under {directory}")
        with open(catalog_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
        if catalog.get("version") != _CATALOG_VERSION:
            raise StorageError(
                f"unsupported catalogue version {catalog.get('version')!r}"
            )
        if config is None:
            stored = catalog.get("config", {})
            config = RuntimeConfig(
                upper_bound_samples=int(stored.get("upper_bound_samples", 8)),
                rtree_max_entries=int(stored.get("rtree_max_entries", 32)),
                rtree_min_fill=float(stored.get("rtree_min_fill", 0.4)),
                cache_capacity=int(stored.get("cache_capacity", 0)),
            )
        config = config.validate()
        slot_table = {
            int(oid): (int(slot[0]), int(slot[1]))
            for oid, slot in catalog["slots"].items()
        }
        store = ObjectStore.open_existing(
            data_path,
            slot_table,
            cache_capacity=config.cache_capacity,
            cut_cache_capacity=config.alpha_cut_cache_capacity,
            id_watermark=int(catalog.get("id_watermark", 0)),
        )
        summaries = {
            int(payload["object_id"]): FuzzyObjectSummary.from_dict(payload)
            for payload in catalog["summaries"]
        }
        return store, summaries, config

    @classmethod
    def open(
        cls,
        path: os.PathLike | str,
        config: Optional[RuntimeConfig] = None,
    ) -> "FuzzyDatabase":
        """Re-open a database previously written by :meth:`save`.

        The R-tree is rebuilt with one counted STR bulk-load pass (see
        :func:`repro.index.bulk.bulk_load_tree`), never one insert at a
        time.
        """
        directory = Path(path)
        store, summaries, config = cls._load_snapshot(directory, config)
        boot = SharedMetricsCollector()
        tree = bulk_load_tree(summaries.values(), config=config, metrics=boot)
        db = cls(store, tree, summaries, config)
        db.metrics.merge(boot)
        return db

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        """Whether a write-ahead log is attached."""
        return self._wal is not None

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self._wal

    @property
    def snapshots(self) -> Optional[SnapshotManager]:
        return self._snapshots

    def enable_durability(
        self,
        directory: os.PathLike | str,
        *,
        fault_hook=None,
        snapshot: bool = True,
    ) -> "FuzzyDatabase":
        """Attach a WAL + snapshot cycle rooted at ``directory``.

        Takes an initial snapshot (catalogue + data file + manifest) so the
        directory is recoverable from the first logged mutation on, then
        logs every subsequent insert/delete ahead of applying it.  Deletes
        switch to the deferred-compaction path (lazy R-tree removal, STR
        repack when the debt ratio crosses
        ``config.compaction_debt_ratio``).  ``fault_hook`` is invoked before
        every WAL append (chaos testing; see
        :mod:`repro.service.faults`).

        This is for a *live, consistent* database; to attach to a directory
        left behind by a crash, use :meth:`recover` — calling this directly
        would truncate an unreplayed WAL tail.
        """
        if self._wal is not None:
            raise StorageError("durability is already enabled")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self._durable_dir = directory
        self._wal = WriteAheadLog(
            directory / "wal.log",
            sync=self.config.wal_sync,
            metrics=self.metrics,
            fault_hook=fault_hook,
        )
        self._compaction = CompactionManager(
            debt_ratio=self.config.compaction_debt_ratio, metrics=self.metrics
        )
        self._snapshots = SnapshotManager(
            directory=directory,
            wal=self._wal,
            save=lambda: self.save(directory),
            every=self.config.snapshot_every,
            manifest=Manifest(kind="single"),
            metrics=self.metrics,
        )
        if snapshot:
            self._snapshots.snapshot()
        return self

    @classmethod
    def recover(
        cls,
        path: os.PathLike | str,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
        *,
        resume: bool = True,
        fault_hook=None,
    ) -> "FuzzyDatabase":
        """Recover a durable database directory after a crash.

        Loads the last published snapshot, replays the WAL tail on top of
        it (repairing a torn final record in place), and packs the R-tree
        with one STR bulk load — the RECOVERIES / WAL_REPLAYED / BULK_LOADS
        counters record exactly that.  Replay is idempotent because ids are
        never recycled: records the snapshot already covers are skipped.

        With ``resume=True`` (default) durability is re-enabled on the same
        directory and a fresh snapshot folds the replayed tail in, so the
        recovered database continues exactly where the crashed one left
        off.
        """
        directory = Path(path)
        manifest = read_manifest(directory)
        if manifest.kind != "single":
            raise StorageError(
                f"{directory} holds a {manifest.kind!r} database — recover it "
                "through ShardedDatabase.recover()"
            )
        store, summaries, config = cls._load_snapshot(
            directory, config, manifest.data_file, manifest.catalog_file
        )
        boot = SharedMetricsCollector()
        wal = WriteAheadLog(
            directory / manifest.wal_file, sync=config.wal_sync, metrics=boot
        )
        replayed = 0
        for record in wal.replay():
            if record.is_insert:
                if record.object_id in store:
                    continue
                obj = decode_object(record.blob)
                store.put(obj)
                summaries[record.object_id] = build_summary(obj, rng=rng)
            else:
                if record.object_id not in store:
                    continue
                summaries.pop(record.object_id, None)
                store.delete(record.object_id)
            replayed += 1
        wal.close()
        tree = bulk_load_tree(summaries.values(), config=config, metrics=boot)
        db = cls(store, tree, summaries, config)
        boot.increment(MetricsCollector.WAL_REPLAYED, replayed)
        boot.increment(MetricsCollector.RECOVERIES)
        db.metrics.merge(boot)
        if resume:
            db.enable_durability(directory, fault_hook=fault_hook)
        return db
