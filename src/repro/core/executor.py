"""Vectorized batch AKNN execution.

:class:`BatchQueryExecutor` answers a *batch* of AKNN queries (one shared
``k`` and threshold ``alpha``) far faster than looping the single-query
searcher, by amortising all index work across the batch:

* **Shared pruning-radius bootstrap.**  A KD-tree over every object's
  representative kernel point (built once per executor and reused across
  batches) yields, per query, a handful of candidates whose exact distances
  immediately give a valid k-th-distance radius ``tau`` — before the R-tree
  is even touched.
* **One shared traversal.**  Every R-tree node is visited at most once per
  batch.  A node is expanded only for the *active* queries whose radius it
  can still beat, and the lower bounds (``d-_alpha`` of Section 3.2, or the
  support-MBR ``MinDist`` for ``method="basic"``) of all its entries against
  all active queries are evaluated as one ``(active, n)`` NumPy matrix
  against the node's struct-of-arrays view.  The Equation-2 reconstruction
  per node is computed once per (node, alpha) and shared by the whole batch
  through the node's per-alpha cache.
* **Vectorized exact refinement.**  Surviving candidates are probed through
  one chunked closest-pair evaluation per query (a single distance matrix
  against the concatenated candidate alpha-cuts, reduced per candidate with
  ``minimum.reduceat``), instead of one Python-level closest-pair call per
  candidate.
* **Shared probe state.**  Each distinct object is fetched from the store
  and its alpha-cut materialised at most once per batch, no matter how many
  queries probe it.

The returned neighbour sets are exact and identical to the single-query
methods (asserted by the parity tests) up to distance ties at the k-th rank,
where any of the equally-correct k-sets may be returned (this engine breaks
ties by object id).  The per-neighbour distances are always exact
(``probed=True``), unlike the lazy single-query variants which may confirm
through bounds alone.

``workers > 1`` distributes the per-query refinement over a thread pool.
Traversal and store I/O stay on the calling thread, so the store and tree
need no locking; NumPy releases the GIL inside the distance kernels, so the
pool helps on multi-core hosts and degrades gracefully to serial behaviour
on a single core.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.query import PreparedQuery
from repro.core.results import AKNNResult, BatchResult, Neighbor, QueryStats
from repro.exceptions import InvalidQueryError
from repro.fuzzy.fuzzy_object import CUT_CACHE_STATS, FuzzyObject
from repro.index.rtree import RTree
from repro.index.soa import min_dist_to_boxes
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

try:  # scipy is a hard dependency; keep the import failure readable.
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - scipy is always installed in CI
    cKDTree = None

# Relative + absolute slack when comparing a lower bound against a pruning
# radius, absorbing the tiny float drift between vectorized and scalar paths.
_PRUNE_SLACK = 1e-9

# Element budget of one (m, chunk, d) difference block in the vectorized
# probe kernel; bounds peak memory at a few megabytes.
_PROBE_BLOCK_ELEMENTS = 262_144

# Extra bootstrap candidates probed beyond k; a slightly larger pool gives a
# tighter starting radius for near-tie configurations at negligible cost.
_BOOTSTRAP_EXTRA = 4

# Node pops between deadline checks in the shared traversal.  Small enough
# that an expired batch stops within a few node expansions, large enough that
# the clock read never shows up in profiles.
_DEADLINE_CHECK_INTERVAL = 32


def _exact_min_distances(
    query_cut: np.ndarray, cuts: Sequence[np.ndarray]
) -> np.ndarray:
    """Exact alpha-distances from one query cut to each candidate cut.

    Evaluates the closest-pair distance of ``query_cut`` against every cut in
    ``cuts`` with one chunked distance matrix over the concatenated candidate
    points, reduced per candidate via ``minimum.reduceat``.  The direct
    ``(a - b)^2`` formula is used (not the dot-product expansion), so
    coincident points come out as exactly zero.
    """
    sizes = [cut.shape[0] for cut in cuts]
    points = np.concatenate(cuts, axis=0)
    starts = np.zeros(len(cuts), dtype=np.intp)
    np.cumsum(sizes[:-1], out=starts[1:])
    total = points.shape[0]
    m, d = query_cut.shape
    col_min = np.empty(total)
    chunk = max(1, _PROBE_BLOCK_ELEMENTS // max(1, m))
    for start in range(0, total, chunk):
        block = points[start : start + chunk]
        # Per-dimension accumulation keeps the largest temporary at (m, c)
        # instead of (m, c, d).
        sq = np.square(query_cut[:, None, 0] - block[None, :, 0])
        for dim in range(1, d):
            sq += np.square(query_cut[:, None, dim] - block[None, :, dim])
        col_min[start : start + chunk] = sq.min(axis=0)
    return np.sqrt(np.minimum.reduceat(col_min, starts))


class BatchQueryExecutor:
    """Answers batches of AKNN queries over an object store + R-tree pair."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        config: Optional[RuntimeConfig] = None,
    ):
        self.store = store
        self.tree = tree
        self.config = (config or RuntimeConfig()).validate()
        # ((tree size, tree mutations), KD-tree over representatives, aligned
        # object ids); rebuilt lazily whenever the indexed set changes — the
        # mutation counter catches insert/delete pairs that keep the size.
        self._rep_index: Optional[Tuple[Tuple[int, int], object, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def aknn_batch(
        self,
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        initial_tau: Optional[np.ndarray] = None,
        initial_exact: Optional[Sequence[Dict[int, float]]] = None,
        deadline=None,
    ) -> BatchResult:
        """Answer every query's AKNN at one shared ``k`` and ``alpha``.

        ``deadline`` is an optional :class:`~repro.service.policy.Deadline`;
        the batch checks it between traversal chunks and refinement steps and
        aborts with :class:`~repro.exceptions.DeadlineExceededError` once it
        expires, so an already-dead batch never burns a full traversal.

        ``method`` selects the lower bound driving the shared pruning
        (``"basic"`` uses the support-MBR ``MinDist``; every other variant
        uses the conservative-line bound ``d-_alpha``); all methods return
        the same exact neighbour sets.  ``workers`` overrides the configured
        thread count for the refinement phase (``None`` uses
        ``config.batch_workers``).

        ``initial_tau`` is an optional per-query pruning radius.  When
        given, the local KD-tree bootstrap is skipped and the traversal
        prunes against these radii directly.  The returned neighbour lists
        are complete only *up to the supplied radius*: every object whose
        exact distance is at most a query's radius is considered, anything
        beyond it may be dropped.  A radius that upper-bounds the query's
        true k-th neighbour distance therefore yields the full exact top-k
        (the sharded database passes one globally-bootstrapped radius to
        every shard, which keeps per-shard candidate sets as tight as the
        unsharded ones); a deliberately smaller radius yields a truncated
        list — the reverse-kNN engine exploits this with
        ``tau = d_alpha(A, Q)``, whose truncation provably preserves the
        membership decision (see
        :func:`repro.core.reverse_nn.membership_from_neighbors`) but would
        NOT be a valid top-k answer on its own.  ``initial_exact``
        optionally seeds each query's exact-distance memo (one dict per
        query) so distances the caller already evaluated — e.g. for the
        bootstrap nominees — are not recomputed during refinement.
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        from repro.core.aknn import AKNN_METHODS

        if method not in AKNN_METHODS:
            raise InvalidQueryError(
                f"unknown AKNN method {method!r}; expected one of {AKNN_METHODS}"
            )
        queries = list(queries)
        workers = self.config.batch_workers if workers is None else int(workers)
        metrics = MetricsCollector()
        store_before = self.store.statistics.snapshot()
        cut_hits_before = CUT_CACHE_STATS["hits"]
        cut_misses_before = CUT_CACHE_STATS["misses"]
        timer = Timer().start()

        query_metrics = [MetricsCollector() for _ in queries]
        if not queries or len(self.tree) == 0:
            per_query: List[List[Neighbor]] = [[] for _ in queries]
        else:
            if deadline is not None:
                deadline.check("batch")
            per_query = self._run_batch(
                queries, k, alpha, method, workers, rng, metrics, query_metrics,
                initial_tau=initial_tau, initial_exact=initial_exact,
                deadline=deadline,
            )

        elapsed = timer.stop()
        metrics.increment(MetricsCollector.BATCH_QUERIES, len(queries))
        results = []
        for query_index, neighbors in enumerate(per_query):
            qm = query_metrics[query_index]
            results.append(
                AKNNResult(
                    neighbors=neighbors,
                    k=k,
                    alpha=alpha,
                    method=method,
                    stats=QueryStats(
                        distance_evaluations=qm.get(
                            MetricsCollector.DISTANCE_EVALUATIONS
                        ),
                        aknn_calls=1,
                    ),
                )
            )
        stats = self._aggregate_stats(
            metrics,
            query_metrics,
            store_before,
            elapsed,
            len(queries),
            cut_hits_before,
            cut_misses_before,
        )
        return BatchResult(results=results, k=k, alpha=alpha, method=method, stats=stats)

    # ------------------------------------------------------------------
    # Batch pipeline
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        queries: List[FuzzyObject],
        k: int,
        alpha: float,
        method: str,
        workers: int,
        rng: Optional[np.random.Generator],
        metrics: MetricsCollector,
        query_metrics: List[MetricsCollector],
        initial_tau: Optional[np.ndarray] = None,
        initial_exact: Optional[Sequence[Dict[int, float]]] = None,
        deadline=None,
    ) -> List[List[Neighbor]]:
        improved = method != "basic"
        prepared = [
            PreparedQuery(query, alpha, self.config, rng, query_metrics[i])
            for i, query in enumerate(queries)
        ]
        q_lo = np.stack([p.query_mbr.lower for p in prepared])
        q_hi = np.stack([p.query_mbr.upper for p in prepared])

        cuts: Dict[int, np.ndarray] = {}
        if initial_exact is not None:
            if len(initial_exact) != len(prepared):
                raise InvalidQueryError(
                    f"initial_exact needs one memo per query "
                    f"({len(prepared)}), got {len(initial_exact)}"
                )
            exact: List[Dict[int, float]] = [dict(d) for d in initial_exact]
        else:
            exact = [dict() for _ in prepared]
        if initial_tau is not None:
            tau = np.asarray(initial_tau, dtype=float)
            if tau.shape != (len(prepared),):
                raise InvalidQueryError(
                    f"initial_tau must have shape ({len(prepared)},), got {tau.shape}"
                )
        else:
            tau = self._bootstrap_tau(prepared, k, alpha, cuts, exact, metrics)
        if deadline is not None:
            deadline.check("batch bootstrap")
        candidates = self._shared_traversal(
            prepared, alpha, improved, q_lo, q_hi, tau, metrics, deadline=deadline
        )
        if deadline is not None:
            deadline.check("batch traversal")

        needed = np.unique(
            np.concatenate(
                [ids for per_query in candidates for ids in per_query] or
                [np.empty(0, dtype=np.int64)]
            )
        )
        self._fetch_cuts(needed, alpha, cuts)
        results: List[List[Neighbor]] = [[] for _ in prepared]

        def refine(qi: int) -> None:
            if deadline is not None:
                deadline.check("batch refinement")
            blocks = candidates[qi]
            ids = (
                np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int64)
            )
            if ids.shape[0] == 0:
                return
            dists = self._probe(prepared[qi], ids, cuts, exact[qi])
            order = np.lexsort((ids, dists))[:k]
            results[qi] = [
                Neighbor(
                    object_id=int(ids[j]),
                    distance=float(dists[j]),
                    lower_bound=float(dists[j]),
                    upper_bound=float(dists[j]),
                    probed=True,
                )
                for j in order
            ]

        self._for_each_query(range(len(prepared)), refine, workers)
        metrics.increment(
            "batch_candidates", int(sum(len(known) for known in exact))
        )
        return results

    def _bootstrap_tau(
        self,
        prepared: List[PreparedQuery],
        k: int,
        alpha: float,
        cuts: Dict[int, np.ndarray],
        exact: List[Dict[int, float]],
        metrics: MetricsCollector,
    ) -> np.ndarray:
        """A valid per-query pruning radius from the shared representative index.

        For each query the KD-tree over ``rep(A)`` points nominates the
        objects whose representatives are closest to the centre of the query
        alpha-cut MBR; probing those exactly makes the k-th smallest probed
        distance a valid upper bound on the true k-th neighbour distance
        (where the nominations land only affects how tight the radius is,
        never correctness).
        """
        n_queries = len(prepared)
        tau = np.full(n_queries, np.inf)
        rep_tree, rep_oids = self._representative_index()
        if rep_tree is None or rep_oids.shape[0] < k:
            return tau
        kk = min(k + _BOOTSTRAP_EXTRA, rep_oids.shape[0])
        centers = np.stack(
            [(p.query_mbr.lower + p.query_mbr.upper) / 2.0 for p in prepared]
        )
        _, rep_idx = rep_tree.query(centers, k=kk)
        if kk == 1:
            rep_idx = rep_idx[:, None]
        nominated = rep_oids[rep_idx]
        metrics.increment(
            MetricsCollector.UPPER_BOUND_EVALUATIONS, n_queries * kk
        )
        self._fetch_cuts(np.unique(nominated), alpha, cuts)
        for qi in range(n_queries):
            dists = self._probe(prepared[qi], nominated[qi], cuts, exact[qi])
            tau[qi] = float(np.partition(dists, k - 1)[k - 1])
        return tau

    def _shared_traversal(
        self,
        prepared: List[PreparedQuery],
        alpha: float,
        improved: bool,
        q_lo: np.ndarray,
        q_hi: np.ndarray,
        tau: np.ndarray,
        metrics: MetricsCollector,
        deadline=None,
    ) -> List[List[np.ndarray]]:
        """Visit every needed node once, gathering candidate ids per query.

        Bounds are evaluated only for the queries still *active* at a node
        (their radius exceeds the node's ``MinDist``), as one
        ``(active, n)`` matrix per node.  Returns, per query, the id blocks of
        every leaf entry whose lower bound survives the query's radius.
        """
        n_queries = len(prepared)
        threshold = tau * (1.0 + _PRUNE_SLACK) + _PRUNE_SLACK
        candidates: List[List[np.ndarray]] = [[] for _ in prepared]
        lb_counter = MetricsCollector.LOWER_BOUND_EVALUATIONS
        # Stack of (node, active query indices); the radius is fixed up
        # front by the bootstrap, so no best-first ordering is needed.
        stack: List[Tuple[object, np.ndarray]] = [
            (self.tree.root, np.arange(n_queries))
        ]
        pops = 0
        while stack:
            node, active = stack.pop()
            pops += 1
            if deadline is not None and pops % _DEADLINE_CHECK_INTERVAL == 0:
                deadline.check("batch traversal")
            metrics.increment(MetricsCollector.NODE_ACCESSES)
            if not node.entries:
                continue
            soa = node.soa()
            if node.is_leaf:
                if improved:
                    box_lo, box_hi = soa.approx_alpha_bounds(alpha)
                else:
                    box_lo, box_hi = soa.lo, soa.hi
                lb = min_dist_to_boxes(q_lo[active], q_hi[active], box_lo, box_hi)
                metrics.increment(lb_counter, int(active.shape[0]) * soa.n)
                survivors = lb <= threshold[active, None]
                object_ids = soa.object_ids
                for row, qi in enumerate(active.tolist()):
                    mask = survivors[row]
                    if mask.any():
                        candidates[qi].append(object_ids[mask].copy())
            else:
                child_dists = soa.min_dist(q_lo[active], q_hi[active])
                reachable = child_dists <= threshold[active, None]
                keep = reachable.any(axis=0)
                for j, entry in enumerate(node.entries):
                    if keep[j]:
                        stack.append((entry.child, active[reachable[:, j]]))
                    else:
                        metrics.increment(MetricsCollector.NODES_PRUNED)
        return candidates

    # ------------------------------------------------------------------
    # Probe helpers
    # ------------------------------------------------------------------
    def _representative_index(self) -> Tuple[Optional[object], np.ndarray]:
        """KD-tree over every summary's representative point (cached)."""
        key = (len(self.tree), getattr(self.tree, "mutations", 0))
        if self._rep_index is not None and self._rep_index[0] == key:
            return self._rep_index[1], self._rep_index[2]
        reps: List[np.ndarray] = []
        oids: List[int] = []
        for entry in self.tree.leaf_entries():
            reps.append(entry.summary.representative)
            oids.append(entry.object_id)
        if not reps or cKDTree is None:
            return None, np.empty(0, dtype=np.int64)
        tree = cKDTree(np.asarray(reps))
        oid_array = np.asarray(oids, dtype=np.int64)
        self._rep_index = (key, tree, oid_array)
        return tree, oid_array

    def _fetch_cuts(
        self,
        object_ids: np.ndarray,
        alpha: float,
        cuts: Dict[int, np.ndarray],
    ) -> Dict[int, np.ndarray]:
        """Fetch each distinct object once and materialise its alpha-cut."""
        for object_id in object_ids.tolist():
            if object_id not in cuts:
                cuts[object_id] = self.store.get(object_id).alpha_cut(alpha)
        return cuts

    def _probe(
        self,
        prepared: PreparedQuery,
        object_ids: np.ndarray,
        cuts: Dict[int, np.ndarray],
        known: Dict[int, float],
    ) -> np.ndarray:
        """Exact alpha-distances of one query to ``object_ids`` (memoised)."""
        ids = object_ids.tolist()
        missing = [oid for oid in ids if oid not in known] if known else ids
        if missing:
            distances = _exact_min_distances(
                prepared.query_cut, [cuts[oid] for oid in missing]
            )
            prepared.metrics.increment(
                MetricsCollector.DISTANCE_EVALUATIONS, len(missing)
            )
            known.update(zip(missing, distances.tolist()))
            if len(missing) == len(ids):
                return distances
        return np.asarray([known[oid] for oid in ids])

    @staticmethod
    def _for_each_query(indices, fn, workers: int) -> None:
        """Run ``fn`` per query index, optionally over a thread pool."""
        indices = list(indices)
        if workers > 1 and len(indices) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(fn, indices))
        else:
            for index in indices:
                fn(index)

    def _aggregate_stats(
        self,
        metrics: MetricsCollector,
        query_metrics: List[MetricsCollector],
        store_before,
        elapsed: float,
        n_queries: int,
        cut_hits_before: int,
        cut_misses_before: int,
    ) -> QueryStats:
        for qm in query_metrics:
            metrics.merge(qm)
        store_stats = self.store.statistics
        stats = QueryStats(
            object_accesses=store_stats.object_accesses - store_before.object_accesses,
            node_accesses=metrics.get(MetricsCollector.NODE_ACCESSES),
            distance_evaluations=metrics.get(MetricsCollector.DISTANCE_EVALUATIONS),
            lower_bound_evaluations=metrics.get(
                MetricsCollector.LOWER_BOUND_EVALUATIONS
            ),
            upper_bound_evaluations=metrics.get(
                MetricsCollector.UPPER_BOUND_EVALUATIONS
            ),
            aknn_calls=n_queries,
            elapsed_seconds=elapsed,
        )
        stats.extra["batch_queries"] = float(n_queries)
        stats.extra["nodes_pruned"] = float(metrics.get(MetricsCollector.NODES_PRUNED))
        stats.extra["batch_candidates"] = float(metrics.get("batch_candidates"))
        stats.extra["cache_hits"] = float(
            store_stats.cache_hits - store_before.cache_hits
        )
        stats.extra["cut_cache_hits"] = float(
            CUT_CACHE_STATS["hits"] - cut_hits_before
        )
        stats.extra["cut_cache_misses"] = float(
            CUT_CACHE_STATS["misses"] - cut_misses_before
        )
        if elapsed > 0.0:
            stats.extra["throughput_qps"] = n_queries / elapsed
        return stats
