"""Reverse kNN over fuzzy objects — the paper's second proposed follow-up query.

Given a query fuzzy object ``Q``, a threshold ``alpha`` and a result size
``k``, the reverse AKNN query returns every dataset object ``A`` that counts
``Q`` among its own ``k`` nearest neighbours at ``alpha`` (monochromatic
semantics: ``A``'s neighbours are drawn from the dataset without ``A`` itself,
plus ``Q``).

Three strategies are provided:

``linear``
    For every object ``A``: evaluate ``d_alpha(A, Q)`` and count how many
    dataset objects are strictly closer to ``A``; ``A`` is a reverse
    neighbour when fewer than ``k`` are.  Exact, O(N) AKNN-equivalents.

``pruned``
    Same verification, but candidates are filtered first: by Lemma-style
    reasoning an object ``A`` can only be a reverse neighbour if fewer than
    ``k`` objects have a *lower bound* below ``A``'s *upper bound* to ``Q``,
    both of which are computed from the in-memory summaries without touching
    the store.  Only surviving candidates pay the exact verification.

``batch``
    The same filter-then-verify plan rebuilt on the batch engine.  The
    filter evaluates the all-pairs disqualification test — ``A`` is out once
    ``k`` objects have ``MaxDist(M_A(alpha)*, M_B(alpha)*)`` below
    ``MinDist(M_A(alpha)*, M_Q(alpha))`` — as chunked NumPy matrices over
    the ``(N, d)`` Equation-2 box arrays gathered straight from the leaf SoA
    views, instead of the O(N^2) Python double loop.  Verification then
    answers every surviving candidate's (k+1)-NN through **one** shared
    :meth:`~repro.core.executor.BatchQueryExecutor.aknn_batch` traversal:
    each candidate's exact distance to ``Q`` doubles as an externally
    bootstrapped pruning radius (any object at or beyond ``d_alpha(A, Q)``
    can never be strictly closer to ``A`` than ``Q``, so truncating the
    traversal there preserves the membership decision), and every distinct
    object is fetched from the store once for the whole batch.

:meth:`ReverseAKNNSearcher.search_batch` extends the ``batch`` plan to a
*bucket* of reverse queries sharing ``(k, alpha)``: the MaxDist matrix of
the filter is query-independent, so the whole bucket pays for it once, and
the union of every query's surviving candidates is verified through a single
shared traversal (per-candidate radii take the maximum over the bucket,
which keeps each per-query decision exact).  The query service's coalescer
flushes reverse submissions through this path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.aknn import AKNNSearcher
from repro.core.executor import BatchQueryExecutor, _exact_min_distances
from repro.core.query import PreparedQuery
from repro.core.results import Coverage, QueryStats
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import DistanceProfileStore, alpha_distance_points
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.geometry.mbr import max_dist, min_dist
from repro.index.rtree import RTree
from repro.index.soa import certainly_closer_counts, min_dist_to_boxes
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

REVERSE_METHODS: Tuple[str, ...] = ("linear", "pruned", "batch")


def membership_from_neighbors(
    neighbors, candidate_id: int, distance_to_query: float, k: int
) -> bool:
    """Decide reverse-neighbour membership from a (k+1)-NN answer.

    ``Q`` is among the candidate's k nearest neighbours iff fewer than ``k``
    dataset objects other than the candidate itself are strictly closer to it
    than ``Q``.  Any valid top-(k+1) list over a candidate set truncated at
    ``distance_to_query`` suffices: when fewer than ``k`` objects are closer,
    all of them (plus the candidate at distance zero) outrank everything at
    or beyond ``distance_to_query`` and appear in the list; when at least
    ``k`` are, the list fills with closer objects, of which at most one entry
    is the candidate itself.
    """
    closer = 0
    for neighbor in neighbors:
        if neighbor.object_id == candidate_id:
            continue
        if neighbor.distance < distance_to_query:
            closer += 1
            if closer >= k:
                return False
    return True


def bucket_candidate_distances(
    prepared: Sequence[PreparedQuery],
    masks: np.ndarray,
    union: np.ndarray,
    cand_cuts: Sequence[np.ndarray],
    metrics: Optional[MetricsCollector] = None,
    cand_ids: Optional[Sequence[int]] = None,
    profile_store: Optional["DistanceProfileStore"] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
    """Exact per-query candidate distances plus the bucket's shared radii.

    For each query, the columns (positions within ``union``) of its surviving
    candidates and their exact ``d_alpha(A, Q)`` values; ``tau`` is the
    per-candidate maximum over the bucket, the valid truncation radius for
    the shared verification traversal (see :func:`membership_from_neighbors`).

    When ``profile_store`` (and the aligned ``cand_ids``) are given, each
    (query, candidate) evaluation is served from the shared
    :class:`~repro.fuzzy.alpha_distance.DistanceProfileStore` memo when
    possible — a distance profile materialised by the RKNN sweep searcher for
    the same query instance answers it for free — and every freshly computed
    distance is memoised back, so overlapping evaluations between the sweep
    and reverse engines are paid once per pair.
    """
    per_query_cols: List[np.ndarray] = []
    per_query_dists: List[np.ndarray] = []
    tau = np.zeros(union.shape[0])
    memo = profile_store if cand_ids is not None else None
    for qi, query in enumerate(prepared):
        cols = np.flatnonzero(masks[qi][union])
        dists = np.empty(cols.shape[0])
        # Per-pair lookups only pay off for a query instance the store has
        # already seen (a sweep or an earlier reverse call); a fresh query
        # object — the common serving case — can never hit, so it keeps the
        # one-shot vectorized evaluation path regardless of what other
        # queries have cached.
        use_memo = memo is not None and memo.has_query(query.query)
        if cols.shape[0]:
            if not use_memo:
                pending = list(range(cols.shape[0]))
                pending_cuts = [cand_cuts[j] for j in cols.tolist()]
            else:
                pending = []
                pending_cuts = []
                for pos, col in enumerate(cols.tolist()):
                    cached = memo.distance_at(
                        query.query, cand_ids[col], query.alpha
                    )
                    if cached is None:
                        pending.append(pos)
                        pending_cuts.append(cand_cuts[col])
                    else:
                        dists[pos] = cached
            if pending:
                computed = _exact_min_distances(query.query_cut, pending_cuts)
                if metrics is not None:
                    metrics.increment(
                        MetricsCollector.DISTANCE_EVALUATIONS, len(pending)
                    )
                dists[np.asarray(pending, dtype=np.intp)] = computed
                if use_memo:
                    for pos, value in zip(pending, computed.tolist()):
                        memo.insert_distance(
                            query.query,
                            cand_ids[int(cols[pos])],
                            query.alpha,
                            value,
                        )
            np.maximum.at(tau, cols, dists)
        per_query_cols.append(cols)
        per_query_dists.append(dists)
    return per_query_cols, per_query_dists, tau


def query_filter_thresholds(
    prepared: Sequence[PreparedQuery],
    box_lo: np.ndarray,
    box_hi: np.ndarray,
) -> np.ndarray:
    """Per-(query, row) disqualification thresholds for the all-pairs filter.

    Row ``(q, A)`` is ``MinDist(M_A(alpha)*, M_Q(alpha))`` — the value the
    ``certainly_closer_counts`` kernel compares ``MaxDist(M_A*, M_B*)``
    against.  Shared by the unsharded filter and the sharded per-shard
    fan-out (which evaluates the same thresholds against the global box set).
    """
    return min_dist_to_boxes(
        np.stack([p.query_mbr.lower for p in prepared]),
        np.stack([p.query_mbr.upper for p in prepared]),
        box_lo,
        box_hi,
    )


@dataclass
class BucketVerificationPlan:
    """Candidate-side state shared by one bucket's verification traversal.

    Produced by :func:`plan_bucket_verification`; consumed by both the
    unsharded reverse engine and the sharded fan-out, which only differ in
    *where* the verification batch runs (one executor vs every shard).
    """

    union: np.ndarray
    cand_ids: List[int]
    cand_objs: List[FuzzyObject]
    per_query_cols: List[np.ndarray]
    per_query_dists: List[np.ndarray]
    tau: np.ndarray
    seeds: List[Dict[int, float]]

    @property
    def probes(self) -> List[int]:
        """Exact candidate probes attributable to each query."""
        return [int(cols.shape[0]) for cols in self.per_query_cols]


def plan_bucket_verification(
    prepared: Sequence[PreparedQuery],
    masks: np.ndarray,
    ids: np.ndarray,
    fetch_object,
    alpha: float,
    metrics: Optional[MetricsCollector] = None,
    profile_store: Optional["DistanceProfileStore"] = None,
) -> Optional[BucketVerificationPlan]:
    """Candidate prep for a reverse bucket's shared verification traversal.

    Materialises the union of every query's surviving candidates (``masks``
    over the global row array ``ids``; ``fetch_object(row)`` resolves one row
    to its object, wherever it is stored), evaluates the per-query exact
    distances, and derives the bucket-wide truncation radii ``tau`` plus the
    per-candidate self-distance seeds handed to the batch executor.  Returns
    ``None`` when no candidate survives anywhere in the bucket.
    """
    union = np.flatnonzero(masks.any(axis=0))
    if union.shape[0] == 0:
        return None
    cand_ids = [int(ids[j]) for j in union]
    cand_objs = [fetch_object(int(j)) for j in union]
    cand_cuts = [obj.alpha_cut(alpha) for obj in cand_objs]
    per_query_cols, per_query_dists, tau = bucket_candidate_distances(
        prepared,
        masks,
        union,
        cand_cuts,
        metrics,
        cand_ids=cand_ids,
        profile_store=profile_store,
    )
    seeds = [{object_id: 0.0} for object_id in cand_ids]
    return BucketVerificationPlan(
        union=union,
        cand_ids=cand_ids,
        cand_objs=cand_objs,
        per_query_cols=per_query_cols,
        per_query_dists=per_query_dists,
        tau=tau,
        seeds=seeds,
    )


def build_bucket_results(
    k: int,
    alpha: float,
    method: str,
    elapsed: float,
    masks: np.ndarray,
    memberships: Sequence[List[int]],
    distance_maps: Sequence[Dict[int, float]],
    probes: Sequence[int],
    totals: Dict[str, int],
    extra_common: Dict[str, float],
) -> List["ReverseKNNResult"]:
    """Per-query results with per-query-honest cost attribution.

    Most of a bucket's work (filter matrix, shared traversal, store fetches)
    is paid once and cannot be attributed to one query, so per-result scalar
    counters charge each query only its own exact candidate probes
    (``probes``), with the bucket totals (``totals``, keyed by QueryStats
    field name) reported under ``extra["bucket_<name>"]``.  A bucket of one
    query owns every cost, so its scalars carry the full totals.  Both the
    unsharded and the sharded engine assemble their answers through this
    helper, keeping the two telemetry schemes identical.
    """
    single = len(memberships) == 1
    results: List[ReverseKNNResult] = []
    for qi in range(len(memberships)):
        extra = dict(extra_common)
        extra["candidates"] = float(int(masks[qi].sum()))
        for name, value in totals.items():
            extra[f"bucket_{name}"] = float(value)
        scalars = {name: (value if single else 0) for name, value in totals.items()}
        if not single:
            scalars["distance_evaluations"] = probes[qi]
        stats = QueryStats(elapsed_seconds=elapsed, extra=extra, **scalars)
        results.append(
            ReverseKNNResult(
                object_ids=sorted(memberships[qi]),
                distances=distance_maps[qi],
                k=k,
                alpha=alpha,
                method=method,
                stats=stats,
            )
        )
    return results


def collect_memberships(
    k: int,
    cand_ids: Sequence[int],
    neighbor_lists: Sequence[Sequence],
    per_query_cols: Sequence[np.ndarray],
    per_query_dists: Sequence[np.ndarray],
) -> Tuple[List[List[int]], List[Dict[int, float]]]:
    """Per-query reverse-neighbour sets from the verified (k+1)-NN lists."""
    memberships: List[List[int]] = []
    distances: List[Dict[int, float]] = []
    for cols, dists in zip(per_query_cols, per_query_dists):
        object_ids: List[int] = []
        by_id: Dict[int, float] = {}
        for col, distance_to_query in zip(cols.tolist(), dists.tolist()):
            if membership_from_neighbors(
                neighbor_lists[col], cand_ids[col], distance_to_query, k
            ):
                object_ids.append(cand_ids[col])
                by_id[cand_ids[col]] = distance_to_query
        memberships.append(object_ids)
        distances.append(by_id)
    return memberships, distances


@dataclass
class ReverseKNNResult:
    """Answer of a reverse AKNN query."""

    object_ids: List[int]
    distances: Dict[int, float]
    k: int
    alpha: float
    method: str
    stats: QueryStats = field(default_factory=QueryStats)
    coverage: Optional["Coverage"] = None

    def __len__(self) -> int:
        return len(self.object_ids)


class ReverseAKNNSearcher:
    """Answers reverse AKNN queries over an object store + R-tree pair."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        config: Optional[RuntimeConfig] = None,
        executor: Optional[BatchQueryExecutor] = None,
        profile_store: Optional[DistanceProfileStore] = None,
    ):
        self.store = store
        self.tree = tree
        self.config = (config or RuntimeConfig()).validate()
        self.aknn = AKNNSearcher(store, tree, self.config)
        # The batch method verifies through a shared executor; passing the
        # database's own instance reuses its representative-index cache.
        self.executor = executor or BatchQueryExecutor(store, tree, self.config)
        # d_alpha(A, Q) memo shared with the RKNN sweep searcher (the
        # database hands both the same store): a profile the sweep computed
        # answers a reverse evaluation for free, and vice versa the scalar
        # memo dedupes repeated reverse submissions of one query instance.
        # (Explicit None check: an empty store is falsy via __len__.)
        if profile_store is None:
            profile_store = DistanceProfileStore(self.config.profile_cache_capacity)
        self.profile_store = profile_store

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "pruned",
        rng: Optional[np.random.Generator] = None,
    ) -> ReverseKNNResult:
        """Every object that has ``query`` among its k nearest neighbours."""
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        if method not in REVERSE_METHODS:
            raise InvalidQueryError(
                f"unknown reverse-kNN method {method!r}; expected one of {REVERSE_METHODS}"
            )
        if method == "batch":
            return self.search_batch([query], k, alpha, rng=rng)[0]
        metrics = MetricsCollector()
        before = self.store.statistics.snapshot()
        timer = Timer().start()

        candidate_ids = self._candidate_ids(query, k, alpha, method, metrics, rng)
        object_ids, distances = self._verify(query, k, alpha, candidate_ids, metrics)

        stats = QueryStats(
            object_accesses=self.store.statistics.object_accesses - before.object_accesses,
            node_accesses=metrics.get(MetricsCollector.NODE_ACCESSES),
            distance_evaluations=metrics.get(MetricsCollector.DISTANCE_EVALUATIONS),
            lower_bound_evaluations=metrics.get(MetricsCollector.LOWER_BOUND_EVALUATIONS),
            upper_bound_evaluations=metrics.get(MetricsCollector.UPPER_BOUND_EVALUATIONS),
            elapsed_seconds=timer.stop(),
            extra={"candidates": float(len(candidate_ids))},
        )
        return ReverseKNNResult(
            object_ids=sorted(object_ids),
            distances=distances,
            k=k,
            alpha=alpha,
            method=method,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Candidate filtering
    # ------------------------------------------------------------------
    def _candidate_ids(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str,
        metrics: MetricsCollector,
        rng: Optional[np.random.Generator],
    ) -> List[int]:
        all_ids = self.store.object_ids()
        if method == "linear":
            return all_ids

        # Pruned: work entirely on the in-memory summaries.  For a candidate
        # A, an upper bound on d_alpha(A, Q) is MaxDist of the approximated
        # alpha-cut MBRs; a lower bound on d_alpha(A, B) for any other B is
        # MinDist of their approximated MBRs.  If at least k other objects
        # have a lower bound to A that is smaller than A's upper bound to Q,
        # A may still be a reverse neighbour — only the opposite (k objects
        # *certainly* closer than Q can ever be) disqualifies A.
        prepared = PreparedQuery(query, alpha, self.config, rng, metrics)
        summaries = {entry.object_id: entry.summary for entry in self.tree.leaf_entries()}
        approx = {
            object_id: summary.approx_alpha_mbr(alpha)
            for object_id, summary in summaries.items()
        }
        candidates: List[int] = []
        for object_id, summary in summaries.items():
            certainly_closer = 0
            for other_id, other_mbr in approx.items():
                if other_id == object_id:
                    continue
                metrics.increment(MetricsCollector.LOWER_BOUND_EVALUATIONS)
                # MaxDist(A, B) < the lower bound of d(A, Q) would be the
                # certain disqualifier; use the conservative pair of bounds.
                if max_dist(approx[object_id], other_mbr) < min_dist(
                    approx[object_id], prepared.query_mbr
                ):
                    certainly_closer += 1
                    if certainly_closer >= k:
                        break
            if certainly_closer < k:
                candidates.append(object_id)
        return candidates

    # ------------------------------------------------------------------
    # Exact verification
    # ------------------------------------------------------------------
    def _verify(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        candidate_ids: List[int],
        metrics: MetricsCollector,
    ) -> Tuple[List[int], Dict[int, float]]:
        query_cut = query.alpha_cut(alpha)
        results: List[int] = []
        distances: Dict[int, float] = {}
        for object_id in candidate_ids:
            candidate = self.store.get(object_id)
            distance_to_query = self.profile_store.distance_at(query, object_id, alpha)
            if distance_to_query is None:
                metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
                distance_to_query = alpha_distance_points(
                    candidate.alpha_cut(alpha),
                    query_cut,
                    use_kdtree=self.config.use_kdtree,
                )
                self.profile_store.insert_distance(
                    query, object_id, alpha, distance_to_query
                )
            # Q is among the candidate's k nearest neighbours iff fewer than k
            # dataset objects (excluding the candidate itself) are strictly
            # closer to it than Q.  Ask the index for the candidate's k+1
            # nearest (the candidate itself is returned at distance zero).
            neighbours = self.aknn.search(candidate, k=k + 1, alpha=alpha, method="lb_lp_ub")
            closer = 0
            for neighbour in neighbours.neighbors:
                if neighbour.object_id == object_id:
                    continue
                exact = neighbour.distance
                if exact is None:
                    other = self.store.get(neighbour.object_id)
                    metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
                    exact = alpha_distance_points(
                        candidate.alpha_cut(alpha),
                        other.alpha_cut(alpha),
                        use_kdtree=self.config.use_kdtree,
                    )
                if exact < distance_to_query:
                    closer += 1
            if closer < k:
                results.append(object_id)
                distances[object_id] = distance_to_query
        return results, distances

    # ------------------------------------------------------------------
    # Vectorized batch engine
    # ------------------------------------------------------------------
    def search_batch(
        self,
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> List["ReverseKNNResult"]:
        """Answer a bucket of reverse AKNN queries sharing ``(k, alpha)``.

        Runs the ``batch`` plan described in the module docstring: one
        vectorized all-pairs filter (its MaxDist matrix shared by the whole
        bucket), then one shared ``aknn_batch`` traversal verifying the union
        of every query's surviving candidates.  Returns one result per query,
        identical to the ``linear`` / ``pruned`` answers.  ``deadline``
        bounds the bucket; it is checked between the filter and verification
        phases and inside the verification traversal.
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        queries = list(queries)
        if not queries:
            return []
        metrics = MetricsCollector()
        before = self.store.statistics.snapshot()
        timer = Timer().start()

        prepared = [
            PreparedQuery(query, alpha, self.config, rng, metrics)
            for query in queries
        ]
        if deadline is not None:
            deadline.check("reverse filter")
        ids, box_lo, box_hi = self.tree.leaf_alpha_bounds(alpha)
        masks = self._filter_batch(prepared, k, ids, box_lo, box_hi, metrics)
        if deadline is not None:
            deadline.check("reverse verification")
        memberships, distances, probes = self._verify_batch(
            prepared, k, alpha, ids, masks, metrics, rng, deadline=deadline
        )

        elapsed = timer.stop()
        accesses = self.store.statistics.object_accesses - before.object_accesses
        return build_bucket_results(
            k,
            alpha,
            "batch",
            elapsed,
            masks,
            memberships,
            distances,
            probes,
            totals={
                "object_accesses": accesses,
                "node_accesses": metrics.get(MetricsCollector.NODE_ACCESSES),
                "distance_evaluations": metrics.get(
                    MetricsCollector.DISTANCE_EVALUATIONS
                ),
                "lower_bound_evaluations": metrics.get(
                    MetricsCollector.LOWER_BOUND_EVALUATIONS
                ),
                "upper_bound_evaluations": metrics.get(
                    MetricsCollector.UPPER_BOUND_EVALUATIONS
                ),
            },
            extra_common={
                "batch_reverse_queries": float(len(queries)),
                "reverse_candidates": float(
                    metrics.get(MetricsCollector.REVERSE_CANDIDATES)
                ),
            },
        )

    def _filter_batch(
        self,
        prepared: List[PreparedQuery],
        k: int,
        ids: np.ndarray,
        box_lo: np.ndarray,
        box_hi: np.ndarray,
        metrics: MetricsCollector,
    ) -> np.ndarray:
        """Per-query candidate masks from the vectorized all-pairs filter.

        Row ``A`` of query ``q`` survives while fewer than ``k`` boxes have
        ``MaxDist(M_A*, M_B*) < MinDist(M_A*, M_Q(alpha))`` — the same
        conservative test as the ``pruned`` loop, evaluated as chunked
        matrices.  Returns a ``(Q, N)`` boolean mask.
        """
        n = ids.shape[0]
        if n == 0:
            return np.zeros((len(prepared), 0), dtype=bool)
        thresholds = query_filter_thresholds(prepared, box_lo, box_hi)
        counts = certainly_closer_counts(
            box_lo, box_hi, box_lo, box_hi, thresholds, self_index=np.arange(n)
        )
        metrics.increment(
            MetricsCollector.LOWER_BOUND_EVALUATIONS, len(prepared) * n + n * n
        )
        return counts < k

    def _verify_batch(
        self,
        prepared: List[PreparedQuery],
        k: int,
        alpha: float,
        ids: np.ndarray,
        masks: np.ndarray,
        metrics: MetricsCollector,
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> Tuple[List[List[int]], List[Dict[int, float]], List[int]]:
        """Verify the union of surviving candidates in one shared traversal.

        Returns per-query memberships and distance maps plus the number of
        exact candidate probes each query paid (its attributable cost share).
        """
        # d_alpha(A, Q) per (query, its candidates); the per-candidate radius
        # handed to the executor is the maximum over the bucket, which keeps
        # every query's truncated decision exact (see membership_from_neighbors).
        plan = plan_bucket_verification(
            prepared,
            masks,
            ids,
            lambda row: self.store.get(int(ids[row])),
            alpha,
            metrics,
            profile_store=self.profile_store,
        )
        if plan is None:
            n_queries = len(prepared)
            return (
                [[] for _ in range(n_queries)],
                [dict() for _ in range(n_queries)],
                [0] * n_queries,
            )
        batch = self.executor.aknn_batch(
            plan.cand_objs,
            k + 1,
            alpha,
            rng=rng,
            initial_tau=plan.tau,
            initial_exact=plan.seeds,
            deadline=deadline,
        )
        metrics.increment(MetricsCollector.REVERSE_CANDIDATES, len(plan.cand_ids))
        metrics.increment(
            MetricsCollector.NODE_ACCESSES, batch.stats.node_accesses
        )
        metrics.increment(
            MetricsCollector.DISTANCE_EVALUATIONS, batch.stats.distance_evaluations
        )
        memberships, distances = collect_memberships(
            k,
            plan.cand_ids,
            [result.neighbors for result in batch.results],
            plan.per_query_cols,
            plan.per_query_dists,
        )
        return memberships, distances, plan.probes
