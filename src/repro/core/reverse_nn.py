"""Reverse kNN over fuzzy objects — the paper's second proposed follow-up query.

Given a query fuzzy object ``Q``, a threshold ``alpha`` and a result size
``k``, the reverse AKNN query returns every dataset object ``A`` that counts
``Q`` among its own ``k`` nearest neighbours at ``alpha`` (monochromatic
semantics: ``A``'s neighbours are drawn from the dataset without ``A`` itself,
plus ``Q``).

Two strategies are provided:

``linear``
    For every object ``A``: evaluate ``d_alpha(A, Q)`` and count how many
    dataset objects are strictly closer to ``A``; ``A`` is a reverse
    neighbour when fewer than ``k`` are.  Exact, O(N) AKNN-equivalents.

``pruned``
    Same verification, but candidates are filtered first: by Lemma-style
    reasoning an object ``A`` can only be a reverse neighbour if fewer than
    ``k`` objects have a *lower bound* below ``A``'s *upper bound* to ``Q``,
    both of which are computed from the in-memory summaries without touching
    the store.  Only surviving candidates pay the exact verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.aknn import AKNNSearcher
from repro.core.query import PreparedQuery
from repro.core.results import QueryStats
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance_points
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.geometry.mbr import max_dist, min_dist
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

REVERSE_METHODS: Tuple[str, ...] = ("linear", "pruned")


@dataclass
class ReverseKNNResult:
    """Answer of a reverse AKNN query."""

    object_ids: List[int]
    distances: Dict[int, float]
    k: int
    alpha: float
    method: str
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.object_ids)


class ReverseAKNNSearcher:
    """Answers reverse AKNN queries over an object store + R-tree pair."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        config: Optional[RuntimeConfig] = None,
    ):
        self.store = store
        self.tree = tree
        self.config = (config or RuntimeConfig()).validate()
        self.aknn = AKNNSearcher(store, tree, self.config)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "pruned",
        rng: Optional[np.random.Generator] = None,
    ) -> ReverseKNNResult:
        """Every object that has ``query`` among its k nearest neighbours."""
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        if method not in REVERSE_METHODS:
            raise InvalidQueryError(
                f"unknown reverse-kNN method {method!r}; expected one of {REVERSE_METHODS}"
            )
        metrics = MetricsCollector()
        before = self.store.statistics.snapshot()
        timer = Timer().start()

        candidate_ids = self._candidate_ids(query, k, alpha, method, metrics, rng)
        object_ids, distances = self._verify(query, k, alpha, candidate_ids, metrics)

        stats = QueryStats(
            object_accesses=self.store.statistics.object_accesses - before.object_accesses,
            node_accesses=metrics.get(MetricsCollector.NODE_ACCESSES),
            distance_evaluations=metrics.get(MetricsCollector.DISTANCE_EVALUATIONS),
            lower_bound_evaluations=metrics.get(MetricsCollector.LOWER_BOUND_EVALUATIONS),
            upper_bound_evaluations=metrics.get(MetricsCollector.UPPER_BOUND_EVALUATIONS),
            elapsed_seconds=timer.stop(),
            extra={"candidates": float(len(candidate_ids))},
        )
        return ReverseKNNResult(
            object_ids=sorted(object_ids),
            distances=distances,
            k=k,
            alpha=alpha,
            method=method,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Candidate filtering
    # ------------------------------------------------------------------
    def _candidate_ids(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str,
        metrics: MetricsCollector,
        rng: Optional[np.random.Generator],
    ) -> List[int]:
        all_ids = self.store.object_ids()
        if method == "linear":
            return all_ids

        # Pruned: work entirely on the in-memory summaries.  For a candidate
        # A, an upper bound on d_alpha(A, Q) is MaxDist of the approximated
        # alpha-cut MBRs; a lower bound on d_alpha(A, B) for any other B is
        # MinDist of their approximated MBRs.  If at least k other objects
        # have a lower bound to A that is smaller than A's upper bound to Q,
        # A may still be a reverse neighbour — only the opposite (k objects
        # *certainly* closer than Q can ever be) disqualifies A.
        prepared = PreparedQuery(query, alpha, self.config, rng, metrics)
        summaries = {entry.object_id: entry.summary for entry in self.tree.leaf_entries()}
        approx = {
            object_id: summary.approx_alpha_mbr(alpha)
            for object_id, summary in summaries.items()
        }
        candidates: List[int] = []
        for object_id, summary in summaries.items():
            certainly_closer = 0
            for other_id, other_mbr in approx.items():
                if other_id == object_id:
                    continue
                metrics.increment(MetricsCollector.LOWER_BOUND_EVALUATIONS)
                # MaxDist(A, B) < the lower bound of d(A, Q) would be the
                # certain disqualifier; use the conservative pair of bounds.
                if max_dist(approx[object_id], other_mbr) < min_dist(
                    approx[object_id], prepared.query_mbr
                ):
                    certainly_closer += 1
                    if certainly_closer >= k:
                        break
            if certainly_closer < k:
                candidates.append(object_id)
        return candidates

    # ------------------------------------------------------------------
    # Exact verification
    # ------------------------------------------------------------------
    def _verify(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        candidate_ids: List[int],
        metrics: MetricsCollector,
    ) -> Tuple[List[int], Dict[int, float]]:
        query_cut = query.alpha_cut(alpha)
        results: List[int] = []
        distances: Dict[int, float] = {}
        for object_id in candidate_ids:
            candidate = self.store.get(object_id)
            metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
            distance_to_query = alpha_distance_points(
                candidate.alpha_cut(alpha), query_cut, use_kdtree=self.config.use_kdtree
            )
            # Q is among the candidate's k nearest neighbours iff fewer than k
            # dataset objects (excluding the candidate itself) are strictly
            # closer to it than Q.  Ask the index for the candidate's k+1
            # nearest (the candidate itself is returned at distance zero).
            neighbours = self.aknn.search(candidate, k=k + 1, alpha=alpha, method="lb_lp_ub")
            closer = 0
            for neighbour in neighbours.neighbors:
                if neighbour.object_id == object_id:
                    continue
                exact = neighbour.distance
                if exact is None:
                    other = self.store.get(neighbour.object_id)
                    metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
                    exact = alpha_distance_points(
                        candidate.alpha_cut(alpha),
                        other.alpha_cut(alpha),
                        use_kdtree=self.config.use_kdtree,
                    )
                if exact < distance_to_query:
                    closer += 1
            if closer < k:
                results.append(object_id)
                distances[object_id] = distance_to_query
        return results, distances
