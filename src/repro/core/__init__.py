"""Core query processing: AKNN and RKNN search over fuzzy objects.

The public entry point for most users is :class:`~repro.core.database.FuzzyDatabase`,
which bundles the object store, the R-tree and the searchers behind a small
API::

    db = FuzzyDatabase.build(objects, path="./db")
    result = db.execute(AknnRequest(query, k=20, alpha=0.5))
    ranges = db.execute(SweepRequest(query, k=20, alpha_range=(0.3, 0.6)))

Lower-level pieces (individual search algorithms and their method variants)
are exposed for experimentation and benchmarking:

* :class:`~repro.core.aknn.AKNNSearcher` — Algorithms 1 and 2 with the LB,
  LP and UB optimisations of Section 3.
* :class:`~repro.core.rknn.RKNNSearcher` — the naive, basic, RSS and RSS-ICR
  strategies of Section 4.
* :class:`~repro.core.linear_scan.LinearScanSearcher` — the exact sequential
  baseline used as ground truth in tests.
"""

from repro.core.requests import (
    AknnMethod,
    AknnRequest,
    LegacyQueryAPIWarning,
    QueryEngine,
    QueryRequest,
    RangeRequest,
    ReverseMethod,
    ReverseRequest,
    SweepMethod,
    SweepRequest,
    register_planner,
)
from repro.core.results import (
    AKNNResult,
    BatchResult,
    Neighbor,
    QueryStats,
    RKNNResult,
    RangeSearchResult,
)
from repro.core.query import PreparedQuery
from repro.core.aknn import AKNNSearcher, AKNN_METHODS
from repro.core.executor import BatchQueryExecutor
from repro.core.range_search import AlphaRangeSearcher
from repro.core.rknn import RKNNSearcher, RKNN_METHODS
from repro.core.linear_scan import LinearScanSearcher
from repro.core.database import FuzzyDatabase
from repro.core.join import AlphaDistanceJoin, JoinResult, JOIN_METHODS
from repro.core.reverse_nn import ReverseAKNNSearcher, ReverseKNNResult, REVERSE_METHODS

__all__ = [
    "AknnMethod",
    "AknnRequest",
    "LegacyQueryAPIWarning",
    "QueryEngine",
    "QueryRequest",
    "RangeRequest",
    "ReverseMethod",
    "ReverseRequest",
    "SweepMethod",
    "SweepRequest",
    "register_planner",
    "AKNNResult",
    "BatchResult",
    "Neighbor",
    "QueryStats",
    "RKNNResult",
    "RangeSearchResult",
    "PreparedQuery",
    "AKNNSearcher",
    "AKNN_METHODS",
    "BatchQueryExecutor",
    "AlphaRangeSearcher",
    "RKNNSearcher",
    "RKNN_METHODS",
    "LinearScanSearcher",
    "FuzzyDatabase",
    "AlphaDistanceJoin",
    "JoinResult",
    "JOIN_METHODS",
    "ReverseAKNNSearcher",
    "ReverseKNNResult",
    "REVERSE_METHODS",
]
