"""Result and statistics types returned by the searchers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fuzzy.intervals import IntervalSet


@dataclass
class QueryStats:
    """Cost counters collected while answering one query.

    ``object_accesses`` is the paper's headline metric (Figures 11, 13, 15a);
    ``elapsed_seconds`` corresponds to the running-time figures (12, 14, 15b).
    The remaining counters expose where each optimisation saves work.
    """

    object_accesses: int = 0
    node_accesses: int = 0
    distance_evaluations: int = 0
    lower_bound_evaluations: int = 0
    upper_bound_evaluations: int = 0
    aknn_calls: int = 0
    range_calls: int = 0
    refinement_steps: int = 0
    elapsed_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another stats record into this one."""
        self.object_accesses += other.object_accesses
        self.node_accesses += other.node_accesses
        self.distance_evaluations += other.distance_evaluations
        self.lower_bound_evaluations += other.lower_bound_evaluations
        self.upper_bound_evaluations += other.upper_bound_evaluations
        self.aknn_calls += other.aknn_calls
        self.range_calls += other.range_calls
        self.refinement_steps += other.refinement_steps
        self.elapsed_seconds += other.elapsed_seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the benchmark reporting code."""
        payload = {
            "object_accesses": self.object_accesses,
            "node_accesses": self.node_accesses,
            "distance_evaluations": self.distance_evaluations,
            "lower_bound_evaluations": self.lower_bound_evaluations,
            "upper_bound_evaluations": self.upper_bound_evaluations,
            "aknn_calls": self.aknn_calls,
            "range_calls": self.range_calls,
            "refinement_steps": self.refinement_steps,
            "elapsed_seconds": self.elapsed_seconds,
        }
        payload.update(self.extra)
        return payload


@dataclass(frozen=True)
class Coverage:
    """Which shards contributed to an answer, and at which epochs.

    Attached to results by the sharded fan-out layer.  ``complete`` coverage
    means every shard answered and the result is exact; partial coverage
    means the answer is exact *restricted to the answering shards'
    partitions* — objects owned by a failed shard are simply absent.
    ``epochs`` records each answering shard's mutation counter at answer
    time and ``epoch`` the database-wide epoch, giving callers the staleness
    bound needed to decide whether a degraded answer is acceptable.
    """

    total_shards: int
    answered: Tuple[int, ...]
    failed: Tuple[int, ...] = ()
    reasons: Tuple[Tuple[int, str], ...] = ()
    epochs: Tuple[Tuple[int, int], ...] = ()
    epoch: int = 0

    @property
    def complete(self) -> bool:
        """True when every shard contributed (the answer is exact)."""
        return not self.failed and len(self.answered) == self.total_shards

    def reason_for(self, shard: int) -> Optional[str]:
        """Last failure description recorded for ``shard`` (None if it answered)."""
        for index, reason in self.reasons:
            if index == shard:
                return reason
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_shards": self.total_shards,
            "answered": list(self.answered),
            "failed": list(self.failed),
            "reasons": {index: reason for index, reason in self.reasons},
            "epochs": {index: epoch for index, epoch in self.epochs},
            "epoch": self.epoch,
            "complete": self.complete,
        }


@dataclass(frozen=True)
class Neighbor:
    """One returned nearest neighbour.

    ``distance`` is the exact alpha-distance when the searcher evaluated it;
    lazily-confirmed neighbours (accepted purely through their bounds, which
    is the point of the lazy-probe optimisation) carry the bound interval
    instead and ``distance`` is ``None``.
    """

    object_id: int
    distance: Optional[float]
    lower_bound: float
    upper_bound: float
    probed: bool

    @property
    def best_known_distance(self) -> float:
        """Exact distance when available, otherwise the upper bound."""
        return self.distance if self.distance is not None else self.upper_bound


@dataclass
class AKNNResult:
    """Answer of an ad-hoc kNN query (Definition 4)."""

    neighbors: List[Neighbor]
    k: int
    alpha: float
    method: str
    stats: QueryStats = field(default_factory=QueryStats)
    coverage: Optional[Coverage] = None

    @property
    def object_ids(self) -> List[int]:
        """Ids of the returned neighbours (order insensitive per the paper)."""
        return [n.object_id for n in self.neighbors]

    def sorted_by_distance(self) -> List[Neighbor]:
        """Neighbours ordered by their best known distance."""
        return sorted(self.neighbors, key=lambda n: (n.best_known_distance, n.object_id))

    def __len__(self) -> int:
        return len(self.neighbors)


@dataclass
class BatchResult:
    """Answer of a batched AKNN call (one :class:`AKNNResult` per query).

    ``stats`` aggregates the whole batch: node accesses count *shared* visits
    (each R-tree node is expanded at most once per batch), ``object_accesses``
    counts unique objects fetched, and ``stats.extra`` carries the executor's
    throughput and cache telemetry.
    """

    results: List[AKNNResult]
    k: int
    alpha: float
    method: str
    stats: QueryStats = field(default_factory=QueryStats)
    coverage: Optional[Coverage] = None

    @property
    def throughput_qps(self) -> float:
        """Queries answered per second of wall-clock batch time."""
        if self.stats.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.stats.elapsed_seconds

    def object_id_sets(self) -> List[List[int]]:
        """Per-query neighbour id lists (order insensitive per the paper)."""
        return [result.object_ids for result in self.results]

    def __len__(self) -> int:
        return len(self.results)


@dataclass
class RangeSearchResult:
    """Answer of a range-at-alpha search (all objects within ``radius``)."""

    matches: List[Tuple[int, float]]
    radius: float
    alpha: float
    stats: QueryStats = field(default_factory=QueryStats)
    coverage: Optional[Coverage] = None

    @property
    def object_ids(self) -> List[int]:
        """Ids of the matching objects."""
        return [object_id for object_id, _ in self.matches]

    def __len__(self) -> int:
        return len(self.matches)


@dataclass
class RKNNResult:
    """Answer of a range kNN query (Definition 5).

    ``assignments`` maps each qualifying object id to the union of probability
    thresholds at which it belongs to the k nearest neighbours.
    """

    assignments: Dict[int, IntervalSet]
    k: int
    alpha_range: Tuple[float, float]
    method: str
    stats: QueryStats = field(default_factory=QueryStats)
    coverage: Optional[Coverage] = None

    @property
    def object_ids(self) -> List[int]:
        """Ids of every object that qualifies somewhere in the range."""
        return sorted(self.assignments.keys())

    def qualifying_at(self, alpha: float) -> List[int]:
        """Objects whose qualifying range covers ``alpha``."""
        return sorted(
            object_id
            for object_id, ranges in self.assignments.items()
            if ranges.contains(alpha)
        )

    def __len__(self) -> int:
        return len(self.assignments)
