"""Range kNN (RKNN) query processing — Section 4 of the paper.

An RKNN query (Definition 5) asks for every object that is a k nearest
neighbour at *some* probability threshold inside ``[alpha_start, alpha_end]``,
together with its qualifying range.  Four method variants are provided,
matching Section 4 and the competitors of Figures 13 and 14:

``naive``
    Issue one AKNN query at every distinct membership value of the dataset
    that falls inside the probability range (the paper's strawman; its cost
    is prohibitive for anything but toy datasets).

``basic``
    Algorithm 3: sweep the range with repeated AKNN queries, jumping from one
    critical probability (Definition 7) to the next using Lemma 2, so only a
    small fraction of the membership values is visited.

``rss``
    Algorithm 4 (Reducing Search Space, Lemma 3): one AKNN query at
    ``alpha_end`` fixes a radius; one range search at ``alpha_start`` collects
    the complete candidate set; the sweep of Algorithm 3 then runs entirely
    in memory over the candidates.

``rss_icr``
    Algorithm 5 (Improved Candidate Refinement, Lemma 4): same candidate set
    as ``rss``, but each confirmed neighbour is granted a *safe range* that
    extends as long as its distance stays below the (k+1)-th neighbour
    distance, so far fewer critical probabilities have to be checked.

All variants return the same qualifying ranges as the exhaustive
:class:`~repro.core.linear_scan.LinearScanSearcher` (asserted by the test
suite); they differ in the number of object accesses and refinement steps.

Interval convention: the elementary piece ``(a, b]`` of the piecewise-constant
distance functions is reported as the closed interval ``[a, b]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import RKNN_EPSILON, RuntimeConfig
from repro.core.aknn import AKNNSearcher
from repro.core.linear_scan import rank_objects
from repro.core.query import PreparedQuery
from repro.core.range_search import AlphaRangeSearcher
from repro.core.results import QueryStats, RKNNResult
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import (
    DistanceProfileStore,
    alpha_distance,
    distance_profile,
)
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.intervals import IntervalSet
from repro.fuzzy.profile import DistanceProfile
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

RKNN_METHODS: Tuple[str, ...] = ("naive", "basic", "rss", "rss_icr")

# Numerical slack when comparing probability thresholds.
_ALPHA_TOL = 1e-12


class RKNNSearcher:
    """Answers RKNN queries over an object store + R-tree pair.

    Parameters
    ----------
    store:
        Object store holding the full point sets.
    tree:
        R-tree over the corresponding summaries.
    config:
        Runtime knobs shared with the underlying AKNN / range searchers.
    """

    def __init__(
        self,
        store: ObjectStore,
        tree,
        config: Optional[RuntimeConfig] = None,
        profile_store: Optional[DistanceProfileStore] = None,
    ):
        self.store = store
        self.tree = tree
        self.config = (config or RuntimeConfig()).validate()
        self.aknn_searcher = AKNNSearcher(store, tree, self.config)
        self.range_searcher = AlphaRangeSearcher(store, tree, self.config)
        # The database shares one store between this sweep searcher and the
        # reverse engine, so overlapping d_alpha(A, Q) work is paid once.
        # (Explicit None check: an empty store is falsy via __len__.)
        if profile_store is None:
            profile_store = DistanceProfileStore(self.config.profile_cache_capacity)
        self.profile_store = profile_store

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        query: FuzzyObject,
        k: int,
        alpha_range: Tuple[float, float],
        method: str = "rss_icr",
        aknn_method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> RKNNResult:
        """Return every object qualifying somewhere in ``alpha_range``."""
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if method not in RKNN_METHODS:
            raise InvalidQueryError(
                f"unknown RKNN method {method!r}; expected one of {RKNN_METHODS}"
            )
        alpha_start, alpha_end = self._validate_range(alpha_range)
        stats = QueryStats()
        before = self.store.statistics.snapshot()
        profile_hits_before = self.profile_store.hits
        profile_misses_before = self.profile_store.misses
        timer = Timer().start()

        if method == "naive":
            assignments = self._search_naive(
                query, k, alpha_start, alpha_end, aknn_method, rng, stats
            )
        elif method == "basic":
            assignments = self._search_basic(
                query, k, alpha_start, alpha_end, aknn_method, rng, stats
            )
        else:
            assignments = self._search_rss(
                query,
                k,
                alpha_start,
                alpha_end,
                aknn_method,
                rng,
                stats,
                improved_refinement=(method == "rss_icr"),
            )

        stats.elapsed_seconds = timer.stop()
        stats.object_accesses = (
            self.store.statistics.object_accesses - before.object_accesses
        )
        stats.extra["profile_cache_hits"] = float(
            self.profile_store.hits - profile_hits_before
        )
        stats.extra["profile_cache_misses"] = float(
            self.profile_store.misses - profile_misses_before
        )
        return RKNNResult(
            assignments=assignments,
            k=k,
            alpha_range=(alpha_start, alpha_end),
            method=method,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Naive: one AKNN query per dataset membership level in the range
    # ------------------------------------------------------------------
    def _search_naive(
        self,
        query: FuzzyObject,
        k: int,
        alpha_start: float,
        alpha_end: float,
        aknn_method: str,
        rng: Optional[np.random.Generator],
        stats: QueryStats,
    ) -> Dict[int, IntervalSet]:
        boundaries = self._dataset_levels_in_range(alpha_start, alpha_end)
        assignments: Dict[int, IntervalSet] = {}
        piece_start = alpha_start
        for boundary in boundaries:
            result = self.aknn_searcher.search(
                query, k, min(boundary, 1.0), method=aknn_method, rng=rng
            )
            self._merge_substats(stats, result.stats)
            for object_id in result.object_ids:
                assignments.setdefault(object_id, IntervalSet()).add_range(
                    piece_start, boundary
                )
            stats.refinement_steps += 1
            piece_start = boundary
        return assignments

    def _dataset_levels_in_range(self, alpha_start: float, alpha_end: float) -> List[float]:
        """``U_D`` restricted to the query range (right endpoints of all pieces).

        The naive method needs the universe of membership values, which can
        only be learned by reading every object — exactly why the paper calls
        its cost prohibitive.  The closed left endpoint of the range is
        evaluated as its own degenerate piece (see
        :func:`repro.core.linear_scan.evaluate_piecewise`).
        """
        levels: set = set()
        for object_id in self.store.object_ids():
            obj = self.store.get(object_id)
            for level in obj.distinct_memberships():
                if alpha_start < level < alpha_end:
                    levels.add(float(level))
        boundaries = [alpha_start]
        boundaries.extend(sorted(levels))
        boundaries.append(alpha_end)
        return boundaries

    # ------------------------------------------------------------------
    # Basic: Algorithm 3 (critical-probability sweep with repeated AKNN)
    # ------------------------------------------------------------------
    def _search_basic(
        self,
        query: FuzzyObject,
        k: int,
        alpha_start: float,
        alpha_end: float,
        aknn_method: str,
        rng: Optional[np.random.Generator],
        stats: QueryStats,
    ) -> Dict[int, IntervalSet]:
        assignments: Dict[int, IntervalSet] = {}
        profile_cache: Dict[int, DistanceProfile] = {}
        piece_start = alpha_start
        evaluation_point = alpha_start

        while True:
            result = self.aknn_searcher.search(
                query, k, min(evaluation_point, 1.0), method=aknn_method, rng=rng
            )
            self._merge_substats(stats, result.stats)
            nn_ids = result.object_ids
            if not nn_ids:
                break
            ends = []
            for object_id in nn_ids:
                profile = self._profile_for(object_id, query, alpha_end, profile_cache)
                ends.append(profile.next_critical(min(evaluation_point, 1.0)))
            alpha_star = min(ends)
            piece_end = min(alpha_star, alpha_end)
            for object_id in nn_ids:
                assignments.setdefault(object_id, IntervalSet()).add_range(
                    piece_start, piece_end
                )
            stats.refinement_steps += 1
            if alpha_star >= alpha_end - _ALPHA_TOL:
                break
            piece_start = alpha_star
            evaluation_point = alpha_star + RKNN_EPSILON
        return assignments

    def _profile_for(
        self,
        object_id: int,
        query: FuzzyObject,
        alpha_end: float,
        cache: Dict[int, DistanceProfile],
    ) -> DistanceProfile:
        """Distance profile of one object, probing the store at most once.

        Consults the searcher-level :class:`DistanceProfileStore` first, so a
        hit skips the object probe entirely (and repeated calls with the same
        query instance reuse profiles across sweeps).
        """
        if object_id not in cache:
            profile = self.profile_store.lookup(query, object_id, alpha_end)
            if profile is None:
                obj = self.store.get(object_id)
                profile = distance_profile(
                    obj, query, use_kdtree=self.config.use_kdtree, max_level=alpha_end
                )
                self.profile_store.insert(query, object_id, profile, alpha_end)
            cache[object_id] = profile
        return cache[object_id]

    # ------------------------------------------------------------------
    # RSS / RSS-ICR: Algorithms 4 and 5
    # ------------------------------------------------------------------
    def _search_rss(
        self,
        query: FuzzyObject,
        k: int,
        alpha_start: float,
        alpha_end: float,
        aknn_method: str,
        rng: Optional[np.random.Generator],
        stats: QueryStats,
        improved_refinement: bool,
    ) -> Dict[int, IntervalSet]:
        profiles = self._collect_candidates(
            query, k, alpha_start, alpha_end, aknn_method, rng, stats
        )
        if not profiles:
            return {}
        if improved_refinement:
            return refine_candidates_icr(profiles, k, alpha_start, alpha_end, stats)
        return refine_candidates_basic(profiles, k, alpha_start, alpha_end, stats)

    def _collect_candidates(
        self,
        query: FuzzyObject,
        k: int,
        alpha_start: float,
        alpha_end: float,
        aknn_method: str,
        rng: Optional[np.random.Generator],
        stats: QueryStats,
    ) -> Dict[int, DistanceProfile]:
        """Lemma 3 pruning: one AKNN at the range end, one range search at the start."""
        result_end = self.aknn_searcher.search(
            query, k, alpha_end, method=aknn_method, rng=rng
        )
        self._merge_substats(stats, result_end.stats)
        radius = self._exact_kth_distance(result_end.neighbors, query, alpha_end)

        metrics = MetricsCollector()
        prepared = PreparedQuery(query, alpha_start, self.config, rng, metrics)
        matches, objects = self.range_searcher.collect(prepared, radius)
        stats.range_calls += 1
        stats.node_accesses += metrics.get(MetricsCollector.NODE_ACCESSES)
        stats.distance_evaluations += metrics.get(MetricsCollector.DISTANCE_EVALUATIONS)
        stats.lower_bound_evaluations += metrics.get(
            MetricsCollector.LOWER_BOUND_EVALUATIONS
        )
        stats.extra["candidates"] = stats.extra.get("candidates", 0.0) + len(matches)

        profiles: Dict[int, DistanceProfile] = {}
        for object_id, _ in matches:
            profile = self.profile_store.lookup(query, object_id, alpha_end)
            if profile is None:
                profile = distance_profile(
                    objects[object_id],
                    query,
                    use_kdtree=self.config.use_kdtree,
                    max_level=alpha_end,
                )
                self.profile_store.insert(query, object_id, profile, alpha_end)
            profiles[object_id] = profile
        return profiles

    def _exact_kth_distance(
        self, neighbors, query: FuzzyObject, alpha: float
    ) -> float:
        """Exact k-th neighbour distance, probing lazily-confirmed neighbours."""
        radius = 0.0
        for neighbor in neighbors:
            if neighbor.distance is not None:
                distance = neighbor.distance
            else:
                obj = self.store.get(neighbor.object_id)
                distance = alpha_distance(
                    obj, query, alpha, use_kdtree=self.config.use_kdtree
                )
            radius = max(radius, distance)
        return radius

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_substats(stats: QueryStats, sub: QueryStats) -> None:
        """Accumulate a sub-query's counters, except object accesses.

        Object accesses are charged once for the whole RKNN call from the
        store's own counter, so they must not be double counted here.
        """
        stats.node_accesses += sub.node_accesses
        stats.distance_evaluations += sub.distance_evaluations
        stats.lower_bound_evaluations += sub.lower_bound_evaluations
        stats.upper_bound_evaluations += sub.upper_bound_evaluations
        stats.aknn_calls += sub.aknn_calls
        stats.range_calls += sub.range_calls

    @staticmethod
    def _validate_range(alpha_range: Tuple[float, float]) -> Tuple[float, float]:
        alpha_start, alpha_end = float(alpha_range[0]), float(alpha_range[1])
        if not 0.0 < alpha_start <= 1.0 or not 0.0 < alpha_end <= 1.0:
            raise InvalidQueryError(
                f"alpha range endpoints must be in (0, 1], got {alpha_range}"
            )
        if alpha_end < alpha_start:
            raise InvalidQueryError(
                f"alpha range start {alpha_start} exceeds end {alpha_end}"
            )
        return alpha_start, alpha_end


# ----------------------------------------------------------------------
# In-memory candidate refinement (shared by RSS and RSS-ICR)
# ----------------------------------------------------------------------
def refine_candidates_basic(
    profiles: Dict[int, DistanceProfile],
    k: int,
    alpha_start: float,
    alpha_end: float,
    stats: Optional[QueryStats] = None,
) -> Dict[int, IntervalSet]:
    """Algorithm 3's sweep evaluated entirely over in-memory candidates.

    At each step the current k nearest candidates are granted the interval up
    to the smallest critical probability among them (Lemma 2), and the sweep
    jumps to the next membership level beyond it.
    """
    assignments: Dict[int, IntervalSet] = {}
    combined_levels = _combined_levels(profiles)
    piece_start = alpha_start
    evaluation_point = alpha_start

    while True:
        distances = {
            object_id: profile.value(min(evaluation_point, 1.0))
            for object_id, profile in profiles.items()
        }
        top, _, _ = rank_objects(distances, k)
        if not top:
            break
        ends = [
            profiles[object_id].next_critical(min(evaluation_point, 1.0))
            for object_id in top
        ]
        alpha_star = min(ends)
        piece_end = min(alpha_star, alpha_end)
        for object_id in top:
            assignments.setdefault(object_id, IntervalSet()).add_range(
                piece_start, piece_end
            )
        if stats is not None:
            stats.refinement_steps += 1
        if alpha_star >= alpha_end - _ALPHA_TOL:
            break
        piece_start = alpha_star
        evaluation_point = _next_evaluation_point(combined_levels, alpha_star, alpha_end)
    return assignments


def refine_candidates_icr(
    profiles: Dict[int, DistanceProfile],
    k: int,
    alpha_start: float,
    alpha_end: float,
    stats: Optional[QueryStats] = None,
) -> Dict[int, IntervalSet]:
    """Algorithm 5: improved candidate refinement using Lemma 4 safe ranges.

    Each confirmed neighbour ``A`` is granted an interval extending to the
    largest membership level at which its distance is still strictly below
    the (k+1)-th neighbour distance of the current step — usually much larger
    than the Lemma 2 step, so far fewer critical probabilities are visited.
    """
    assignments: Dict[int, IntervalSet] = {}
    combined_levels = _combined_levels(profiles)
    piece_start = alpha_start
    evaluation_point = alpha_start

    while True:
        distances = {
            object_id: profile.value(min(evaluation_point, 1.0))
            for object_id, profile in profiles.items()
        }
        top, _, d_k_plus_1 = rank_objects(distances, k)
        if not top:
            break
        safe_ends = []
        for object_id in top:
            profile = profiles[object_id]
            if not math.isfinite(d_k_plus_1):
                # Fewer than k+1 candidates: everything stays a neighbour.
                beta = alpha_end
            else:
                beta = profile.max_level_with_distance_below(
                    d_k_plus_1, min(evaluation_point, 1.0)
                )
                if beta is None:
                    # Distance ties the (k+1)-th: only the current piece is
                    # certain, which is exactly what Lemma 2 already grants.
                    beta = _current_piece_end(combined_levels, evaluation_point, alpha_end)
            beta = min(beta, alpha_end)
            beta = max(beta, min(evaluation_point, alpha_end))
            safe_ends.append(beta)
            assignments.setdefault(object_id, IntervalSet()).add_range(piece_start, beta)
        if stats is not None:
            stats.refinement_steps += 1
        barrier = min(safe_ends)
        if barrier >= alpha_end - _ALPHA_TOL:
            break
        piece_start = barrier
        evaluation_point = _next_evaluation_point(combined_levels, barrier, alpha_end)
    return assignments


def _combined_levels(profiles: Dict[int, DistanceProfile]) -> np.ndarray:
    """Sorted union of the membership levels of all candidate profiles."""
    if not profiles:
        return np.asarray([], dtype=float)
    return np.unique(np.concatenate([p.levels for p in profiles.values()]))


def _next_evaluation_point(
    combined_levels: np.ndarray, barrier: float, alpha_end: float
) -> float:
    """First membership level strictly above ``barrier`` (clamped at the range end)."""
    idx = int(np.searchsorted(combined_levels, barrier + _ALPHA_TOL, side="left"))
    if idx >= combined_levels.size:
        return alpha_end
    return min(float(combined_levels[idx]), alpha_end)


def _current_piece_end(
    combined_levels: np.ndarray, evaluation_point: float, alpha_end: float
) -> float:
    """Right endpoint of the elementary piece containing ``evaluation_point``."""
    idx = int(np.searchsorted(combined_levels, evaluation_point - _ALPHA_TOL, side="left"))
    if idx >= combined_levels.size:
        return alpha_end
    return min(float(combined_levels[idx]), alpha_end)
