"""One query surface: typed requests, the ``QueryEngine`` protocol, and plans.

Every query the system answers is described by one frozen request dataclass —
:class:`AknnRequest`, :class:`RangeRequest`, :class:`SweepRequest` (the
paper's alpha-range kNN) and :class:`ReverseRequest` — carrying its full
parameterisation: the query fuzzy object, ``k`` / ``radius`` / ``alpha``, and
a method *enum* instead of a magic string.  Engines expose exactly two entry
points (:class:`QueryEngine`)::

    from repro import AknnRequest, RangeRequest, ReverseRequest

    result = db.execute(AknnRequest(query, k=20, alpha=0.5))
    results = db.execute_batch([
        AknnRequest(q1, k=20, alpha=0.5),
        AknnRequest(q2, k=20, alpha=0.5),      # same bucket: shares a traversal
        ReverseRequest(q3, k=8, alpha=0.5),
        RangeRequest(q4, alpha=0.5, radius=3.0),
    ])

A batch may mix request types freely.  :func:`execute_plan` — the shared
``execute_batch`` implementation behind :class:`~repro.core.database.FuzzyDatabase`,
:class:`~repro.service.sharded.ShardedDatabase` and
:class:`~repro.service.query_service.QueryService` — groups the submission
into per-type, per-:meth:`~QueryRequest.bucket_key` sub-batches, hands each
group to the planner registered for its request type, and scatters the
results back into submission order.  Requests sharing a bucket key are
answered through the corresponding shared engine (one R-tree traversal for an
AKNN bucket, one filter matrix + one verification traversal for a reverse
bucket); the same keys drive the query service's coalescer, so a request
type defined once coalesces correctly at every layer.

A future query family plugs in at one place: define the request dataclass
(with ``bucket_key``) and call :func:`register_planner` with a callable
``(engine, requests, rng) -> results``; every engine's ``execute`` /
``execute_batch`` and the service coalescer pick it up without edits.

The old per-type methods (``db.aknn(...)``, ``service.submit(...)``, ...)
remain as thin deprecated shims delegating to this surface; they warn with
:class:`LegacyQueryAPIWarning` (a :class:`DeprecationWarning`), which CI
escalates to an error for in-repo callers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

import numpy as np

from repro.exceptions import DeadlineExceededError, InvalidQueryError
from repro.fuzzy.fuzzy_object import FuzzyObject


class LegacyQueryAPIWarning(DeprecationWarning):
    """Warned by the deprecated per-type query methods.

    A subclass of :class:`DeprecationWarning` so generic tooling treats it as
    a deprecation, while exactly this category can be escalated to an error
    without tripping over third-party deprecations.  Escalate it
    programmatically — ``warnings.simplefilter("error",
    LegacyQueryAPIWarning)``, as ``scripts/deprecation_smoke.py`` does in CI
    — because ``PYTHONWARNINGS`` / ``-W`` resolve custom categories during
    early interpreter startup, before this package is importable.
    """


def warn_legacy(old: str, new: str) -> None:
    """Emit the deprecation warning for one legacy entry point."""
    warnings.warn(
        f"{old} is deprecated; use {new} on the unified request surface instead",
        LegacyQueryAPIWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# Method enums (no more stringly-typed ``method=`` kwargs)
# ----------------------------------------------------------------------
class AknnMethod(str, Enum):
    """AKNN search variants (Section 3): each adds one optimisation."""

    BASIC = "basic"
    LB = "lb"
    LB_LP = "lb_lp"
    LB_LP_UB = "lb_lp_ub"


class SweepMethod(str, Enum):
    """Alpha-range kNN sweep variants (Section 4, Algorithms 3-5)."""

    NAIVE = "naive"
    BASIC = "basic"
    RSS = "rss"
    RSS_ICR = "rss_icr"


class ReverseMethod(str, Enum):
    """Reverse AKNN strategies (:mod:`repro.core.reverse_nn`)."""

    LINEAR = "linear"
    PRUNED = "pruned"
    BATCH = "batch"


def _coerce_enum(enum_cls: Type[Enum], value: Any, what: str) -> Enum:
    """Accept either the enum member or its string value."""
    if isinstance(value, enum_cls):
        return value
    try:
        return enum_cls(str(value))
    except ValueError:
        options = tuple(member.value for member in enum_cls)
        raise InvalidQueryError(
            f"unknown {what} {value!r}; expected one of {options}"
        ) from None


# ----------------------------------------------------------------------
# Request dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """Base of every typed query request.

    Frozen: a request is an immutable value that can be hashed into the
    coalescer's bucket table, retried, or logged without defensive copies.
    Subclasses normalise their parameters in ``__post_init__`` (ints, floats,
    enums) so :meth:`bucket_key` is stable across spellings — ``k=20`` and
    ``k=np.int64(20)`` land in the same bucket.

    Every request additionally carries its failure-semantics envelope
    (keyword-only, never part of the bucket key):

    * ``deadline_ms`` — total time budget from submission.  An expired
      request fails with :class:`~repro.exceptions.DeadlineExceededError`
      instead of occupying a traversal; ``None`` means unbounded.
    * ``require_full`` — opt back into fail-closed execution.  By default a
      query against a sharded engine degrades to a partial answer (with a
      :class:`~repro.core.results.Coverage` descriptor) when shards are
      down; with ``require_full=True`` it raises
      :class:`~repro.exceptions.ShardUnavailableError` instead.
    """

    query: FuzzyObject
    deadline_ms: Optional[float] = field(default=None, kw_only=True)
    require_full: bool = field(default=False, kw_only=True)

    def __post_init__(self) -> None:
        self._validate_envelope()

    def _validate_envelope(self) -> None:
        if self.deadline_ms is not None:
            object.__setattr__(self, "deadline_ms", float(self.deadline_ms))
            if self.deadline_ms <= 0.0:
                raise InvalidQueryError(
                    f"deadline_ms must be positive, got {self.deadline_ms}"
                )
        object.__setattr__(self, "require_full", bool(self.require_full))

    def bucket_key(self) -> Tuple:
        """Hashable key grouping requests that may share one execution.

        Requests with equal keys are answered together by the planner (one
        shared traversal where the engine supports it) and coalesce into the
        same service bucket.  The key never includes the query object itself
        — only the parameters execution sharing depends on.  Deadlines and
        ``require_full`` are deliberately excluded: they shape failure
        handling per request, not the shared execution.
        """
        raise NotImplementedError

    def _validate_alpha(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")

    def _validate_k(self, k: int) -> None:
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")


@dataclass(frozen=True)
class AknnRequest(QueryRequest):
    """Ad-hoc kNN query (Definition 4) at one probability threshold."""

    k: int = 1
    alpha: float = 0.5
    method: AknnMethod = AknnMethod.LB_LP_UB

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "alpha", float(self.alpha))
        object.__setattr__(
            self, "method", _coerce_enum(AknnMethod, self.method, "AKNN method")
        )
        self._validate_k(self.k)
        self._validate_alpha(self.alpha)
        self._validate_envelope()

    def bucket_key(self) -> Tuple:
        return ("aknn", self.k, self.alpha, self.method.value)


@dataclass(frozen=True)
class RangeRequest(QueryRequest):
    """All objects within ``radius`` of the query at threshold ``alpha``."""

    alpha: float = 0.5
    radius: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "alpha", float(self.alpha))
        object.__setattr__(self, "radius", float(self.radius))
        self._validate_alpha(self.alpha)
        if not np.isfinite(self.radius) or self.radius < 0.0:
            raise InvalidQueryError(
                f"radius must be finite and non-negative, got {self.radius}"
            )
        self._validate_envelope()

    def bucket_key(self) -> Tuple:
        return ("range", self.alpha, self.radius)


@dataclass(frozen=True)
class SweepRequest(QueryRequest):
    """The paper's alpha-range kNN query (Definition 5): sweep a threshold
    interval and report, per qualifying object, its qualifying sub-ranges."""

    k: int = 1
    alpha_range: Tuple[float, float] = (0.4, 0.6)
    method: SweepMethod = SweepMethod.RSS_ICR
    aknn_method: AknnMethod = AknnMethod.LB_LP_UB

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", int(self.k))
        start, end = (float(self.alpha_range[0]), float(self.alpha_range[1]))
        object.__setattr__(self, "alpha_range", (start, end))
        object.__setattr__(
            self, "method", _coerce_enum(SweepMethod, self.method, "sweep method")
        )
        object.__setattr__(
            self,
            "aknn_method",
            _coerce_enum(AknnMethod, self.aknn_method, "AKNN method"),
        )
        self._validate_k(self.k)
        if not 0.0 < start <= 1.0 or not 0.0 < end <= 1.0:
            raise InvalidQueryError(
                f"alpha range endpoints must be in (0, 1], got {self.alpha_range}"
            )
        if end < start:
            raise InvalidQueryError(
                f"alpha range start {start} exceeds end {end}"
            )
        self._validate_envelope()

    def bucket_key(self) -> Tuple:
        return (
            "sweep",
            self.k,
            self.alpha_range[0],
            self.alpha_range[1],
            self.method.value,
            self.aknn_method.value,
        )


@dataclass(frozen=True)
class ReverseRequest(QueryRequest):
    """Reverse AKNN: objects counting the query among their own k nearest."""

    k: int = 1
    alpha: float = 0.5
    method: ReverseMethod = ReverseMethod.BATCH

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "alpha", float(self.alpha))
        object.__setattr__(
            self, "method", _coerce_enum(ReverseMethod, self.method, "reverse method")
        )
        self._validate_k(self.k)
        self._validate_alpha(self.alpha)
        self._validate_envelope()

    def bucket_key(self) -> Tuple:
        return ("reverse", self.k, self.alpha, self.method.value)


# ----------------------------------------------------------------------
# The engine protocol
# ----------------------------------------------------------------------
@runtime_checkable
class QueryEngine(Protocol):
    """What every query-answering layer exposes: two entry points.

    ``execute`` answers one request; ``execute_batch`` answers a submission
    that may freely mix request types, grouped internally into per-type,
    per-bucket sub-batches.  Results come back in submission order, one per
    request, with the same result types the per-type methods used to return
    (:class:`~repro.core.results.AKNNResult`,
    :class:`~repro.core.results.RangeSearchResult`,
    :class:`~repro.core.results.RKNNResult`,
    :class:`~repro.core.reverse_nn.ReverseKNNResult`).
    """

    def execute(
        self,
        request: QueryRequest,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> Any:
        ...

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Any]:
        ...


# ----------------------------------------------------------------------
# Planner registry: request type -> bucket planner
# ----------------------------------------------------------------------
#: A planner answers one homogeneous bucket (equal ``bucket_key()``) against
#: one engine and returns one result per request, in bucket order.  Planners
#: may accept an optional ``deadline`` keyword (a
#: :class:`~repro.service.policy.Deadline` or ``None``); three-parameter
#: planners are adapted at registration time, so pre-deadline planners keep
#: working unchanged.
Planner = Callable[..., List[Any]]

_PLANNERS: Dict[Type[QueryRequest], Planner] = {}


def _adapt_planner(planner: Planner) -> Planner:
    """Wrap planners that do not take a ``deadline`` keyword.

    The registry's calling convention is ``planner(engine, bucket, rng,
    deadline=...)``; a legacy ``(engine, bucket, rng)`` callable is wrapped to
    drop the deadline (its bucket simply runs unbounded).
    """
    import inspect

    try:
        signature = inspect.signature(planner)
    except (TypeError, ValueError):
        return planner
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return planner
        if parameter.name == "deadline":
            return planner

    def _without_deadline(engine, bucket, rng, deadline=None, _planner=planner):
        return _planner(engine, bucket, rng)

    return _without_deadline


def register_planner(request_type: Type[QueryRequest], planner: Planner) -> None:
    """Register (or replace) the planner for one request type.

    This is the single extension point for new query families: engines never
    switch on request types themselves — they look the planner up here.
    """
    _PLANNERS[request_type] = _adapt_planner(planner)


def planner_for(request_type: Type[QueryRequest]) -> Planner:
    """The registered planner for ``request_type`` (exact type match)."""
    planner = _PLANNERS.get(request_type)
    if planner is None:
        raise InvalidQueryError(
            f"no planner registered for request type {request_type.__name__}; "
            f"known types: {sorted(t.__name__ for t in _PLANNERS)}"
        )
    return planner


def registered_request_types() -> List[Type[QueryRequest]]:
    """Every request type with a registered planner (introspection/tests)."""
    return list(_PLANNERS)


def group_requests(
    requests: Sequence[QueryRequest],
) -> List[Tuple[Type[QueryRequest], Tuple, List[int]]]:
    """Stable per-type, per-bucket grouping of a mixed submission.

    Returns ``(request type, bucket key, original indices)`` triples in
    first-seen order; within a group the indices preserve submission order,
    which planners rely on when distributing shared-batch results.
    """
    groups: Dict[Tuple[Type[QueryRequest], Tuple], List[int]] = {}
    for index, request in enumerate(requests):
        if not isinstance(request, QueryRequest):
            raise InvalidQueryError(
                f"expected a QueryRequest, got {type(request).__name__}"
            )
        groups.setdefault((type(request), request.bucket_key()), []).append(index)
    return [(rtype, key, indices) for (rtype, key), indices in groups.items()]


def request_deadlines(requests: Sequence[QueryRequest]) -> List[Optional[Any]]:
    """Materialise each request's ``deadline_ms`` budget as an absolute
    :class:`~repro.service.policy.Deadline`, counting from *now*.

    Called at submission time (service admission, or entry into
    ``execute_batch`` for direct engine calls) so the budget covers queue
    wait as well as execution.
    """
    from repro.service.policy import Deadline

    return [
        None if request.deadline_ms is None else Deadline.after_ms(request.deadline_ms)
        for request in requests
    ]


def execute_plan(
    engine: Any,
    requests: Sequence[QueryRequest],
    rng: Optional[np.random.Generator] = None,
    deadlines: Optional[Sequence[Optional[Any]]] = None,
    on_error: str = "raise",
) -> List[Any]:
    """The shared ``execute_batch`` implementation.

    Groups the submission with :func:`group_requests`, runs the registered
    planner per group, and scatters the per-group answers back into
    submission order.  When the engine carries a ``metrics`` collector, the
    plan shape is recorded under the ``plan_groups`` / ``plan_requests``
    counters — the observable evidence that requests sharing a bucket key
    were answered by one shared sub-batch.

    ``deadlines`` is an optional parallel sequence of absolute
    :class:`~repro.service.policy.Deadline` objects (``None`` entries =
    unbounded); when omitted it is derived from each request's
    ``deadline_ms`` counting from now.  Members already expired are answered
    with :class:`~repro.exceptions.DeadlineExceededError` without running;
    each group's shared execution is bounded by its *latest* member deadline
    (the point past which nobody in the bucket wants the answer), and
    planners receive it as the ``deadline`` keyword.

    A result slot may come back as an :class:`Exception` instance (deadline
    expiry, or a failed shard under ``require_full``).  With
    ``on_error="raise"`` (the default — direct engine calls) the first such
    slot is raised; with ``on_error="return"`` (the query service, which
    routes each slot to its own future) exception slots are returned in
    place.
    """
    requests = list(requests)
    if not requests:
        return []
    if on_error not in ("raise", "return"):
        raise InvalidQueryError(
            f"on_error must be 'raise' or 'return', got {on_error!r}"
        )
    grouped = group_requests(requests)
    if deadlines is None:
        deadlines = request_deadlines(requests)
    else:
        deadlines = list(deadlines)
        if len(deadlines) != len(requests):
            raise InvalidQueryError(
                f"got {len(deadlines)} deadlines for {len(requests)} requests"
            )
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        from repro.metrics.counters import MetricsCollector

        metrics.increment(MetricsCollector.PLAN_GROUPS, len(grouped))
        metrics.increment(MetricsCollector.PLAN_REQUESTS, len(requests))
    results: List[Any] = [None] * len(requests)
    for request_type, _key, indices in grouped:
        planner = planner_for(request_type)
        live: List[int] = []
        for index in indices:
            deadline = deadlines[index]
            if deadline is not None and deadline.expired():
                results[index] = DeadlineExceededError(
                    f"{request_type.__name__} expired before execution"
                )
                if metrics is not None:
                    from repro.metrics.counters import MetricsCollector

                    metrics.increment(MetricsCollector.DEADLINE_EXPIRED)
            else:
                live.append(index)
        if not live:
            continue
        # The shared execution is aborted only once *every* member is past
        # its expiry: the latest member deadline (unbounded if any member
        # carries none).  Individual members are re-checked on scatter.
        member_deadlines = [deadlines[i] for i in live]
        if any(d is None for d in member_deadlines):
            bucket_deadline = None
        else:
            bucket_deadline = max(member_deadlines, key=lambda d: d.expires_at)
        bucket = [requests[i] for i in live]
        try:
            answers = planner(engine, bucket, rng, deadline=bucket_deadline)
        except DeadlineExceededError as error:
            answers = [error] * len(bucket)
            if metrics is not None:
                from repro.metrics.counters import MetricsCollector

                metrics.increment(MetricsCollector.DEADLINE_EXPIRED, len(bucket))
        if len(answers) != len(bucket):
            raise InvalidQueryError(
                f"planner for {request_type.__name__} returned {len(answers)} "
                f"results for {len(bucket)} requests"
            )
        for index, answer in zip(live, answers):
            deadline = deadlines[index]
            if (
                not isinstance(answer, Exception)
                and deadline is not None
                and deadline.expired()
            ):
                answer = DeadlineExceededError(
                    f"{request_type.__name__} expired during execution"
                )
                if metrics is not None:
                    from repro.metrics.counters import MetricsCollector

                    metrics.increment(MetricsCollector.DEADLINE_EXPIRED)
            results[index] = answer
    if on_error == "raise":
        for answer in results:
            if isinstance(answer, Exception):
                raise answer
    return results


# ----------------------------------------------------------------------
# Built-in planners
# ----------------------------------------------------------------------
# Each delegates to a per-engine bucket hook; the hooks are the narrow
# capability surface FuzzyDatabase and ShardedDatabase implement (the query
# service implements QueryEngine by coalescing into buckets and flushing each
# through its database's execute_batch, so it never reaches these directly).
def _plan_aknn(
    engine: Any,
    bucket: Sequence[AknnRequest],
    rng: Optional[np.random.Generator],
    deadline: Optional[Any] = None,
) -> List[Any]:
    return engine._execute_aknn_bucket(bucket, rng, deadline=deadline)


def _plan_range(
    engine: Any,
    bucket: Sequence[RangeRequest],
    rng: Optional[np.random.Generator],
    deadline: Optional[Any] = None,
) -> List[Any]:
    return engine._execute_range_bucket(bucket, rng, deadline=deadline)


def _plan_sweep(
    engine: Any,
    bucket: Sequence[SweepRequest],
    rng: Optional[np.random.Generator],
    deadline: Optional[Any] = None,
) -> List[Any]:
    return engine._execute_sweep_bucket(bucket, rng, deadline=deadline)


def _plan_reverse(
    engine: Any,
    bucket: Sequence[ReverseRequest],
    rng: Optional[np.random.Generator],
    deadline: Optional[Any] = None,
) -> List[Any]:
    return engine._execute_reverse_bucket(bucket, rng, deadline=deadline)


register_planner(AknnRequest, _plan_aknn)
register_planner(RangeRequest, _plan_range)
register_planner(SweepRequest, _plan_sweep)
register_planner(ReverseRequest, _plan_reverse)
