"""Ad-hoc kNN (AKNN) query processing — Section 3 of the paper.

Four method variants are provided, matching the competitors of the
experimental evaluation (Figures 11, 12 and 15):

``basic``
    Algorithm 1: best-first R-tree traversal where every leaf entry is keyed
    by ``MinDist`` between the query alpha-cut MBR and the object's *support*
    MBR, and every popped leaf is probed from the object store.

``lb``
    The improved lower bound of Section 3.2: leaf entries are keyed by
    ``d-_alpha = MinDist(M_A(alpha)*, M_Q(alpha))`` where ``M_A(alpha)*`` is
    reconstructed from the conservative lines stored in the leaf summary.

``lb_lp``
    Adds the lazy probe of Section 3.3 (Algorithm 2): popped leaf entries are
    buffered instead of probed; a buffered candidate is emitted without any
    probe when its upper bound (``MaxDist``) beats the lower bound of
    everything still unexplored, and probes only happen when the buffer holds
    more candidates than there are result slots left.

``lb_lp_ub``
    Adds the improved upper bound of Section 3.4 (Lemma 1): the upper bound
    of a buffered candidate is the tighter of ``MaxDist`` and the distance
    from the object's stored representative kernel point to a small sample of
    the query alpha-cut.

Implementation note (documented deviation from the pseudo-code of
Algorithm 2): a candidate that has to be probed re-enters the candidate pool
with its exact distance as both bounds, and emission into the result set is
always guarded by the rank test "no more than k-1 objects can be strictly
closer".  This is the same lazy-probing policy — probes are mandatory only on
buffer overflow and tight upper bounds avoid them altogether — but it is
robust to ties and to adversarial bound configurations, which the verbatim
pseudo-code is not.  All four variants return a correct order-insensitive
k-nearest-neighbour set (asserted against a linear scan in the test suite).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.query import PreparedQuery
from repro.core.results import AKNNResult, Neighbor, QueryStats
from repro.exceptions import InvalidQueryError
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.index.entry import LeafEntry
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

AKNN_METHODS: Tuple[str, ...] = ("basic", "lb", "lb_lp", "lb_lp_ub")

# Heap element kinds.
_NODE = 0
_LEAF = 1
_OBJECT = 2


class _Candidate:
    """A leaf entry buffered by the lazy-probe variants."""

    __slots__ = ("entry", "lower", "upper", "exact")

    def __init__(self, entry: LeafEntry, lower: float, upper: float):
        self.entry = entry
        self.lower = lower
        self.upper = upper
        self.exact: Optional[float] = None

    def settle(self, exact: float) -> None:
        """Record the exact distance after a probe; bounds collapse onto it."""
        self.exact = exact
        self.lower = exact
        self.upper = exact

    @property
    def probed(self) -> bool:
        return self.exact is not None


class AKNNSearcher:
    """Answers AKNN queries over an object store + R-tree pair."""

    def __init__(
        self,
        store: ObjectStore,
        tree: RTree,
        config: Optional[RuntimeConfig] = None,
    ):
        self.store = store
        self.tree = tree
        self.config = (config or RuntimeConfig()).validate()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        """Return the ``k`` objects with smallest alpha-distance to ``query``."""
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if method not in AKNN_METHODS:
            raise InvalidQueryError(
                f"unknown AKNN method {method!r}; expected one of {AKNN_METHODS}"
            )
        metrics = MetricsCollector()
        prepared = PreparedQuery(query, alpha, self.config, rng, metrics)
        store_before = self.store.statistics.snapshot()
        timer = Timer().start()

        if method in ("basic", "lb"):
            neighbors = self._eager_search(prepared, k, improved=(method == "lb"))
        else:
            neighbors = self._lazy_search(
                prepared, k, use_representative_ub=(method == "lb_lp_ub")
            )

        elapsed = timer.stop()
        stats = self._build_stats(metrics, store_before, elapsed)
        return AKNNResult(neighbors=neighbors, k=k, alpha=alpha, method=method, stats=stats)

    # ------------------------------------------------------------------
    # Algorithm 1 (basic) and its LB refinement
    # ------------------------------------------------------------------
    def _eager_search(
        self, prepared: PreparedQuery, k: int, improved: bool
    ) -> List[Neighbor]:
        metrics = prepared.metrics
        counter = itertools.count()
        heap: List[Tuple[float, int, int, object]] = []
        if len(self.tree) > 0:
            heapq.heappush(heap, (0.0, next(counter), _NODE, self.tree.root))
        result: List[Neighbor] = []

        while heap and len(result) < k:
            key, _, kind, payload = heapq.heappop(heap)
            if kind == _NODE:
                metrics.increment(MetricsCollector.NODE_ACCESSES)
                if not payload.entries:
                    continue
                # Whole-node bound evaluation against the SoA view: one NumPy
                # call per node instead of one Python call per entry.
                if payload.is_leaf:
                    bounds = prepared.leaf_lower_bounds(payload.soa(), improved=improved)
                    for entry, bound in zip(payload.entries, bounds):
                        heapq.heappush(heap, (bound, next(counter), _LEAF, entry))
                else:
                    bounds = prepared.node_lower_bounds(payload.soa())
                    for entry, bound in zip(payload.entries, bounds):
                        heapq.heappush(heap, (bound, next(counter), _NODE, entry.child))
            elif kind == _LEAF:
                obj = self.store.get(payload.object_id)
                distance = prepared.distance_to(obj)
                heapq.heappush(heap, (distance, next(counter), _OBJECT, payload.object_id))
            else:
                result.append(
                    Neighbor(
                        object_id=int(payload),
                        distance=key,
                        lower_bound=key,
                        upper_bound=key,
                        probed=True,
                    )
                )
        return result

    # ------------------------------------------------------------------
    # Algorithm 2 (lazy probe), with or without the improved upper bound
    # ------------------------------------------------------------------
    def _lazy_search(
        self, prepared: PreparedQuery, k: int, use_representative_ub: bool
    ) -> List[Neighbor]:
        metrics = prepared.metrics
        counter = itertools.count()
        heap: List[Tuple[float, int, int, object]] = []
        if len(self.tree) > 0:
            heapq.heappush(heap, (0.0, next(counter), _NODE, self.tree.root))
        buffer: List[_Candidate] = []
        result: List[Neighbor] = []
        # Upper bounds are evaluated lazily, one whole node at a time: the
        # first entry popped from a leaf node triggers a single vectorized
        # evaluation shared by its siblings, so nodes whose entries never
        # leave the heap pay nothing (matching the lazy-probe accounting at
        # node granularity).
        node_uppers: dict = {}

        def upper_bounds_for(soa) -> List[float]:
            key = id(soa)
            uppers = node_uppers.get(key)
            if uppers is None:
                uppers = prepared.leaf_upper_bounds(
                    soa, use_representative=use_representative_ub
                )
                node_uppers[key] = uppers
            return uppers

        def head_key() -> float:
            return heap[0][0] if heap else float("inf")

        def try_confirm() -> bool:
            """Emit one buffered candidate that is provably in the top-k."""
            if not buffer:
                return False
            hmin = head_key()
            # Candidates are inspected best-upper-bound first.
            for candidate in sorted(buffer, key=lambda c: (c.upper, c.entry.object_id)):
                if candidate.upper > hmin:
                    break
                closer = sum(
                    1
                    for other in buffer
                    if other is not candidate and other.lower < candidate.upper
                )
                if len(result) + closer <= k - 1:
                    buffer.remove(candidate)
                    result.append(
                        Neighbor(
                            object_id=candidate.entry.object_id,
                            distance=candidate.exact,
                            lower_bound=candidate.lower,
                            upper_bound=candidate.upper,
                            probed=candidate.probed,
                        )
                    )
                    return True
            return False

        def probe(candidate: _Candidate) -> None:
            obj = self.store.get(candidate.entry.object_id)
            candidate.settle(prepared.distance_to(obj))

        while len(result) < k and (heap or buffer):
            if try_confirm():
                continue
            overflow = len(buffer) > k - len(result)
            if overflow:
                unprobed = [c for c in buffer if not c.probed]
                if unprobed:
                    # Mandatory probe: resolve the most promising unresolved
                    # candidate, which tightens its bounds to the exact value.
                    probe(min(unprobed, key=lambda c: (c.lower, c.entry.object_id)))
                    continue
                # Everything buffered is exact; only advancing the main queue
                # (raising the unexplored lower bound) can unlock progress.
            if not heap:
                # No unexplored entries remain but the rank test is still
                # inconclusive (possible only through ties): settle the best
                # unprobed candidate to break the tie exactly.
                unprobed = [c for c in buffer if not c.probed]
                if not unprobed:
                    # All exact and still not confirmable cannot happen, but
                    # guard against it by emitting the closest candidate.
                    best = min(buffer, key=lambda c: (c.upper, c.entry.object_id))
                    buffer.remove(best)
                    result.append(
                        Neighbor(
                            object_id=best.entry.object_id,
                            distance=best.exact,
                            lower_bound=best.lower,
                            upper_bound=best.upper,
                            probed=best.probed,
                        )
                    )
                    continue
                probe(min(unprobed, key=lambda c: (c.lower, c.entry.object_id)))
                continue

            key, _, kind, payload = heapq.heappop(heap)
            if kind == _NODE:
                metrics.increment(MetricsCollector.NODE_ACCESSES)
                if not payload.entries:
                    continue
                # Whole-node lower-bound evaluation against the SoA view; the
                # entry remembers its node row so the upper bound can be
                # resolved lazily on pop.
                if payload.is_leaf:
                    soa = payload.soa()
                    lowers = prepared.leaf_lower_bounds(soa, improved=True)
                    for index, (entry, lower) in enumerate(
                        zip(payload.entries, lowers)
                    ):
                        heapq.heappush(
                            heap, (lower, next(counter), _LEAF, (entry, soa, index))
                        )
                else:
                    bounds = prepared.node_lower_bounds(payload.soa())
                    for entry, bound in zip(payload.entries, bounds):
                        heapq.heappush(heap, (bound, next(counter), _NODE, entry.child))
            else:  # _LEAF
                entry, soa, index = payload
                upper = upper_bounds_for(soa)[index]
                buffer.append(_Candidate(entry, lower=key, upper=upper))
        return result

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _build_stats(
        self, metrics: MetricsCollector, store_before, elapsed: float
    ) -> QueryStats:
        delta_accesses = self.store.statistics.object_accesses - store_before.object_accesses
        return QueryStats(
            object_accesses=delta_accesses,
            node_accesses=metrics.get(MetricsCollector.NODE_ACCESSES),
            distance_evaluations=metrics.get(MetricsCollector.DISTANCE_EVALUATIONS),
            lower_bound_evaluations=metrics.get(MetricsCollector.LOWER_BOUND_EVALUATIONS),
            upper_bound_evaluations=metrics.get(MetricsCollector.UPPER_BOUND_EVALUATIONS),
            aknn_calls=1,
            elapsed_seconds=elapsed,
        )
