"""Sequential-scan baselines.

The linear scan is the ground-truth oracle of the library: it probes every
object in the store, evaluates exact alpha-distances (or full distance
profiles) and answers AKNN / RKNN / range queries without any index.  The
paper uses it implicitly as the correctness reference ("the most
straightforward approach for answering AKNN query is to linearly scan the
whole dataset", Section 3.1); here it also anchors every invariant test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import RuntimeConfig
from repro.core.results import AKNNResult, Neighbor, QueryStats, RangeSearchResult, RKNNResult
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance, distance_profile
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.intervals import IntervalSet
from repro.fuzzy.profile import DistanceProfile
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

# Convention shared by every RKNN implementation: the elementary piece
# ``(a, b]`` of a step function is reported as the closed interval ``[a, b]``.
# The left endpoint is a measure-zero over-approximation; using the same
# convention everywhere makes results from different methods comparable.


def rank_objects(
    distances: Dict[int, float], k: int
) -> Tuple[List[int], float, float]:
    """Deterministic top-k selection shared by all RKNN refinement code.

    Returns ``(top_k_ids, kth_distance, k_plus_1_distance)`` where ties are
    broken by object id and the (k+1)-th distance is ``inf`` when fewer than
    ``k + 1`` objects are available.
    """
    ordered = sorted(distances.items(), key=lambda item: (item[1], item[0]))
    top = [object_id for object_id, _ in ordered[:k]]
    kth = ordered[min(k, len(ordered)) - 1][1] if ordered else float("inf")
    k_plus_1 = ordered[k][1] if len(ordered) > k else float("inf")
    return top, kth, k_plus_1


class LinearScanSearcher:
    """Index-free exact query evaluation over an :class:`ObjectStore`."""

    def __init__(self, store: ObjectStore, config: Optional[RuntimeConfig] = None):
        self.store = store
        self.config = (config or RuntimeConfig()).validate()

    # ------------------------------------------------------------------
    # AKNN
    # ------------------------------------------------------------------
    def aknn(self, query: FuzzyObject, k: int, alpha: float) -> AKNNResult:
        """Exact k nearest neighbours at ``alpha`` by scanning every object."""
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        before = self.store.statistics.snapshot()
        timer = Timer().start()
        distances: List[Tuple[float, int]] = []
        for object_id in self.store.object_ids():
            obj = self.store.get(object_id)
            distances.append(
                (alpha_distance(obj, query, alpha, use_kdtree=self.config.use_kdtree), object_id)
            )
        distances.sort(key=lambda pair: (pair[0], pair[1]))
        neighbors = [
            Neighbor(
                object_id=object_id,
                distance=distance,
                lower_bound=distance,
                upper_bound=distance,
                probed=True,
            )
            for distance, object_id in distances[:k]
        ]
        elapsed = timer.stop()
        stats = QueryStats(
            object_accesses=self.store.statistics.object_accesses - before.object_accesses,
            distance_evaluations=len(distances),
            elapsed_seconds=elapsed,
        )
        return AKNNResult(neighbors=neighbors, k=k, alpha=alpha, method="linear_scan", stats=stats)

    # ------------------------------------------------------------------
    # Range search at a fixed alpha
    # ------------------------------------------------------------------
    def range_search(
        self, query: FuzzyObject, alpha: float, radius: float
    ) -> RangeSearchResult:
        """All objects whose alpha-distance to ``query`` is at most ``radius``."""
        if radius < 0:
            raise InvalidQueryError(f"radius must be non-negative, got {radius}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        before = self.store.statistics.snapshot()
        timer = Timer().start()
        matches: List[Tuple[int, float]] = []
        count = 0
        for object_id in self.store.object_ids():
            obj = self.store.get(object_id)
            distance = alpha_distance(obj, query, alpha, use_kdtree=self.config.use_kdtree)
            count += 1
            if distance <= radius:
                matches.append((object_id, distance))
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        elapsed = timer.stop()
        stats = QueryStats(
            object_accesses=self.store.statistics.object_accesses - before.object_accesses,
            distance_evaluations=count,
            elapsed_seconds=elapsed,
        )
        return RangeSearchResult(matches=matches, radius=radius, alpha=alpha, stats=stats)

    # ------------------------------------------------------------------
    # RKNN ground truth
    # ------------------------------------------------------------------
    def distance_profiles(
        self, query: FuzzyObject, max_level: Optional[float] = None
    ) -> Dict[int, DistanceProfile]:
        """Exact distance profile of every stored object against ``query``."""
        profiles: Dict[int, DistanceProfile] = {}
        for object_id in self.store.object_ids():
            obj = self.store.get(object_id)
            profiles[object_id] = distance_profile(
                obj, query, use_kdtree=self.config.use_kdtree, max_level=max_level
            )
        return profiles

    def rknn(
        self, query: FuzzyObject, k: int, alpha_range: Tuple[float, float]
    ) -> RKNNResult:
        """Exact RKNN answer by exhaustive piecewise evaluation.

        Every stored object is probed once, its full distance profile is
        computed, and the combined membership levels split ``alpha_range``
        into elementary pieces on which all distances are constant; the top-k
        of each piece is recorded.
        """
        alpha_start, alpha_end = _validate_range(alpha_range)
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        before = self.store.statistics.snapshot()
        timer = Timer().start()
        profiles = self.distance_profiles(query, max_level=alpha_end)
        assignments = evaluate_piecewise(profiles, k, alpha_start, alpha_end)
        elapsed = timer.stop()
        stats = QueryStats(
            object_accesses=self.store.statistics.object_accesses - before.object_accesses,
            distance_evaluations=len(profiles),
            elapsed_seconds=elapsed,
        )
        return RKNNResult(
            assignments=assignments,
            k=k,
            alpha_range=(alpha_start, alpha_end),
            method="linear_scan",
            stats=stats,
        )


def evaluate_piecewise(
    profiles: Dict[int, DistanceProfile],
    k: int,
    alpha_start: float,
    alpha_end: float,
) -> Dict[int, IntervalSet]:
    """Exact qualifying ranges from a full set of distance profiles.

    The combined membership levels of all profiles partition
    ``[alpha_start, alpha_end]`` into pieces on which every distance is
    constant; the top-k (ties broken by object id) of each piece defines the
    assignment.  This is the semantics every RKNN method must reproduce.
    """
    assignments: Dict[int, IntervalSet] = {}
    if not profiles:
        return assignments
    boundaries = _piece_boundaries(profiles, alpha_start, alpha_end)
    previous = alpha_start
    for boundary in boundaries:
        evaluation_point = min(boundary, 1.0)
        distances = {
            object_id: profile.value(evaluation_point)
            for object_id, profile in profiles.items()
        }
        top, _, _ = rank_objects(distances, k)
        for object_id in top:
            assignments.setdefault(object_id, IntervalSet()).add_range(previous, boundary)
        previous = boundary
    return assignments


def _piece_boundaries(
    profiles: Dict[int, DistanceProfile], alpha_start: float, alpha_end: float
) -> List[float]:
    """Right endpoints of the elementary pieces covering ``[alpha_start, alpha_end]``.

    The closed left endpoint is evaluated as its own (degenerate) piece: when
    ``alpha_start`` coincides exactly with a membership level, the kNN set at
    that single threshold can differ from the one on the piece just above it,
    and Definition 5 includes it in the answer.
    """
    levels: set = set()
    for profile in profiles.values():
        for level in profile.levels:
            if alpha_start < level < alpha_end:
                levels.add(float(level))
    boundaries = [alpha_start]
    boundaries.extend(sorted(levels))
    boundaries.append(alpha_end)
    return boundaries


def _validate_range(alpha_range: Tuple[float, float]) -> Tuple[float, float]:
    alpha_start, alpha_end = float(alpha_range[0]), float(alpha_range[1])
    if not 0.0 < alpha_start <= 1.0 or not 0.0 < alpha_end <= 1.0:
        raise InvalidQueryError(
            f"alpha range endpoints must be in (0, 1], got {alpha_range}"
        )
    if alpha_end < alpha_start:
        raise InvalidQueryError(
            f"alpha range start {alpha_start} exceeds end {alpha_end}"
        )
    return alpha_start, alpha_end
