"""Query-side state shared by the search algorithms.

A :class:`PreparedQuery` fixes the query fuzzy object and the probability
threshold ``alpha`` and precomputes everything the bounds of Section 3 need:

* ``Q_alpha`` — the query alpha-cut and its MBR ``M_Q(alpha)``,
* ``Q'_alpha`` — the small sample of the alpha-cut used by the improved upper
  bound (Lemma 1),
* cheap accessors for the three bounds evaluated against a leaf summary:
  the *simple* lower bound (``MinDist`` of support MBRs, Algorithm 1), the
  *improved* lower bound ``d-_alpha`` (Equation 2 + ``MinDist``) and the two
  upper bounds ``d+_alpha`` (``MaxDist`` and the representative/sample bound).

The prepared query also evaluates exact alpha-distances against probed
objects, charging the metric counters as it goes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.config import RuntimeConfig
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance_points
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.summary import FuzzyObjectSummary
from repro.geometry.distance import point_to_set_distance
from repro.geometry.mbr import MBR, max_dist, min_dist
from repro.metrics.counters import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover - type-checking import only
    from repro.index.soa import NodeSoA


class PreparedQuery:
    """A query object bound to one probability threshold."""

    def __init__(
        self,
        query: FuzzyObject,
        alpha: float,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
        metrics: Optional[MetricsCollector] = None,
    ):
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        self.query = query
        self.alpha = float(alpha)
        self.config = (config or RuntimeConfig()).validate()
        self.metrics = metrics if metrics is not None else MetricsCollector()

        self.query_cut = query.alpha_cut(alpha)
        self.query_mbr = MBR.from_points(self.query_cut)
        # Q'_alpha is only consumed by the Lemma-1 upper bound; the reverse
        # filter/verify paths never read it, so the sampling (and its rng
        # draws) is deferred until the first access.
        self._rng = rng
        self._query_samples: Optional[np.ndarray] = None

    @property
    def query_samples(self) -> np.ndarray:
        """``Q'_alpha`` — the Lemma-1 sample of the alpha-cut (lazily drawn)."""
        if self._query_samples is None:
            self._query_samples = self.query.sample_alpha_cut(
                self.alpha, self.config.upper_bound_samples, self._rng
            )
        return self._query_samples

    # ------------------------------------------------------------------
    # Bounds against index entries
    # ------------------------------------------------------------------
    def node_lower_bound(self, mbr: MBR) -> float:
        """``MinDist`` between ``M_Q(alpha)`` and an internal node's MBR."""
        return min_dist(self.query_mbr, mbr)

    def simple_lower_bound(self, summary: FuzzyObjectSummary) -> float:
        """The basic algorithm's bound: ``MinDist(M_Q(alpha), M_A)``."""
        self.metrics.increment(MetricsCollector.LOWER_BOUND_EVALUATIONS)
        return min_dist(self.query_mbr, summary.support_mbr)

    def improved_lower_bound(self, summary: FuzzyObjectSummary) -> float:
        """``d-_alpha(A, Q) = MinDist(M_A(alpha)*, M_Q(alpha))`` (Section 3.2)."""
        self.metrics.increment(MetricsCollector.LOWER_BOUND_EVALUATIONS)
        return min_dist(self.query_mbr, summary.approx_alpha_mbr(self.alpha))

    def maxdist_upper_bound(self, summary: FuzzyObjectSummary) -> float:
        """``MaxDist(M_A(alpha)*, M_Q(alpha))`` — the lazy-probe upper bound."""
        self.metrics.increment(MetricsCollector.UPPER_BOUND_EVALUATIONS)
        return max_dist(self.query_mbr, summary.approx_alpha_mbr(self.alpha))

    def representative_upper_bound(self, summary: FuzzyObjectSummary) -> float:
        """``min_{q in Q'_alpha} ||rep(A) - q||`` — the Lemma 1 upper bound.

        ``rep(A)`` is a kernel point, so it belongs to every alpha-cut of
        ``A``; every sampled ``q`` belongs to ``Q_alpha``; hence any such pair
        distance upper-bounds the alpha-distance.
        """
        self.metrics.increment(MetricsCollector.UPPER_BOUND_EVALUATIONS)
        return point_to_set_distance(summary.representative, self.query_samples)

    def combined_upper_bound(self, summary: FuzzyObjectSummary) -> float:
        """The tighter of the MaxDist and representative/sample upper bounds."""
        return min(
            self.maxdist_upper_bound(summary),
            self.representative_upper_bound(summary),
        )

    # ------------------------------------------------------------------
    # Vectorized bounds against whole nodes (struct-of-arrays views)
    # ------------------------------------------------------------------
    def node_lower_bounds(self, soa: "NodeSoA") -> List[float]:
        """``MinDist`` of ``M_Q(alpha)`` to every child MBR of an internal node."""
        return soa.min_dist(self.query_mbr.lower, self.query_mbr.upper).tolist()

    def leaf_lower_bounds(self, soa: "NodeSoA", improved: bool) -> List[float]:
        """Lower bounds for every entry of a leaf node in one NumPy call.

        ``improved`` selects ``d-_alpha`` (Section 3.2) over the basic
        ``MinDist`` of support MBRs; element-wise the values match the scalar
        :meth:`improved_lower_bound` / :meth:`simple_lower_bound`.
        """
        self.metrics.increment(MetricsCollector.LOWER_BOUND_EVALUATIONS, soa.n)
        if improved:
            bounds = soa.improved_min_dist(
                self.alpha, self.query_mbr.lower, self.query_mbr.upper
            )
        else:
            bounds = soa.min_dist(self.query_mbr.lower, self.query_mbr.upper)
        return bounds.tolist()

    def leaf_upper_bounds(self, soa: "NodeSoA", use_representative: bool) -> List[float]:
        """Upper bounds (``d+_alpha``) for every entry of a leaf node.

        ``use_representative`` additionally applies the Lemma 1 bound from the
        stored kernel representatives to the sampled ``Q'_alpha`` and keeps
        the tighter value per entry, matching :meth:`combined_upper_bound`.
        """
        self.metrics.increment(MetricsCollector.UPPER_BOUND_EVALUATIONS, soa.n)
        bounds = soa.max_dist(self.alpha, self.query_mbr.lower, self.query_mbr.upper)
        if use_representative:
            bounds = np.minimum(bounds, soa.rep_upper_bounds(self.query_samples))
        return bounds.tolist()

    # ------------------------------------------------------------------
    # Exact distances
    # ------------------------------------------------------------------
    def distance_to(self, obj: FuzzyObject) -> float:
        """Exact ``d_alpha(A, Q)`` against a probed object."""
        self.metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
        return alpha_distance_points(
            obj.alpha_cut(self.alpha),
            self.query_cut,
            use_kdtree=self.config.use_kdtree,
        )

    def __repr__(self) -> str:
        samples = (
            "unsampled"
            if self._query_samples is None
            else str(self._query_samples.shape[0])
        )
        return (
            f"PreparedQuery(alpha={self.alpha}, cut={self.query_cut.shape[0]} pts, "
            f"samples={samples})"
        )
