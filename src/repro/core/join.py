"""Alpha-distance join — the first of the paper's proposed follow-up queries.

The conclusion of the paper names spatial join queries over fuzzy objects as
the natural next step after kNN search.  This module implements the
*alpha-distance join*: given two fuzzy datasets ``R`` and ``S``, a probability
threshold ``alpha`` and a distance threshold ``epsilon``, report every pair
``(A, B)`` with ``d_alpha(A, B) <= epsilon``.

Two strategies are provided:

``nested_loop``
    Probe every pair and evaluate the exact alpha-distance — the ground-truth
    baseline (quadratic in the dataset sizes).

``index``
    A synchronised dual R-tree traversal.  Node pairs are pruned with the
    ``MinDist`` of their MBRs; leaf-entry pairs are pruned with the improved
    lower bound built from the conservative-line summaries (Equation 2 applied
    to both sides) and, when that fails, a cheap upper bound from the two
    stored representative points which can accept a pair without probing
    either object.  Only the surviving pairs are probed and verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.results import QueryStats
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance_points
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.summary import FuzzyObjectSummary
from repro.geometry.mbr import min_dist
from repro.index.node import RTreeNode
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer
from repro.storage.object_store import ObjectStore

JOIN_METHODS: Tuple[str, ...] = ("nested_loop", "index")


@dataclass
class JoinResult:
    """Answer of an alpha-distance join."""

    pairs: List[Tuple[int, int, float]]
    alpha: float
    epsilon: float
    method: str
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def pair_ids(self) -> List[Tuple[int, int]]:
        """The matching ``(left_id, right_id)`` pairs without distances."""
        return [(left, right) for left, right, _ in self.pairs]

    def __len__(self) -> int:
        return len(self.pairs)


class AlphaDistanceJoin:
    """Joins two indexed fuzzy datasets on their alpha-distance."""

    def __init__(
        self,
        left_store: ObjectStore,
        left_tree: RTree,
        right_store: Optional[ObjectStore] = None,
        right_tree: Optional[RTree] = None,
        config: Optional[RuntimeConfig] = None,
    ):
        self.left_store = left_store
        self.left_tree = left_tree
        self.right_store = right_store if right_store is not None else left_store
        self.right_tree = right_tree if right_tree is not None else left_tree
        self.config = (config or RuntimeConfig()).validate()
        self._self_join = self.right_store is self.left_store and self.right_tree is self.left_tree

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def join(self, alpha: float, epsilon: float, method: str = "index") -> JoinResult:
        """All pairs with ``d_alpha <= epsilon``; self-joins skip identical ids."""
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        if epsilon < 0:
            raise InvalidQueryError(f"epsilon must be non-negative, got {epsilon}")
        if method not in JOIN_METHODS:
            raise InvalidQueryError(
                f"unknown join method {method!r}; expected one of {JOIN_METHODS}"
            )
        metrics = MetricsCollector()
        left_before = self.left_store.statistics.snapshot()
        right_before = self.right_store.statistics.snapshot()
        timer = Timer().start()
        if method == "nested_loop":
            pairs = self._nested_loop_join(alpha, epsilon, metrics)
        else:
            pairs = self._index_join(alpha, epsilon, metrics)
        elapsed = timer.stop()

        accesses = self.left_store.statistics.object_accesses - left_before.object_accesses
        if self.right_store is not self.left_store:
            accesses += (
                self.right_store.statistics.object_accesses - right_before.object_accesses
            )
        stats = QueryStats(
            object_accesses=accesses,
            node_accesses=metrics.get(MetricsCollector.NODE_ACCESSES),
            distance_evaluations=metrics.get(MetricsCollector.DISTANCE_EVALUATIONS),
            lower_bound_evaluations=metrics.get(MetricsCollector.LOWER_BOUND_EVALUATIONS),
            upper_bound_evaluations=metrics.get(MetricsCollector.UPPER_BOUND_EVALUATIONS),
            elapsed_seconds=elapsed,
        )
        pairs.sort(key=lambda item: (item[0], item[1]))
        return JoinResult(pairs=pairs, alpha=alpha, epsilon=epsilon, method=method, stats=stats)

    # ------------------------------------------------------------------
    # Baseline
    # ------------------------------------------------------------------
    def _nested_loop_join(
        self, alpha: float, epsilon: float, metrics: MetricsCollector
    ) -> List[Tuple[int, int, float]]:
        pairs: List[Tuple[int, int, float]] = []
        left_cuts = {
            object_id: self.left_store.get(object_id).alpha_cut(alpha)
            for object_id in self.left_store.object_ids()
        }
        if self._self_join:
            right_cuts = left_cuts
        else:
            right_cuts = {
                object_id: self.right_store.get(object_id).alpha_cut(alpha)
                for object_id in self.right_store.object_ids()
            }
        for left_id, left_cut in left_cuts.items():
            for right_id, right_cut in right_cuts.items():
                if self._self_join and right_id <= left_id:
                    continue
                metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
                distance = alpha_distance_points(
                    left_cut, right_cut, use_kdtree=self.config.use_kdtree
                )
                if distance <= epsilon:
                    pairs.append((left_id, right_id, distance))
        return pairs

    # ------------------------------------------------------------------
    # Dual R-tree traversal
    # ------------------------------------------------------------------
    def _index_join(
        self, alpha: float, epsilon: float, metrics: MetricsCollector
    ) -> List[Tuple[int, int, float]]:
        if len(self.left_tree) == 0 or len(self.right_tree) == 0:
            return []
        pairs: List[Tuple[int, int, float]] = []
        cut_cache_left: Dict[int, np.ndarray] = {}
        cut_cache_right: Dict[int, np.ndarray] = cut_cache_left if self._self_join else {}
        stack: List[Tuple[RTreeNode, RTreeNode]] = [(self.left_tree.root, self.right_tree.root)]
        scheduled = {(id(self.left_tree.root), id(self.right_tree.root))}

        def schedule(left_node: RTreeNode, right_node: RTreeNode) -> None:
            key = (id(left_node), id(right_node))
            if key not in scheduled:
                scheduled.add(key)
                stack.append((left_node, right_node))

        while stack:
            left_node, right_node = stack.pop()
            metrics.increment(MetricsCollector.NODE_ACCESSES)
            same_node = self._self_join and left_node is right_node

            if left_node.is_leaf and right_node.is_leaf:
                for i, left_entry in enumerate(left_node.entries):
                    right_entries = (
                        right_node.entries[i:] if same_node else right_node.entries
                    )
                    for right_entry in right_entries:
                        if min_dist(left_entry.mbr, right_entry.mbr) > epsilon:
                            continue
                        self._process_leaf_pair(
                            left_entry.summary,
                            right_entry.summary,
                            alpha,
                            epsilon,
                            pairs,
                            cut_cache_left,
                            cut_cache_right,
                            metrics,
                        )
            elif left_node.is_leaf:
                left_mbr = left_node.compute_mbr()
                for right_entry in right_node.entries:
                    if min_dist(left_mbr, right_entry.mbr) <= epsilon:
                        schedule(left_node, right_entry.child)
            elif right_node.is_leaf:
                right_mbr = right_node.compute_mbr()
                for left_entry in left_node.entries:
                    if min_dist(left_entry.mbr, right_mbr) <= epsilon:
                        schedule(left_entry.child, right_node)
            else:
                for i, left_entry in enumerate(left_node.entries):
                    right_entries = (
                        right_node.entries[i:] if same_node else right_node.entries
                    )
                    for right_entry in right_entries:
                        if min_dist(left_entry.mbr, right_entry.mbr) <= epsilon:
                            schedule(left_entry.child, right_entry.child)
        return self._deduplicate(pairs)

    def _process_leaf_pair(
        self,
        left_summary: FuzzyObjectSummary,
        right_summary: FuzzyObjectSummary,
        alpha: float,
        epsilon: float,
        pairs: List[Tuple[int, int, float]],
        cut_cache_left: Dict[int, np.ndarray],
        cut_cache_right: Dict[int, np.ndarray],
        metrics: MetricsCollector,
    ) -> None:
        left_id = left_summary.object_id
        right_id = right_summary.object_id
        if self._self_join:
            if right_id == left_id:
                return
            # Normalise self-join pairs so each unordered pair is reported once
            # regardless of which traversal order produced it.
            left_id, right_id = min(left_id, right_id), max(left_id, right_id)
            left_summary, right_summary = (
                (left_summary, right_summary)
                if left_summary.object_id == left_id
                else (right_summary, left_summary)
            )
        metrics.increment(MetricsCollector.LOWER_BOUND_EVALUATIONS)
        lower = min_dist(
            left_summary.approx_alpha_mbr(alpha), right_summary.approx_alpha_mbr(alpha)
        )
        if lower > epsilon:
            return
        # Cheap accept: the two representative kernel points belong to every
        # alpha-cut, so their distance upper-bounds the alpha-distance.
        metrics.increment(MetricsCollector.UPPER_BOUND_EVALUATIONS)
        representative_distance = float(
            np.linalg.norm(left_summary.representative - right_summary.representative)
        )
        if representative_distance <= epsilon:
            pairs.append((left_id, right_id, representative_distance))
            return
        left_cut = self._cut(left_id, alpha, self.left_store, cut_cache_left)
        right_cut = self._cut(right_id, alpha, self.right_store, cut_cache_right)
        metrics.increment(MetricsCollector.DISTANCE_EVALUATIONS)
        distance = alpha_distance_points(
            left_cut, right_cut, use_kdtree=self.config.use_kdtree
        )
        if distance <= epsilon:
            pairs.append((left_id, right_id, distance))

    @staticmethod
    def _cut(
        object_id: int, alpha: float, store: ObjectStore, cache: Dict[int, np.ndarray]
    ) -> np.ndarray:
        if object_id not in cache:
            cache[object_id] = store.get(object_id).alpha_cut(alpha)
        return cache[object_id]

    @staticmethod
    def _deduplicate(pairs: List[Tuple[int, int, float]]) -> List[Tuple[int, int, float]]:
        best: Dict[Tuple[int, int], float] = {}
        for left_id, right_id, distance in pairs:
            key = (left_id, right_id)
            if key not in best or distance < best[key]:
                best[key] = distance
        return [(left, right, distance) for (left, right), distance in best.items()]
