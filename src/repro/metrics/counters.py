"""Named counters shared by the query processors.

The evaluation of the paper reports two cost dimensions: the number of object
accesses (probes of the object store) and wall-clock running time.  The
searchers additionally track node accesses and the number of alpha-distance /
bound evaluations, which makes the effect of each optimisation visible in
tests and ablation benchmarks.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, Iterator


class MetricsCollector:
    """A tiny bag of named integer counters."""

    # Counters the query processors use; free-form names are also accepted.
    NODE_ACCESSES = "node_accesses"
    OBJECT_ACCESSES = "object_accesses"
    DISTANCE_EVALUATIONS = "distance_evaluations"
    LOWER_BOUND_EVALUATIONS = "lower_bound_evaluations"
    UPPER_BOUND_EVALUATIONS = "upper_bound_evaluations"
    AKNN_CALLS = "aknn_calls"
    RANGE_CALLS = "range_calls"
    REFINEMENT_STEPS = "refinement_steps"
    # Cache and batch-executor accounting.
    CACHE_HITS = "cache_hits"
    CACHE_MISSES = "cache_misses"
    BATCH_QUERIES = "batch_queries"
    NODES_PRUNED = "nodes_pruned"
    # Sharded query-service accounting: per-shard sub-queries issued by the
    # fan-out layer, coalescer flushes and the requests they carried, requests
    # shed by admission control, and live index mutations.
    SHARD_FANOUTS = "shard_fanouts"
    COALESCED_BATCHES = "coalesced_batches"
    COALESCED_QUERIES = "coalesced_queries"
    # Reverse-AKNN engine accounting: queries answered through the vectorized
    # batch path and the candidates that survived its all-pairs filter.
    REVERSE_QUERIES = "reverse_queries"
    REVERSE_CANDIDATES = "reverse_candidates"
    # Unified request-planner accounting (core/requests.py): per-(type,
    # bucket_key) sub-batches formed by execute_batch and the requests they
    # carried.  plan_requests > plan_groups is the observable evidence that
    # requests sharing a bucket key were answered by one shared sub-batch.
    PLAN_GROUPS = "plan_groups"
    PLAN_REQUESTS = "plan_requests"
    SHED_REQUESTS = "shed_requests"
    LIVE_INSERTS = "live_inserts"
    LIVE_DELETES = "live_deletes"
    # Fault-tolerance accounting (service/policy.py, service/faults.py):
    # per-shard read retries, breaker trips and the fan-out portions an open
    # breaker shed, queries answered with partial coverage, requests that
    # expired mid-execution, and requests withdrawn from the coalescer queue
    # because their deadline passed before their bucket flushed.
    RETRIES = "retries"
    BREAKER_OPEN = "breaker_open"
    BREAKER_SHED = "breaker_shed"
    PARTIAL_RESULTS = "partial_results"
    DEADLINE_EXPIRED = "deadline_expired"
    REQUESTS_WITHDRAWN_EXPIRED = "requests_withdrawn_expired"
    # Durability accounting (storage/wal.py, storage/snapshot.py,
    # index/bulk.py): WAL records appended / replayed on recovery, corrupt
    # tails truncated, snapshots published, STR bulk loads performed (cold
    # opens and recoveries must take this path — tests assert it), full
    # crash recoveries completed, and deferred-compaction rebuilds.
    WAL_APPENDS = "wal_appends"
    WAL_REPLAYED = "wal_replayed"
    WAL_TRUNCATIONS = "wal_truncations"
    WAL_TORN_TAILS = "wal_torn_tails"
    SNAPSHOTS = "snapshots"
    BULK_LOADS = "bulk_loads"
    RECOVERIES = "recoveries"
    COMPACTIONS = "compactions"
    LAZY_DELETES = "lazy_deletes"
    # Standing-query accounting (service/subscriptions.py): registered
    # subscriptions, deltas pushed, inserts screened out by the vectorized
    # bound check (no exact distance paid), exact evaluations paid on
    # surviving inserts, targeted re-queries triggered by member deletes,
    # and subscribers shed for falling behind their delivery queue.
    SUBSCRIPTIONS = "subscriptions"
    SUB_DELTAS = "sub_deltas"
    SUB_SCREENED_OUT = "sub_screened_out"
    SUB_EVALUATIONS = "sub_evaluations"
    SUB_REQUERIES = "sub_requeries"
    SUBSCRIBERS_SHED = "subscribers_shed"

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counts.get(name, 0)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        """Copy of all counters."""
        return dict(self._counts)

    def merge(self, other: "MetricsCollector") -> None:
        """Add every counter of ``other`` into this collector."""
        for name, value in other._counts.items():
            self._counts[name] += value

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"MetricsCollector({parts})"


class SharedMetricsCollector(MetricsCollector):
    """A collector safe to increment from concurrent threads.

    The per-query collectors stay lock-free (they are single-threaded and
    hot); the service layer's long-lived collectors — bumped from whichever
    thread submits a query or applies a live update — use this variant so
    concurrent read-modify-write increments cannot drop counts.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def merge(self, other: "MetricsCollector") -> None:
        with self._lock:
            for name, value in other._counts.items():
                self._counts[name] += value
