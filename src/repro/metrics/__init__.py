"""Instrumentation: counters and timers used by searchers and the harness."""

from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer

__all__ = ["MetricsCollector", "Timer"]
