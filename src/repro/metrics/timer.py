"""Wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager stopwatch measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> "Timer":
        """Begin (or restart) the measurement."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the measurement and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self._start = None
        self.elapsed = 0.0
