"""Library-wide tunables.

The values here correspond either to constants the paper fixes in its
experimental setup (Section 6.1, Table 2) or to implementation knobs that the
paper leaves unspecified (for example the number of sampled query points used
by the improved upper bound of Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Default number of points sampled from the query alpha-cut when computing the
# improved upper bound (Lemma 1).  The paper only requires n << |Q_alpha|.
DEFAULT_UPPER_BOUND_SAMPLES = 8

# Maximum number of leaf entries / child entries per R-tree node.
DEFAULT_RTREE_MAX_ENTRIES = 32
DEFAULT_RTREE_MIN_FILL = 0.4

# Number of points above which the closest-pair kernel switches from the
# vectorised brute-force path to a KD-tree based path.
KDTREE_CROSSOVER_POINTS = 256

# Number of per-threshold Equation-2 reconstructions each leaf node's SoA view
# memoises.  Repeated queries at the same alpha (and every query of a batch)
# then share one reconstruction per node.
DEFAULT_NODE_ALPHA_CACHE_CAPACITY = 8

# Number of materialised alpha-cuts each fuzzy object keeps in its LRU cache.
DEFAULT_ALPHA_CUT_CACHE_CAPACITY = 8

# Number of memoised distance profiles kept per searcher (keyed by object
# pair); 0 disables the store.
DEFAULT_PROFILE_CACHE_CAPACITY = 256

# Defaults of the sharded query service (see repro.service).  Shard count 0
# means "one shard", i.e. no partitioning; the coalescer window is the
# maximum time a request waits for companions before its bucket is flushed.
DEFAULT_SERVICE_SHARDS = 4
DEFAULT_SHARD_PLACEMENT = "hash"
DEFAULT_COALESCE_WINDOW_MS = 2.0
DEFAULT_COALESCE_MAX_BATCH = 64
DEFAULT_SERVICE_QUEUE_DEPTH = 1024

# Fault-tolerance defaults of the serving layer (see repro.service.policy).
# Retries cover transient per-shard worker failures (all queries are
# idempotent reads); the circuit breaker declares a shard sick after
# ``DEFAULT_BREAKER_FAILURE_THRESHOLD`` consecutive exhausted fan-outs and
# sheds its portion of every query until the cool-off elapses.
DEFAULT_SHARD_RETRY_ATTEMPTS = 3
DEFAULT_SHARD_RETRY_BASE_MS = 5.0
DEFAULT_SHARD_RETRY_MAX_MS = 50.0
DEFAULT_SHARD_RETRY_JITTER = 0.5
DEFAULT_BREAKER_FAILURE_THRESHOLD = 3
DEFAULT_BREAKER_RESET_TIMEOUT_MS = 1000.0
DEFAULT_BREAKER_HALF_OPEN_PROBES = 1

# Durability defaults (see repro.storage.wal / repro.storage.snapshot).
# ``wal_sync`` picks the durability/throughput trade of every WAL append:
# "none" leaves flushing to the OS, "flush" drains Python's userspace buffer
# (survives process crash, not power loss), "fsync" additionally forces the
# page cache to disk.  ``snapshot_every`` is the number of WAL appends after
# which the snapshot manager folds the log into a fresh snapshot and
# truncates it (0 disables automatic snapshots).
DEFAULT_WAL_SYNC = "flush"
DEFAULT_SNAPSHOT_EVERY = 0

# Deferred-compaction default (see repro.index.bulk).  With durability
# enabled, deletes prune lazily instead of reinserting orphans on the write
# path; once ``lazy deletes / live entries`` exceeds this ratio the tree is
# rebuilt with one STR bulk load.
DEFAULT_COMPACTION_DEBT_RATIO = 0.3

# Standing-query defaults (see repro.service.subscriptions).  The queue depth
# bounds undelivered deltas per subscriber; a subscriber that falls further
# behind is shed (subscription cancelled) rather than allowed to grow the
# queue without limit.
DEFAULT_SUBSCRIPTION_QUEUE_DEPTH = 256

# The small epsilon used by the basic RKNN sweep (Algorithm 3) to step just
# beyond a critical probability.  The exact sweep used in this implementation
# steps to the next membership level instead, but the value is retained for
# the paper-faithful epsilon-stepping code path.
RKNN_EPSILON = 1e-9

# Floating point slack used when asserting conservativeness of the optimal
# conservative line (Definition 6) under accumulated rounding error.
CONSERVATIVE_SLACK = 1e-9


@dataclass(frozen=True)
class PaperDefaults:
    """Default query / dataset parameters from Table 2 of the paper."""

    n_objects: int = 50_000
    points_per_object: int = 1_000
    k: int = 20
    alpha: float = 0.5
    range_length: float = 0.2
    space_size: float = 100.0
    object_radius: float = 0.5
    membership_sigma: float = 0.5


@dataclass
class RuntimeConfig:
    """Mutable runtime configuration shared by searchers.

    Attributes
    ----------
    upper_bound_samples:
        Number of query points sampled for the Lemma 1 upper bound.
    rtree_max_entries:
        Fan-out of R-tree nodes.
    rtree_min_fill:
        Minimum fill factor used by the quadratic split.
    use_kdtree:
        Whether the closest-pair kernel may use :mod:`scipy.spatial` KD-trees.
    cache_capacity:
        Number of fuzzy objects the object-store buffer pool keeps in memory.
        ``0`` disables caching so every probe touches the backing file.
    alpha_cut_cache_capacity:
        Number of materialised alpha-cuts each fuzzy object handed out by the
        store keeps in its per-object LRU cache.  ``0`` disables the cache.
    profile_cache_capacity:
        Number of memoised distance profiles (keyed by object pair) the RKNN
        searcher keeps.  ``0`` disables the store.
    batch_workers:
        Default worker-thread count of the batch query executor.  ``0`` (and
        ``1``) evaluate the batch on the calling thread.
    service_shards:
        Default shard count of :class:`~repro.service.ShardedDatabase`.
    shard_placement:
        Default placement policy name (``"hash"`` or ``"space"``).
    coalesce_window_ms:
        Maximum milliseconds a request may wait in a coalescer bucket before
        the bucket is flushed through the batch executor.
    coalesce_max_batch:
        Bucket size that triggers an immediate flush.
    service_queue_depth:
        Maximum requests pending across all buckets; submissions beyond it
        are shed with :class:`~repro.exceptions.ServiceOverloadedError`.
    shard_retry_attempts:
        Total attempts (initial call included) for a failed per-shard read
        before the shard is counted as failed for this query.  ``1``
        disables retries.
    shard_retry_base_ms / shard_retry_max_ms / shard_retry_jitter:
        Capped exponential backoff between attempts (see
        :class:`~repro.service.policy.RetryPolicy`).
    breaker_failure_threshold:
        Consecutive exhausted fan-outs that open a shard's circuit breaker.
    breaker_reset_timeout_ms:
        Cool-off before an open breaker admits half-open probes.
    breaker_half_open_probes:
        Concurrent probe calls admitted while half-open.
    default_deadline_ms:
        Deadline budget applied to service requests that do not carry their
        own ``deadline_ms``.  ``None`` (the default) leaves them unbounded.
    wal_sync:
        WAL append durability: ``"none"`` (OS-buffered), ``"flush"``
        (userspace buffer drained per append) or ``"fsync"`` (page cache
        forced to disk per append).
    snapshot_every:
        WAL appends between automatic snapshots (``0`` disables them; the
        WAL then grows until an explicit snapshot/close).
    compaction_debt_ratio:
        Fraction of lazily-deleted entries tolerated before the R-tree is
        rebuilt via STR bulk load (durable databases only).
    subscription_queue_depth:
        Maximum undelivered deltas buffered per standing-query subscriber
        before the subscriber is shed.
    """

    upper_bound_samples: int = DEFAULT_UPPER_BOUND_SAMPLES
    rtree_max_entries: int = DEFAULT_RTREE_MAX_ENTRIES
    rtree_min_fill: float = DEFAULT_RTREE_MIN_FILL
    use_kdtree: bool = True
    cache_capacity: int = 0
    alpha_cut_cache_capacity: int = DEFAULT_ALPHA_CUT_CACHE_CAPACITY
    profile_cache_capacity: int = DEFAULT_PROFILE_CACHE_CAPACITY
    batch_workers: int = 0
    service_shards: int = DEFAULT_SERVICE_SHARDS
    shard_placement: str = DEFAULT_SHARD_PLACEMENT
    coalesce_window_ms: float = DEFAULT_COALESCE_WINDOW_MS
    coalesce_max_batch: int = DEFAULT_COALESCE_MAX_BATCH
    service_queue_depth: int = DEFAULT_SERVICE_QUEUE_DEPTH
    shard_retry_attempts: int = DEFAULT_SHARD_RETRY_ATTEMPTS
    shard_retry_base_ms: float = DEFAULT_SHARD_RETRY_BASE_MS
    shard_retry_max_ms: float = DEFAULT_SHARD_RETRY_MAX_MS
    shard_retry_jitter: float = DEFAULT_SHARD_RETRY_JITTER
    breaker_failure_threshold: int = DEFAULT_BREAKER_FAILURE_THRESHOLD
    breaker_reset_timeout_ms: float = DEFAULT_BREAKER_RESET_TIMEOUT_MS
    breaker_half_open_probes: int = DEFAULT_BREAKER_HALF_OPEN_PROBES
    default_deadline_ms: float | None = None
    wal_sync: str = DEFAULT_WAL_SYNC
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    compaction_debt_ratio: float = DEFAULT_COMPACTION_DEBT_RATIO
    subscription_queue_depth: int = DEFAULT_SUBSCRIPTION_QUEUE_DEPTH
    extra: dict = field(default_factory=dict)

    def validate(self) -> "RuntimeConfig":
        """Check invariants and return ``self`` for chaining."""
        if self.upper_bound_samples < 1:
            raise ValueError("upper_bound_samples must be >= 1")
        if self.rtree_max_entries < 4:
            raise ValueError("rtree_max_entries must be >= 4")
        if not 0.0 < self.rtree_min_fill <= 0.5:
            raise ValueError("rtree_min_fill must be in (0, 0.5]")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.alpha_cut_cache_capacity < 0:
            raise ValueError("alpha_cut_cache_capacity must be >= 0")
        if self.profile_cache_capacity < 0:
            raise ValueError("profile_cache_capacity must be >= 0")
        if self.batch_workers < 0:
            raise ValueError("batch_workers must be >= 0")
        if self.service_shards < 1:
            raise ValueError("service_shards must be >= 1")
        if self.shard_placement not in ("hash", "space"):
            raise ValueError(
                f"shard_placement must be 'hash' or 'space', got {self.shard_placement!r}"
            )
        if self.coalesce_window_ms < 0.0:
            raise ValueError("coalesce_window_ms must be >= 0")
        if self.coalesce_max_batch < 1:
            raise ValueError("coalesce_max_batch must be >= 1")
        if self.service_queue_depth < 1:
            raise ValueError("service_queue_depth must be >= 1")
        if self.shard_retry_attempts < 1:
            raise ValueError("shard_retry_attempts must be >= 1")
        if self.shard_retry_base_ms < 0.0 or self.shard_retry_max_ms < 0.0:
            raise ValueError("shard retry delays must be >= 0")
        if not 0.0 <= self.shard_retry_jitter <= 1.0:
            raise ValueError("shard_retry_jitter must be in [0, 1]")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_reset_timeout_ms < 0.0:
            raise ValueError("breaker_reset_timeout_ms must be >= 0")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0.0:
            raise ValueError("default_deadline_ms must be positive (or None)")
        if self.wal_sync not in ("none", "flush", "fsync"):
            raise ValueError(
                f"wal_sync must be 'none', 'flush' or 'fsync', got {self.wal_sync!r}"
            )
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0 (0 disables)")
        if not 0.0 < self.compaction_debt_ratio <= 1.0:
            raise ValueError("compaction_debt_ratio must be in (0, 1]")
        if self.subscription_queue_depth < 1:
            raise ValueError("subscription_queue_depth must be >= 1")
        return self


DEFAULTS = PaperDefaults()
