"""Library-wide tunables.

The values here correspond either to constants the paper fixes in its
experimental setup (Section 6.1, Table 2) or to implementation knobs that the
paper leaves unspecified (for example the number of sampled query points used
by the improved upper bound of Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Default number of points sampled from the query alpha-cut when computing the
# improved upper bound (Lemma 1).  The paper only requires n << |Q_alpha|.
DEFAULT_UPPER_BOUND_SAMPLES = 8

# Maximum number of leaf entries / child entries per R-tree node.
DEFAULT_RTREE_MAX_ENTRIES = 32
DEFAULT_RTREE_MIN_FILL = 0.4

# Number of points above which the closest-pair kernel switches from the
# vectorised brute-force path to a KD-tree based path.
KDTREE_CROSSOVER_POINTS = 256

# Number of per-threshold Equation-2 reconstructions each leaf node's SoA view
# memoises.  Repeated queries at the same alpha (and every query of a batch)
# then share one reconstruction per node.
DEFAULT_NODE_ALPHA_CACHE_CAPACITY = 8

# Number of materialised alpha-cuts each fuzzy object keeps in its LRU cache.
DEFAULT_ALPHA_CUT_CACHE_CAPACITY = 8

# Number of memoised distance profiles kept per searcher (keyed by object
# pair); 0 disables the store.
DEFAULT_PROFILE_CACHE_CAPACITY = 256

# The small epsilon used by the basic RKNN sweep (Algorithm 3) to step just
# beyond a critical probability.  The exact sweep used in this implementation
# steps to the next membership level instead, but the value is retained for
# the paper-faithful epsilon-stepping code path.
RKNN_EPSILON = 1e-9

# Floating point slack used when asserting conservativeness of the optimal
# conservative line (Definition 6) under accumulated rounding error.
CONSERVATIVE_SLACK = 1e-9


@dataclass(frozen=True)
class PaperDefaults:
    """Default query / dataset parameters from Table 2 of the paper."""

    n_objects: int = 50_000
    points_per_object: int = 1_000
    k: int = 20
    alpha: float = 0.5
    range_length: float = 0.2
    space_size: float = 100.0
    object_radius: float = 0.5
    membership_sigma: float = 0.5


@dataclass
class RuntimeConfig:
    """Mutable runtime configuration shared by searchers.

    Attributes
    ----------
    upper_bound_samples:
        Number of query points sampled for the Lemma 1 upper bound.
    rtree_max_entries:
        Fan-out of R-tree nodes.
    rtree_min_fill:
        Minimum fill factor used by the quadratic split.
    use_kdtree:
        Whether the closest-pair kernel may use :mod:`scipy.spatial` KD-trees.
    cache_capacity:
        Number of fuzzy objects the object-store buffer pool keeps in memory.
        ``0`` disables caching so every probe touches the backing file.
    alpha_cut_cache_capacity:
        Number of materialised alpha-cuts each fuzzy object handed out by the
        store keeps in its per-object LRU cache.  ``0`` disables the cache.
    profile_cache_capacity:
        Number of memoised distance profiles (keyed by object pair) the RKNN
        searcher keeps.  ``0`` disables the store.
    batch_workers:
        Default worker-thread count of the batch query executor.  ``0`` (and
        ``1``) evaluate the batch on the calling thread.
    """

    upper_bound_samples: int = DEFAULT_UPPER_BOUND_SAMPLES
    rtree_max_entries: int = DEFAULT_RTREE_MAX_ENTRIES
    rtree_min_fill: float = DEFAULT_RTREE_MIN_FILL
    use_kdtree: bool = True
    cache_capacity: int = 0
    alpha_cut_cache_capacity: int = DEFAULT_ALPHA_CUT_CACHE_CAPACITY
    profile_cache_capacity: int = DEFAULT_PROFILE_CACHE_CAPACITY
    batch_workers: int = 0
    extra: dict = field(default_factory=dict)

    def validate(self) -> "RuntimeConfig":
        """Check invariants and return ``self`` for chaining."""
        if self.upper_bound_samples < 1:
            raise ValueError("upper_bound_samples must be >= 1")
        if self.rtree_max_entries < 4:
            raise ValueError("rtree_max_entries must be >= 4")
        if not 0.0 < self.rtree_min_fill <= 0.5:
            raise ValueError("rtree_min_fill must be in (0, 0.5]")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.alpha_cut_cache_capacity < 0:
            raise ValueError("alpha_cut_cache_capacity must be >= 0")
        if self.profile_cache_capacity < 0:
            raise ValueError("profile_cache_capacity must be >= 0")
        if self.batch_workers < 0:
            raise ValueError("batch_workers must be >= 0")
        return self


DEFAULTS = PaperDefaults()
