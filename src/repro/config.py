"""Library-wide tunables.

The values here correspond either to constants the paper fixes in its
experimental setup (Section 6.1, Table 2) or to implementation knobs that the
paper leaves unspecified (for example the number of sampled query points used
by the improved upper bound of Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Default number of points sampled from the query alpha-cut when computing the
# improved upper bound (Lemma 1).  The paper only requires n << |Q_alpha|.
DEFAULT_UPPER_BOUND_SAMPLES = 8

# Maximum number of leaf entries / child entries per R-tree node.
DEFAULT_RTREE_MAX_ENTRIES = 32
DEFAULT_RTREE_MIN_FILL = 0.4

# Number of points above which the closest-pair kernel switches from the
# vectorised brute-force path to a KD-tree based path.
KDTREE_CROSSOVER_POINTS = 256

# The small epsilon used by the basic RKNN sweep (Algorithm 3) to step just
# beyond a critical probability.  The exact sweep used in this implementation
# steps to the next membership level instead, but the value is retained for
# the paper-faithful epsilon-stepping code path.
RKNN_EPSILON = 1e-9

# Floating point slack used when asserting conservativeness of the optimal
# conservative line (Definition 6) under accumulated rounding error.
CONSERVATIVE_SLACK = 1e-9


@dataclass(frozen=True)
class PaperDefaults:
    """Default query / dataset parameters from Table 2 of the paper."""

    n_objects: int = 50_000
    points_per_object: int = 1_000
    k: int = 20
    alpha: float = 0.5
    range_length: float = 0.2
    space_size: float = 100.0
    object_radius: float = 0.5
    membership_sigma: float = 0.5


@dataclass
class RuntimeConfig:
    """Mutable runtime configuration shared by searchers.

    Attributes
    ----------
    upper_bound_samples:
        Number of query points sampled for the Lemma 1 upper bound.
    rtree_max_entries:
        Fan-out of R-tree nodes.
    rtree_min_fill:
        Minimum fill factor used by the quadratic split.
    use_kdtree:
        Whether the closest-pair kernel may use :mod:`scipy.spatial` KD-trees.
    cache_capacity:
        Number of fuzzy objects the object-store buffer pool keeps in memory.
        ``0`` disables caching so every probe touches the backing file.
    """

    upper_bound_samples: int = DEFAULT_UPPER_BOUND_SAMPLES
    rtree_max_entries: int = DEFAULT_RTREE_MAX_ENTRIES
    rtree_min_fill: float = DEFAULT_RTREE_MIN_FILL
    use_kdtree: bool = True
    cache_capacity: int = 0
    extra: dict = field(default_factory=dict)

    def validate(self) -> "RuntimeConfig":
        """Check invariants and return ``self`` for chaining."""
        if self.upper_bound_samples < 1:
            raise ValueError("upper_bound_samples must be >= 1")
        if self.rtree_max_entries < 4:
            raise ValueError("rtree_max_entries must be >= 4")
        if not 0.0 < self.rtree_min_fill <= 0.5:
            raise ValueError("rtree_min_fill must be in (0, 0.5]")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        return self


DEFAULTS = PaperDefaults()
