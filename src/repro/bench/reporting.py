"""Plain-text rendering of experiment results.

The paper reports its evaluation as bar/line charts; the harness reproduces
the same series as text tables (one row per method, one column per x-axis
value), which keeps the reproduction dependency-free and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.runner import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], min_width: int = 8
) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    columns = [str(h) for h in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [max(min_width, len(col)) for col in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in text_rows
    ]
    return "\n".join([header_line, separator, *body])


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def result_to_text(result: ExperimentResult, metric: str) -> str:
    """Render one metric of an experiment as a methods-by-parameter table."""
    parameters = result.parameter_values()
    headers = ["method"] + [str(p) for p in parameters]
    rows: List[List[object]] = []
    for method in result.methods():
        series = dict(result.series(method, metric))
        rows.append([method] + [series.get(p, float("nan")) for p in parameters])
    title = f"{result.experiment_id}: {result.title} — {metric}"
    table = format_table(headers, rows)
    parts = [title, table]
    if result.notes:
        parts.append(result.notes)
    return "\n".join(parts)


def result_to_full_text(result: ExperimentResult) -> str:
    """Render every metric of an experiment, separated by blank lines."""
    return "\n\n".join(result_to_text(result, metric) for metric in result.metrics)


def results_to_markdown(results: Sequence[ExperimentResult]) -> str:
    """Markdown report used when regenerating EXPERIMENTS.md measurements."""
    sections: List[str] = []
    for result in results:
        sections.append(f"### {result.experiment_id}: {result.title}\n")
        for metric in result.metrics:
            sections.append(f"**{metric}**\n")
            sections.append("```\n" + result_to_text(result, metric) + "\n```\n")
    return "\n".join(sections)


def summarize_speedups(result: ExperimentResult, metric: str, baseline: str) -> Dict[str, float]:
    """Average improvement factor of each method over ``baseline`` for ``metric``."""
    baseline_series = dict(result.series(baseline, metric))
    summary: Dict[str, float] = {}
    for method in result.methods():
        if method == baseline:
            continue
        ratios = []
        for parameter, value in result.series(method, metric):
            base = baseline_series.get(parameter)
            if base and value:
                ratios.append(base / value)
        if ratios:
            summary[method] = float(sum(ratios) / len(ratios))
    return summary
