"""Measurement primitives shared by all experiments.

``run_aknn_batch`` / ``run_rknn_batch`` execute one method over a batch of
query objects against a database and return the per-query average of the cost
counters.  ``ExperimentResult`` collects the rows of one figure reproduction
together with enough metadata to render it as a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.database import FuzzyDatabase
from repro.core.requests import AknnRequest, SweepRequest
from repro.fuzzy.fuzzy_object import FuzzyObject


@dataclass
class ExperimentResult:
    """Rows of one reproduced figure plus labelling metadata."""

    experiment_id: str
    title: str
    parameter: str
    metrics: Tuple[str, ...]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        """Append one measurement row."""
        self.rows.append(dict(values))

    def series(self, method: str, metric: str) -> List[Tuple[object, float]]:
        """``(parameter value, metric)`` pairs for one method, in row order."""
        return [
            (row[self.parameter], float(row[metric]))
            for row in self.rows
            if row.get("method") == method
        ]

    def methods(self) -> List[str]:
        """Distinct method names present in the rows, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            method = str(row.get("method"))
            if method not in seen:
                seen.append(method)
        return seen

    def parameter_values(self) -> List[object]:
        """Distinct parameter values, in first-seen order."""
        seen: List[object] = []
        for row in self.rows:
            value = row.get(self.parameter)
            if value not in seen:
                seen.append(value)
        return seen


def _average(values: Sequence[float]) -> float:
    return float(np.mean(values)) if values else 0.0


def run_aknn_batch(
    database: FuzzyDatabase,
    queries: Sequence[FuzzyObject],
    k: int,
    alpha: float,
    method: str,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Average AKNN cost counters over a batch of queries."""
    accesses: List[float] = []
    node_accesses: List[float] = []
    distance_evaluations: List[float] = []
    elapsed: List[float] = []
    for query in queries:
        database.reset_statistics()
        result = database.execute(
            AknnRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )
        accesses.append(result.stats.object_accesses)
        node_accesses.append(result.stats.node_accesses)
        distance_evaluations.append(result.stats.distance_evaluations)
        elapsed.append(result.stats.elapsed_seconds)
    return {
        "object_accesses": _average(accesses),
        "node_accesses": _average(node_accesses),
        "distance_evaluations": _average(distance_evaluations),
        "running_time": _average(elapsed),
    }


def run_rknn_batch(
    database: FuzzyDatabase,
    queries: Sequence[FuzzyObject],
    k: int,
    alpha_range: Tuple[float, float],
    method: str,
    aknn_method: str = "lb_lp_ub",
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Average RKNN cost counters over a batch of queries."""
    accesses: List[float] = []
    aknn_calls: List[float] = []
    refinement_steps: List[float] = []
    elapsed: List[float] = []
    result_sizes: List[float] = []
    for query in queries:
        database.reset_statistics()
        result = database.execute(
            SweepRequest(
                query, k=k, alpha_range=alpha_range,
                method=method, aknn_method=aknn_method,
            ),
            rng=rng,
        )
        accesses.append(result.stats.object_accesses)
        aknn_calls.append(result.stats.aknn_calls)
        refinement_steps.append(result.stats.refinement_steps)
        elapsed.append(result.stats.elapsed_seconds)
        result_sizes.append(len(result))
    return {
        "object_accesses": _average(accesses),
        "aknn_calls": _average(aknn_calls),
        "refinement_steps": _average(refinement_steps),
        "running_time": _average(elapsed),
        "result_size": _average(result_sizes),
    }
