"""Experiment configuration and scaling presets.

The paper's default setup (Table 2) uses 50,000 objects of 1,000 points each
(about fifty million points).  The harness keeps every *parameter ratio* of
the original sweeps but lets the absolute scale be chosen:

* :data:`PAPER_SCALE` — the original Table 2 values (hours of runtime in pure
  Python; provided for completeness).
* :data:`LAPTOP_SCALE` — the default: the same sweeps shrunk so a full
  figure reproduction finishes in minutes on a laptop.
* :data:`TINY_SCALE` — a smoke-test scale used by the benchmark suite and CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.config import DEFAULTS, RuntimeConfig


def density_matched_space(n_objects: int) -> float:
    """Side length reproducing the paper's default object density.

    The paper's default dataset holds 50,000 objects in a 100 x 100 space
    (five objects per unit square, so the radius-0.5 supports overlap
    heavily); it is exactly that density that makes the simple support-MBR
    bound loose and the improved bounds worthwhile.  A scaled-down dataset
    must shrink the space by ``sqrt(N / 50,000)`` to keep the same density —
    otherwise every method degenerates to ~k object accesses and the figures
    flatten out.
    """
    reference_density = DEFAULTS.n_objects / (DEFAULTS.space_size**2)
    return float(math.sqrt(n_objects / reference_density))


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and default query parameters for one experiment run."""

    # Dataset defaults (Table 2, possibly scaled).  ``space_size=None`` means
    # "match the paper's object density for the experiment's dataset size".
    dataset_kind: str = "synthetic"
    n_objects: int = 2_000
    points_per_object: int = 100
    space_size: Optional[float] = None
    seed: int = 7

    # Query defaults (Table 2).
    k: int = 20
    alpha: float = 0.5
    range_length: float = 0.2
    range_start: float = 0.4

    # Sweep grids (paper figure x-axes, scaled proportionally for N).
    n_values: Tuple[int, ...] = (500, 1_000, 2_000, 5_000)
    k_values: Tuple[int, ...] = (5, 10, 20, 50)
    alpha_values: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.9)
    range_lengths: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.5)

    # Measurement setup.
    n_queries: int = 3
    query_seed: int = 1234
    aknn_methods: Tuple[str, ...] = ("basic", "lb", "lb_lp", "lb_lp_ub")
    rknn_methods: Tuple[str, ...] = ("basic", "rss", "rss_icr")
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def alpha_range(self, length: Optional[float] = None) -> Tuple[float, float]:
        """The probability range used by RKNN experiments."""
        length = self.range_length if length is None else length
        start = self.range_start
        end = min(1.0, start + length)
        return (start, end)

    def space_for(self, n_objects: Optional[int] = None) -> float:
        """Space side length for a dataset of ``n_objects``.

        An explicit ``space_size`` wins; otherwise the space is shrunk so the
        object density matches the paper's default setup (see
        :func:`density_matched_space`).
        """
        if self.space_size is not None:
            return self.space_size
        return density_matched_space(n_objects or self.n_objects)

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Copy of the configuration with selected fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line summary used in experiment headers."""
        return (
            f"dataset={self.dataset_kind}, N={self.n_objects}, "
            f"points/object={self.points_per_object}, k={self.k}, "
            f"alpha={self.alpha}, L={self.range_length}, queries={self.n_queries}"
        )


#: The original Table 2 scale (50k objects x 1k points).  Running a figure at
#: this scale in pure Python takes hours; it is exposed so the scaling story
#: is explicit, not because the benchmark suite uses it.
PAPER_SCALE = ExperimentConfig(
    n_objects=50_000,
    points_per_object=1_000,
    space_size=100.0,
    n_values=(1_000, 5_000, 10_000, 50_000),
    n_queries=10,
)

#: Default scale for reproducing every figure on a laptop (minutes).
LAPTOP_SCALE = ExperimentConfig()

#: Smoke-test scale used by the pytest-benchmark suite.
TINY_SCALE = ExperimentConfig(
    n_objects=400,
    points_per_object=60,
    n_values=(100, 200, 400),
    k_values=(5, 10, 20),
    alpha_values=(0.3, 0.5, 0.7, 0.9),
    range_lengths=(0.05, 0.1, 0.2),
    k=10,
    n_queries=2,
)


def scale_for_name(name: str) -> ExperimentConfig:
    """Look up a preset by name (``paper``, ``laptop`` or ``tiny``)."""
    presets: dict = {"paper": PAPER_SCALE, "laptop": LAPTOP_SCALE, "tiny": TINY_SCALE}
    if name not in presets:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(presets)}")
    return presets[name]
