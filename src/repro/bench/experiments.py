"""Per-figure experiment definitions (Section 6 of the paper).

Every function reproduces the data behind one (or one pair of) figure(s):

===============================  ==========================================
Function                         Paper figures
===============================  ==========================================
``aknn_dataset_sweep``           Figure 15a / 15b (synthetic vs real dataset)
``aknn_n_sweep``                 Figure 11a / 12a (dataset size N)
``aknn_k_sweep``                 Figure 11b / 12b (result size k)
``aknn_alpha_sweep``             Figure 11c / 12c (probability threshold)
``rknn_n_sweep``                 Figure 13a / 14a (dataset size N)
``rknn_k_sweep``                 Figure 13b / 14b (result size k)
``rknn_range_sweep``             Figure 13c / 14c (probability range length L)
``cost_model_validation``        Section 5 (predicted vs measured accesses)
===============================  ==========================================

Each returns an :class:`~repro.bench.runner.ExperimentResult` whose rows carry
``object_accesses`` and ``running_time`` per method and x-axis value — the two
metrics the paper plots.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.cost_model import AccessCostModel
from repro.bench.config import ExperimentConfig, LAPTOP_SCALE
from repro.bench.runner import ExperimentResult, run_aknn_batch, run_rknn_batch
from repro.datasets.builder import DatasetBundle

AKNN_METRICS = ("object_accesses", "running_time")
RKNN_METRICS = ("object_accesses", "running_time", "refinement_steps")

_SCALE_NOTE = (
    "Scaled reproduction: absolute values differ from the paper's Java/50k-object "
    "setup; the relative ordering of the methods is what is being reproduced."
)


def _bundle(
    config: ExperimentConfig,
    kind: Optional[str] = None,
    n_objects: Optional[int] = None,
    space_size: Optional[float] = None,
) -> DatasetBundle:
    """Build the dataset bundle one experiment point needs."""
    n_objects = n_objects or config.n_objects
    return DatasetBundle.create(
        kind=kind or config.dataset_kind,
        n_objects=n_objects,
        points_per_object=config.points_per_object,
        seed=config.seed,
        space_size=space_size if space_size is not None else config.space_for(n_objects),
        config=config.runtime,
        query_seed=config.query_seed,
    )


# ----------------------------------------------------------------------
# AKNN experiments (Figures 11, 12, 15)
# ----------------------------------------------------------------------
def aknn_dataset_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 15a/15b: every AKNN variant on the synthetic and cell datasets."""
    result = ExperimentResult(
        experiment_id="fig15",
        title="AKNN methods on synthetic vs simulated-real dataset",
        parameter="dataset",
        metrics=AKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    for kind in ("synthetic", "cells"):
        bundle = _bundle(config, kind=kind)
        queries = bundle.queries(config.n_queries)
        for method in config.aknn_methods:
            measurement = run_aknn_batch(
                bundle.database, queries, k=config.k, alpha=config.alpha, method=method
            )
            result.add_row(dataset=kind, method=method, **measurement)
        bundle.database.close()
    return result


def aknn_n_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 11a/12a: AKNN cost as the number of objects grows."""
    result = ExperimentResult(
        experiment_id="fig11a_12a",
        title="AKNN methods vs dataset size N",
        parameter="n_objects",
        metrics=AKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    # The paper grows N inside a fixed space (density increases with N); keep
    # that behaviour by fixing the space to the one matching the largest N.
    space_size = config.space_for(max(config.n_values))
    for n_objects in config.n_values:
        bundle = _bundle(config, n_objects=n_objects, space_size=space_size)
        queries = bundle.queries(config.n_queries)
        for method in config.aknn_methods:
            measurement = run_aknn_batch(
                bundle.database, queries, k=config.k, alpha=config.alpha, method=method
            )
            result.add_row(n_objects=n_objects, method=method, **measurement)
        bundle.database.close()
    return result


def aknn_k_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 11b/12b: AKNN cost as the number of requested neighbours grows."""
    result = ExperimentResult(
        experiment_id="fig11b_12b",
        title="AKNN methods vs k",
        parameter="k",
        metrics=AKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    bundle = _bundle(config)
    queries = bundle.queries(config.n_queries)
    for k in config.k_values:
        for method in config.aknn_methods:
            measurement = run_aknn_batch(
                bundle.database, queries, k=k, alpha=config.alpha, method=method
            )
            result.add_row(k=k, method=method, **measurement)
    bundle.database.close()
    return result


def aknn_alpha_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 11c/12c: AKNN cost as the probability threshold grows."""
    result = ExperimentResult(
        experiment_id="fig11c_12c",
        title="AKNN methods vs probability threshold alpha",
        parameter="alpha",
        metrics=AKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    bundle = _bundle(config)
    queries = bundle.queries(config.n_queries)
    for alpha in config.alpha_values:
        for method in config.aknn_methods:
            measurement = run_aknn_batch(
                bundle.database, queries, k=config.k, alpha=alpha, method=method
            )
            result.add_row(alpha=alpha, method=method, **measurement)
    bundle.database.close()
    return result


# ----------------------------------------------------------------------
# RKNN experiments (Figures 13, 14)
# ----------------------------------------------------------------------
def rknn_n_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 13a/14a: RKNN cost as the number of objects grows."""
    result = ExperimentResult(
        experiment_id="fig13a_14a",
        title="RKNN methods vs dataset size N",
        parameter="n_objects",
        metrics=RKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    alpha_range = config.alpha_range()
    space_size = config.space_for(max(config.n_values))
    for n_objects in config.n_values:
        bundle = _bundle(config, n_objects=n_objects, space_size=space_size)
        queries = bundle.queries(config.n_queries)
        for method in config.rknn_methods:
            measurement = run_rknn_batch(
                bundle.database, queries, k=config.k, alpha_range=alpha_range, method=method
            )
            result.add_row(n_objects=n_objects, method=method, **measurement)
        bundle.database.close()
    return result


def rknn_k_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 13b/14b: RKNN cost as the number of requested neighbours grows."""
    result = ExperimentResult(
        experiment_id="fig13b_14b",
        title="RKNN methods vs k",
        parameter="k",
        metrics=RKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    bundle = _bundle(config)
    queries = bundle.queries(config.n_queries)
    alpha_range = config.alpha_range()
    for k in config.k_values:
        for method in config.rknn_methods:
            measurement = run_rknn_batch(
                bundle.database, queries, k=k, alpha_range=alpha_range, method=method
            )
            result.add_row(k=k, method=method, **measurement)
    bundle.database.close()
    return result


def rknn_range_sweep(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Figure 13c/14c: RKNN cost as the probability range length grows."""
    result = ExperimentResult(
        experiment_id="fig13c_14c",
        title="RKNN methods vs probability range length L",
        parameter="range_length",
        metrics=RKNN_METRICS,
        notes=_SCALE_NOTE,
    )
    bundle = _bundle(config)
    queries = bundle.queries(config.n_queries)
    for length in config.range_lengths:
        alpha_range = config.alpha_range(length)
        for method in config.rknn_methods:
            measurement = run_rknn_batch(
                bundle.database, queries, k=config.k, alpha_range=alpha_range, method=method
            )
            result.add_row(range_length=length, method=method, **measurement)
    bundle.database.close()
    return result


# ----------------------------------------------------------------------
# Section 5: cost model validation
# ----------------------------------------------------------------------
def cost_model_validation(config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Predicted (Equation 8) vs measured object accesses for the basic AKNN search."""
    result = ExperimentResult(
        experiment_id="sec5",
        title="Access cost model: predicted vs measured object accesses (basic AKNN)",
        parameter="alpha",
        metrics=("object_accesses",),
        notes="The model assumes ideal (spherical) fuzzy objects; the synthetic "
        "dataset matches that assumption up to sampling noise.",
    )
    bundle = _bundle(config, kind="synthetic")
    queries = bundle.queries(config.n_queries)
    model = AccessCostModel.for_synthetic_dataset(
        n_objects=config.n_objects,
        space_size=config.space_for(),
        node_capacity=config.runtime.rtree_max_entries,
    )
    for alpha in config.alpha_values:
        measured = run_aknn_batch(
            bundle.database, queries, k=config.k, alpha=alpha, method="basic"
        )
        result.add_row(
            alpha=alpha,
            method="measured_basic",
            object_accesses=measured["object_accesses"],
            running_time=measured["running_time"],
        )
        result.add_row(
            alpha=alpha,
            method="predicted_eq8",
            object_accesses=model.predict_object_accesses(config.k, alpha),
            running_time=0.0,
        )
    bundle.database.close()
    return result


#: Registry used by the CLI and the benchmark suite.
EXPERIMENTS: Dict[str, Tuple[str, callable]] = {
    "fig15": ("AKNN on synthetic vs real dataset (Fig. 15a/b)", aknn_dataset_sweep),
    "fig11a": ("AKNN vs N (Fig. 11a/12a)", aknn_n_sweep),
    "fig11b": ("AKNN vs k (Fig. 11b/12b)", aknn_k_sweep),
    "fig11c": ("AKNN vs alpha (Fig. 11c/12c)", aknn_alpha_sweep),
    "fig13a": ("RKNN vs N (Fig. 13a/14a)", rknn_n_sweep),
    "fig13b": ("RKNN vs k (Fig. 13b/14b)", rknn_k_sweep),
    "fig13c": ("RKNN vs L (Fig. 13c/14c)", rknn_range_sweep),
    "sec5": ("Cost model validation (Section 5)", cost_model_validation),
}


def run_experiment(name: str, config: ExperimentConfig = LAPTOP_SCALE) -> ExperimentResult:
    """Run one named experiment from :data:`EXPERIMENTS`."""
    if name not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}")
    _, function = EXPERIMENTS[name]
    return function(config)
