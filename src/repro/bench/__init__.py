"""Experiment harness reproducing the evaluation of Section 6.

Each figure of the paper maps to one function in
:mod:`~repro.bench.experiments`; the functions build the required datasets,
run every competing method over a batch of queries, and return an
:class:`~repro.bench.runner.ExperimentResult` whose rows mirror the series of
the original plot (object accesses for Figures 11/13/15a, running time for
Figures 12/14/15b).  :mod:`~repro.bench.reporting` renders the results as
plain-text tables, which is what the ``benchmarks/`` suite and the CLI print.
"""

from repro.bench.config import ExperimentConfig, PAPER_SCALE, LAPTOP_SCALE, TINY_SCALE
from repro.bench.runner import ExperimentResult, run_aknn_batch, run_rknn_batch
from repro.bench.reporting import format_table, result_to_text
from repro.bench import experiments

__all__ = [
    "ExperimentConfig",
    "PAPER_SCALE",
    "LAPTOP_SCALE",
    "TINY_SCALE",
    "ExperimentResult",
    "run_aknn_batch",
    "run_rknn_batch",
    "format_table",
    "result_to_text",
    "experiments",
]
