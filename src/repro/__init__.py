"""Reproduction of "K-Nearest Neighbor Search for Fuzzy Objects" (SIGMOD 2010).

The library implements the paper's fuzzy object model, the alpha-distance,
and the AKNN / RKNN query processing algorithms (with every optimisation the
paper evaluates), together with the substrates they rely on: an R-tree over
fuzzy-object summaries, a disk-backed object store with exact access counting,
dataset generators matching the experimental setup, the Section-5 cost model
and a per-figure experiment harness.

Typical usage::

    import numpy as np
    from repro import FuzzyDatabase, FuzzyObject

    rng = np.random.default_rng(0)
    objects = [
        FuzzyObject(rng.random((50, 2)) + i, np.linspace(0.05, 1.0, 50))
        for i in range(100)
    ]
    db = FuzzyDatabase.build(objects)
    query = FuzzyObject.single_point([5.0, 5.0])
    result = db.execute(AknnRequest(query, k=5, alpha=0.5))
    for neighbor in result.sorted_by_distance():
        print(neighbor.object_id, neighbor.distance)

Every query is a typed request (:mod:`repro.core.requests`) executed through
the two-method ``QueryEngine`` surface — ``execute`` / ``execute_batch`` —
implemented identically by :class:`FuzzyDatabase`, :class:`ShardedDatabase`
and :class:`QueryService`; a batch may mix request types freely.
"""

from repro.config import PaperDefaults, RuntimeConfig, DEFAULTS
from repro.exceptions import (
    EmptyAlphaCutError,
    InvalidFuzzyObjectError,
    InvalidQueryError,
    ObjectNotFoundError,
    ReproError,
    SerializationError,
    ServiceOverloadedError,
    ServiceStoppedError,
    StorageCorruptionError,
    StorageError,
)
from repro.fuzzy import (
    DistanceProfile,
    FuzzyObject,
    FuzzyObjectSummary,
    Interval,
    IntervalSet,
    alpha_distance,
    distance_profile,
)
from repro.geometry import MBR, max_dist, min_dist
from repro.index import RTree
from repro.storage import ObjectStore
from repro.core import (
    AknnMethod,
    AknnRequest,
    LegacyQueryAPIWarning,
    QueryEngine,
    QueryRequest,
    RangeRequest,
    ReverseMethod,
    ReverseRequest,
    SweepMethod,
    SweepRequest,
    register_planner,
    AKNN_METHODS,
    AKNNResult,
    AKNNSearcher,
    AlphaDistanceJoin,
    AlphaRangeSearcher,
    FuzzyDatabase,
    JoinResult,
    LinearScanSearcher,
    Neighbor,
    QueryStats,
    ReverseAKNNSearcher,
    ReverseKNNResult,
    RKNN_METHODS,
    RKNNResult,
    RKNNSearcher,
    RangeSearchResult,
)
from repro.analysis import AccessCostModel
from repro.service import (
    DeliverySubscription,
    QueryService,
    ResultDelta,
    ServiceStats,
    ShardedDatabase,
    SubscriptionEngine,
)
from repro.storage import Manifest, SnapshotManager, WriteAheadLog

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # Configuration
    "PaperDefaults",
    "RuntimeConfig",
    "DEFAULTS",
    # Exceptions
    "ReproError",
    "InvalidFuzzyObjectError",
    "InvalidQueryError",
    "EmptyAlphaCutError",
    "StorageError",
    "StorageCorruptionError",
    "ObjectNotFoundError",
    "SerializationError",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    # Fuzzy object model
    "FuzzyObject",
    "FuzzyObjectSummary",
    "DistanceProfile",
    "Interval",
    "IntervalSet",
    "alpha_distance",
    "distance_profile",
    # Geometry
    "MBR",
    "min_dist",
    "max_dist",
    # Substrates
    "RTree",
    "ObjectStore",
    # The query surface (typed requests + QueryEngine protocol)
    "AknnMethod",
    "AknnRequest",
    "LegacyQueryAPIWarning",
    "QueryEngine",
    "QueryRequest",
    "RangeRequest",
    "ReverseMethod",
    "ReverseRequest",
    "SweepMethod",
    "SweepRequest",
    "register_planner",
    # Query processing
    "FuzzyDatabase",
    "AKNNSearcher",
    "AKNN_METHODS",
    "RKNNSearcher",
    "RKNN_METHODS",
    "AlphaRangeSearcher",
    "LinearScanSearcher",
    "AKNNResult",
    "RKNNResult",
    "RangeSearchResult",
    "Neighbor",
    "QueryStats",
    # Extension queries (the paper's proposed follow-up work)
    "AlphaDistanceJoin",
    "JoinResult",
    "ReverseAKNNSearcher",
    "ReverseKNNResult",
    # Serving
    "ShardedDatabase",
    "QueryService",
    "ServiceStats",
    # Durability
    "WriteAheadLog",
    "Manifest",
    "SnapshotManager",
    # Standing queries
    "SubscriptionEngine",
    "DeliverySubscription",
    "ResultDelta",
    # Analysis
    "AccessCostModel",
]
