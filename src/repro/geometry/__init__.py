"""Geometric primitives used by the fuzzy-object kNN algorithms.

This package is a small, self-contained computational-geometry substrate:

* :class:`~repro.geometry.mbr.MBR` — d-dimensional minimum bounding
  rectangles with the ``MinDist`` / ``MaxDist`` metrics of Equations (1) and
  (3) of the paper.
* :mod:`~repro.geometry.distance` — point-set distance kernels (closest pair
  between two point clouds, point-to-set distances) with a vectorised
  brute-force path and a KD-tree accelerated path.
* :mod:`~repro.geometry.convexhull` — Andrew's monotone chain convex hull and
  the upper convex hull used when fitting the optimal conservative line of
  Definition 6.
"""

from repro.geometry.mbr import MBR, min_dist, max_dist
from repro.geometry.distance import (
    closest_pair_distance,
    closest_pair,
    point_to_set_distance,
    set_to_set_distances,
)
from repro.geometry.convexhull import convex_hull, upper_convex_hull, is_right_turn_chain

__all__ = [
    "MBR",
    "min_dist",
    "max_dist",
    "closest_pair_distance",
    "closest_pair",
    "point_to_set_distance",
    "set_to_set_distances",
    "convex_hull",
    "upper_convex_hull",
    "is_right_turn_chain",
]
