"""Distance kernels between point sets.

Evaluating the alpha-distance of Definition 3 reduces to the *closest pair*
problem between two finite point sets (the two alpha-cuts).  The kernels in
this module provide:

* a vectorised brute-force path (exact, O(n*m) but with small constants), and
* a KD-tree accelerated path built on :class:`scipy.spatial.cKDTree`, used when
  both sets are large enough for the tree construction cost to pay off.

Both paths return identical results; the selection is purely a performance
decision controlled by :data:`repro.config.KDTREE_CROSSOVER_POINTS`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # scipy is a hard dependency, but keep the import failure readable.
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - scipy is always installed in CI
    cKDTree = None

from repro.config import KDTREE_CROSSOVER_POINTS

# Number of rows processed per chunk by the brute-force kernel; bounds the
# size of the intermediate (chunk, m) distance matrix.
_BRUTE_FORCE_CHUNK = 2048


def _as_points(points: np.ndarray, name: str) -> np.ndarray:
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError(f"{name} must be a non-empty (n, d) array")
    return pts


def point_to_set_distance(point: np.ndarray, points: np.ndarray) -> float:
    """Smallest Euclidean distance from ``point`` to any point in ``points``."""
    pts = _as_points(points, "points")
    pt = np.asarray(point, dtype=float).reshape(1, -1)
    if pt.shape[1] != pts.shape[1]:
        raise ValueError("point dimensionality does not match the point set")
    diffs = pts - pt
    return float(np.sqrt(np.min(np.einsum("ij,ij->i", diffs, diffs))))


def set_to_set_distances(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Full pairwise distance matrix between two point sets.

    Only intended for small sets (tests, diagnostics); the query algorithms
    use :func:`closest_pair_distance` which never materialises the full
    matrix for large inputs.
    """
    a = _as_points(points_a, "points_a")
    b = _as_points(points_b, "points_b")
    if a.shape[1] != b.shape[1]:
        raise ValueError("point sets must have the same dimensionality")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def _closest_pair_brute(points_a: np.ndarray, points_b: np.ndarray) -> Tuple[float, int, int]:
    """Exact closest pair by chunked vectorised scanning."""
    best = np.inf
    best_i = best_j = 0
    b_sq = np.einsum("ij,ij->i", points_b, points_b)
    eps = float(np.finfo(float).eps)
    for start in range(0, points_a.shape[0], _BRUTE_FORCE_CHUNK):
        chunk = points_a[start : start + _BRUTE_FORCE_CHUNK]
        a_sq = np.einsum("ij,ij->i", chunk, chunk)
        # squared distances via the expansion |a-b|^2 = |a|^2 + |b|^2 - 2 a.b
        sq = a_sq[:, None] + b_sq[None, :] - 2.0 * chunk @ points_b.T
        np.maximum(sq, 0.0, out=sq)
        # The expansion cancels catastrophically near zero (coincident points
        # come out as ~1e-13 instead of 0), so every near-minimal candidate is
        # re-evaluated with the direct formula, which is exact at zero and
        # keeps parity with the KD-tree path.  Tie-heavy inputs (many
        # coincident pairs) can make the candidate set large, so the
        # re-evaluation is itself chunked to keep memory bounded.
        chunk_min = float(sq.min())
        slack = 16.0 * eps * (float(a_sq.max(initial=0.0)) + float(b_sq.max(initial=0.0)))
        cand_i, cand_j = np.nonzero(sq <= chunk_min + slack)
        for cand_start in range(0, cand_i.shape[0], _BRUTE_FORCE_CHUNK):
            sel_i = cand_i[cand_start : cand_start + _BRUTE_FORCE_CHUNK]
            sel_j = cand_j[cand_start : cand_start + _BRUTE_FORCE_CHUNK]
            diffs = chunk[sel_i] - points_b[sel_j]
            exact_sq = np.einsum("ij,ij->i", diffs, diffs)
            pos = int(np.argmin(exact_sq))
            if exact_sq[pos] < best:
                best = float(exact_sq[pos])
                best_i = start + int(sel_i[pos])
                best_j = int(sel_j[pos])
    return float(np.sqrt(best)), best_i, best_j


def _closest_pair_kdtree(points_a: np.ndarray, points_b: np.ndarray) -> Tuple[float, int, int]:
    """Exact closest pair using a KD-tree over the larger set."""
    # Build the tree on the larger set and query with the smaller one.
    if points_a.shape[0] >= points_b.shape[0]:
        tree_points, query_points, swapped = points_a, points_b, True
    else:
        tree_points, query_points, swapped = points_b, points_a, False
    tree = cKDTree(tree_points)
    dists, indices = tree.query(query_points, k=1)
    q = int(np.argmin(dists))
    t = int(indices[q])
    if swapped:
        return float(dists[q]), t, q
    return float(dists[q]), q, t


def closest_pair(
    points_a: np.ndarray,
    points_b: np.ndarray,
    use_kdtree: bool = True,
) -> Tuple[float, int, int]:
    """Exact closest pair between two point sets.

    Returns ``(distance, index_in_a, index_in_b)``.

    Parameters
    ----------
    use_kdtree:
        Allow the KD-tree fast path when both sets exceed the configured
        cross-over size.  The result is identical either way.
    """
    a = _as_points(points_a, "points_a")
    b = _as_points(points_b, "points_b")
    if a.shape[1] != b.shape[1]:
        raise ValueError("point sets must have the same dimensionality")
    large = min(a.shape[0], b.shape[0]) >= KDTREE_CROSSOVER_POINTS
    if use_kdtree and large and cKDTree is not None:
        return _closest_pair_kdtree(a, b)
    return _closest_pair_brute(a, b)


def closest_pair_distance(
    points_a: np.ndarray,
    points_b: np.ndarray,
    use_kdtree: bool = True,
) -> float:
    """Minimum Euclidean distance between any point of ``a`` and any of ``b``."""
    distance, _, _ = closest_pair(points_a, points_b, use_kdtree=use_kdtree)
    return distance
