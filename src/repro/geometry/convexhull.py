"""Convex hull primitives (Andrew's monotone chain).

The optimal conservative line of Definition 6 interpolates an *anchor point*
of the upper convex hull (UCH) of the boundary function.  The paper cites
Andrew's monotone chain algorithm [3] for building the hull in linear time on
sorted input; this module implements both the full hull and the upper hull.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Point2D = Tuple[float, float]


def _cross(o: Point2D, a: Point2D, b: Point2D) -> float:
    """2-d cross product (OA x OB); positive for a counter-clockwise turn."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _prepare(points: Sequence[Point2D]) -> List[Point2D]:
    unique = sorted({(float(x), float(y)) for x, y in points})
    if not unique:
        raise ValueError("convex hull of an empty point set is undefined")
    return unique


def convex_hull(points: Sequence[Point2D]) -> List[Point2D]:
    """Full convex hull in counter-clockwise order (monotone chain)."""
    pts = _prepare(points)
    if len(pts) <= 2:
        return pts
    lower: List[Point2D] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Point2D] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def upper_convex_hull(points: Sequence[Point2D]) -> List[Point2D]:
    """Upper convex hull ordered by increasing x.

    The returned chain starts at the point with smallest x, ends at the point
    with largest x, and the slopes of consecutive segments are monotonically
    non-increasing (every interior vertex is a "right turn").  All input
    points lie on or below the chain.
    """
    pts = _prepare(points)
    if len(pts) <= 2:
        return pts
    upper: List[Point2D] = []
    for p in pts:
        # Pop while the last three points make a left turn (or are collinear),
        # keeping only vertices where the chain turns right.
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) >= 0:
            upper.pop()
        upper.append(p)
    return upper


def is_right_turn_chain(points: Sequence[Point2D]) -> bool:
    """Whether consecutive segment slopes are monotonically non-increasing.

    This is the defining property of the UCH used by the anchor bisection of
    the optimal conservative line; exposed for testing.
    """
    pts = [(float(x), float(y)) for x, y in points]
    for i in range(len(pts) - 2):
        if _cross(pts[i], pts[i + 1], pts[i + 2]) > 1e-12:
            return False
    return True
