"""Minimum bounding rectangles in d-dimensional Euclidean space.

The paper denotes an MBR by ``M = (M1+, M1-, ..., Md+, Md-)`` where ``Mi+``
(``Mi-``) is the upper (lower) bound of the i-th dimension.  This module
implements that representation together with the two distance metrics the
search algorithms rely on:

* ``MinDist`` (Equation 1) — the smallest possible distance between any pair
  of points drawn from the two rectangles.  It lower-bounds the alpha-distance
  of the enclosed alpha-cuts.
* ``MaxDist`` (Equation 3) — the largest possible distance between any pair of
  points drawn from the two rectangles.  It upper-bounds the alpha-distance.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np


class MBR:
    """An axis-aligned minimum bounding rectangle.

    Parameters
    ----------
    lower, upper:
        Arrays of length ``d`` with ``lower[i] <= upper[i]`` for every
        dimension ``i``.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: Sequence[float], upper: Sequence[float]):
        lower_arr = np.asarray(lower, dtype=float)
        upper_arr = np.asarray(upper, dtype=float)
        if lower_arr.ndim != 1 or upper_arr.ndim != 1:
            raise ValueError("MBR bounds must be one-dimensional arrays")
        if lower_arr.shape != upper_arr.shape:
            raise ValueError("MBR lower/upper bounds must have the same length")
        if lower_arr.size == 0:
            raise ValueError("MBR must have at least one dimension")
        if np.any(lower_arr > upper_arr):
            raise ValueError("MBR lower bound exceeds upper bound")
        self.lower = lower_arr
        self.upper = upper_arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        """Build the tightest MBR enclosing ``points`` (shape ``(n, d)``)."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("from_points expects a non-empty (n, d) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Build a degenerate MBR around a single point."""
        pt = np.asarray(point, dtype=float)
        return cls(pt, pt.copy())

    @classmethod
    def union_of(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Return the MBR enclosing every rectangle in ``mbrs``."""
        mbrs = list(mbrs)
        if not mbrs:
            raise ValueError("union_of expects at least one MBR")
        lower = np.min(np.vstack([m.lower for m in mbrs]), axis=0)
        upper = np.max(np.vstack([m.upper for m in mbrs]), axis=0)
        return cls(lower, upper)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Number of spatial dimensions."""
        return int(self.lower.size)

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the rectangle."""
        return (self.lower + self.upper) / 2.0

    @property
    def extent(self) -> np.ndarray:
        """Side length per dimension."""
        return self.upper - self.lower

    def area(self) -> float:
        """Hyper-volume of the rectangle (area in 2-d)."""
        return float(np.prod(self.extent))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree 'margin' measure)."""
        return float(np.sum(self.extent))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the MBR."""
        pt = np.asarray(point, dtype=float)
        return bool(np.all(pt >= self.lower) and np.all(pt <= self.upper))

    def contains(self, other: "MBR") -> bool:
        """Whether ``other`` is fully enclosed by this MBR."""
        return bool(
            np.all(other.lower >= self.lower) and np.all(other.upper <= self.upper)
        )

    def intersects(self, other: "MBR") -> bool:
        """Whether the two rectangles overlap (boundaries touching counts)."""
        return bool(
            np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper)
        )

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR enclosing both rectangles."""
        return MBR(np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to also cover ``other`` (R-tree ChooseLeaf metric)."""
        return self.union(other).area() - self.area()

    def intersection(self, other: "MBR") -> "MBR | None":
        """Overlapping region, or ``None`` when the rectangles are disjoint."""
        lower = np.maximum(self.lower, other.lower)
        upper = np.minimum(self.upper, other.upper)
        if np.any(lower > upper):
            return None
        return MBR(lower, upper)

    def expanded(self, amount: float) -> "MBR":
        """Rectangle grown by ``amount`` on every side (clamped to be valid)."""
        if amount < 0 and np.any(self.extent + 2 * amount < 0):
            raise ValueError("cannot shrink MBR below zero extent")
        return MBR(self.lower - amount, self.upper + amount)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_dist(self, other: "MBR") -> float:
        """``MinDist`` between two rectangles (Equation 1 of the paper)."""
        return min_dist(self, other)

    def max_dist(self, other: "MBR") -> float:
        """``MaxDist`` between two rectangles (Equation 3 of the paper)."""
        return max_dist(self, other)

    def min_dist_point(self, point: Sequence[float]) -> float:
        """Smallest distance from ``point`` to any point in the rectangle."""
        pt = np.asarray(point, dtype=float)
        gaps = np.maximum(0.0, np.maximum(self.lower - pt, pt - self.upper))
        return float(math.sqrt(float(np.dot(gaps, gaps))))

    def max_dist_point(self, point: Sequence[float]) -> float:
        """Largest distance from ``point`` to any point in the rectangle."""
        pt = np.asarray(point, dtype=float)
        gaps = np.maximum(np.abs(pt - self.lower), np.abs(pt - self.upper))
        return float(math.sqrt(float(np.dot(gaps, gaps))))

    # ------------------------------------------------------------------
    # Serialisation helpers
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Flatten to ``[lower..., upper...]`` for compact storage."""
        return np.concatenate([self.lower, self.upper])

    @classmethod
    def from_array(cls, values: Sequence[float]) -> "MBR":
        """Inverse of :meth:`to_array`."""
        arr = np.asarray(values, dtype=float)
        if arr.size % 2 != 0:
            raise ValueError("flattened MBR must have even length")
        d = arr.size // 2
        return cls(arr[:d], arr[d:])

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            np.array_equal(self.lower, other.lower)
            and np.array_equal(self.upper, other.upper)
        )

    def __hash__(self) -> int:
        return hash((self.lower.tobytes(), self.upper.tobytes()))

    def __repr__(self) -> str:
        lo = np.array2string(self.lower, precision=4)
        hi = np.array2string(self.upper, precision=4)
        return f"MBR(lower={lo}, upper={hi})"


def min_dist(a: MBR, b: MBR) -> float:
    """Minimum distance between two MBRs (Equation 1).

    For each dimension the gap ``l_i`` is the separation between the two
    projections (zero when they overlap); the result is the Euclidean norm of
    the gap vector.
    """
    gap = np.maximum(0.0, np.maximum(a.lower - b.upper, b.lower - a.upper))
    return float(math.sqrt(float(np.dot(gap, gap))))


def max_dist(a: MBR, b: MBR) -> float:
    """Maximum distance between two MBRs (Equation 3).

    Per dimension the farthest separation is
    ``max(|Mi+_A - Mi-_B|, |Mi-_A - Mi+_B|)``.
    """
    span = np.maximum(np.abs(a.upper - b.lower), np.abs(a.lower - b.upper))
    return float(math.sqrt(float(np.dot(span, span))))
