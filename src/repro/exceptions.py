"""Exception hierarchy for the fuzzy-object kNN library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidFuzzyObjectError(ReproError):
    """Raised when a fuzzy object violates the model of Definition 1/2.

    Typical causes: empty point set, membership values outside ``(0, 1]``,
    an empty kernel when a kernel is required, or mismatched array shapes.
    """


class InvalidQueryError(ReproError):
    """Raised when query parameters are malformed.

    Examples: ``k <= 0``, a probability threshold outside ``(0, 1]`` or a
    probability range whose start exceeds its end.
    """


class EmptyAlphaCutError(ReproError):
    """Raised when an alpha-cut is empty and a distance cannot be evaluated.

    Under the paper's assumption that kernels are non-empty this can only
    happen for malformed objects, but the library surfaces it explicitly
    instead of silently returning ``inf``.
    """


class StorageError(ReproError):
    """Raised by the object store for missing objects or corrupt files."""


class ObjectNotFoundError(StorageError):
    """Raised when an object id is not present in the object store."""


class SerializationError(StorageError):
    """Raised when a fuzzy object cannot be encoded or decoded."""


class IndexError_(ReproError):
    """Raised by the R-tree for structural violations.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class ExperimentError(ReproError):
    """Raised by the benchmark harness for inconsistent experiment configs."""


class ServiceOverloadedError(ReproError):
    """Raised when the query service sheds a request.

    The coalescer's admission control bounds the number of requests that may
    wait in its buckets (``RuntimeConfig.service_queue_depth``); submissions
    beyond the bound fail fast with this error instead of growing the queue
    without limit.  Callers are expected to back off and retry.
    """


class ServiceStoppedError(ReproError):
    """Raised when a request is submitted to a service that is not running."""
