"""Exception hierarchy for the fuzzy-object kNN library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidFuzzyObjectError(ReproError):
    """Raised when a fuzzy object violates the model of Definition 1/2.

    Typical causes: empty point set, membership values outside ``(0, 1]``,
    an empty kernel when a kernel is required, or mismatched array shapes.
    """


class InvalidQueryError(ReproError):
    """Raised when query parameters are malformed.

    Examples: ``k <= 0``, a probability threshold outside ``(0, 1]`` or a
    probability range whose start exceeds its end.
    """


class EmptyAlphaCutError(ReproError):
    """Raised when an alpha-cut is empty and a distance cannot be evaluated.

    Under the paper's assumption that kernels are non-empty this can only
    happen for malformed objects, but the library surfaces it explicitly
    instead of silently returning ``inf``.
    """


class StorageError(ReproError):
    """Raised by the object store for missing objects or corrupt files."""


class ObjectNotFoundError(StorageError):
    """Raised when an object id is not present in the object store."""


class StorageCorruptionError(StorageError):
    """Raised when an on-disk file is damaged beyond what recovery tolerates.

    Recovery distinguishes two damage classes.  A *corrupt tail* — the
    expected artifact of a crash mid-append — is handled in place: the WAL
    replay truncates at the last intact record and continues.  A *bad file*
    (wrong magic, a record body that fails its checksum inside the committed
    prefix, a data file shorter than its slot table) cannot be repaired by
    truncation and surfaces as this error, carrying the ``path`` and byte
    ``offset`` of the damage so operators see exactly where the file broke
    instead of a raw ``struct``/codec traceback.
    """

    def __init__(self, message: str, path=None, offset=None):
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.offset = None if offset is None else int(offset)


class SerializationError(StorageError):
    """Raised when a fuzzy object cannot be encoded or decoded."""


class IndexError_(ReproError):
    """Raised by the R-tree for structural violations.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class ExperimentError(ReproError):
    """Raised by the benchmark harness for inconsistent experiment configs."""


class BackpressureError(ReproError):
    """Base of every shed-and-retry-later error.

    Carries ``retry_after_ms`` — the service's estimate of how long the
    caller should back off before retrying (``None`` when the service cannot
    estimate one).  :class:`repro.service.client.RetryingClient` honours it.
    """

    def __init__(self, message: str, retry_after_ms=None):
        super().__init__(message)
        self.retry_after_ms = None if retry_after_ms is None else float(retry_after_ms)


class ServiceOverloadedError(BackpressureError):
    """Raised when the query service sheds a request.

    The coalescer's admission control bounds the number of requests that may
    wait in its buckets (``RuntimeConfig.service_queue_depth``); submissions
    beyond the bound fail fast with this error instead of growing the queue
    without limit.  ``retry_after_ms`` is computed from the current queue
    depth and the coalescer's drain-rate EWMA, so callers back off for
    roughly as long as the backlog needs to clear.
    """


class ShardUnavailableError(BackpressureError):
    """Raised when a query cannot be answered because shards are down.

    Raised either because every shard failed, or because the request set
    ``require_full=True`` and at least one shard could not answer (worker
    failure exhausted its retries, or its circuit breaker is open).
    ``retry_after_ms`` reflects the longest open breaker's remaining cool-off
    — the earliest time a retry could possibly reach the sick shard again.
    ``shards`` lists the failed shard indices; ``reasons`` maps each to a
    short description of its last failure.
    """

    def __init__(self, message: str, retry_after_ms=None, shards=(), reasons=None):
        super().__init__(message, retry_after_ms=retry_after_ms)
        self.shards = tuple(shards)
        self.reasons = dict(reasons or {})


class DeadlineExceededError(ReproError):
    """Raised when a request's ``deadline_ms`` budget expires.

    Deadlines propagate from the request into the coalescer (expired-in-queue
    requests are withdrawn before execution), the planner, and the batch
    executor's traversal loop, so an expired request fails before burning a
    full traversal rather than after.
    """


class ServiceStoppedError(ReproError):
    """Raised when a request is submitted to a service that is not running."""


class FaultInjectedError(ReproError):
    """The error raised by an injected ``raise`` fault (chaos testing only).

    Lives in the production hierarchy so injected failures travel the exact
    code paths a real worker failure would, but is never raised outside a
    :class:`repro.service.faults.FaultPlan`.
    """
