"""A partitioned database with parallel shard fan-out and global merging.

:class:`ShardedDatabase` splits a dataset across ``N`` independent
:class:`~repro.core.database.FuzzyDatabase` shards, each owning its own
object store, R-tree, SoA views and batch executor.  Placement is pluggable
(:mod:`repro.service.placement`): hash placement balances shards uniformly,
space placement stripes the first spatial axis so nearby objects share a
shard.

Queries fan out to every shard in parallel (one pool thread per shard) and
the per-shard answers are merged globally:

* **AKNN / batched AKNN** — each shard answers its local top-k; the global
  answer is the k smallest exact distances across shards (ties broken by
  object id).  Lazily-confirmed local neighbours are probed inside the
  shard's read section so the merge always compares exact distances.
* **Range search** — the union of the per-shard matches.
* **RKNN** — the sweep algorithms of :mod:`repro.core.rknn` run unchanged
  against federated building blocks: a fan-out AKNN, a fan-out range
  collector and a store router, so every sub-query is globally correct and
  the returned qualifying ranges are identical to the single-tree path.

Live updates (:meth:`insert` / :meth:`delete`) route through the placement
policy to the owning shard and take that shard's write lock, so in-flight
queries never observe a half-applied R-tree mutation; each mutation advances
the database epoch.  Object ids are globally unique and never recycled.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.config import RuntimeConfig
from repro.core.aknn import AKNN_METHODS
from repro.core.database import FuzzyDatabase
from repro.core.executor import _BOOTSTRAP_EXTRA, _exact_min_distances
from repro.core.query import PreparedQuery
from repro.core.requests import (
    AknnRequest,
    QueryRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
    execute_plan,
    warn_legacy,
)
from repro.core.results import (
    AKNNResult,
    BatchResult,
    Neighbor,
    QueryStats,
    RangeSearchResult,
    RKNNResult,
)
from repro.core.reverse_nn import (
    REVERSE_METHODS,
    ReverseKNNResult,
    build_bucket_results,
    collect_memberships,
    plan_bucket_verification,
    query_filter_thresholds,
)
from repro.core.rknn import RKNNSearcher
from repro.exceptions import (
    InvalidQueryError,
    ObjectNotFoundError,
    StorageError,
)
from repro.fuzzy.alpha_distance import alpha_distance
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.index.soa import certainly_closer_counts
from repro.metrics.counters import MetricsCollector, SharedMetricsCollector
from repro.metrics.timer import Timer
from repro.service.concurrency import EpochCounter, ReadWriteLock
from repro.service.placement import make_placement
from repro.storage.object_store import StoreStatistics

try:  # scipy is a hard dependency; keep the import failure readable.
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - scipy is always installed in CI
    cKDTree = None

T = TypeVar("T")


class _Shard:
    """One partition: a full FuzzyDatabase plus its readers/writer lock."""

    __slots__ = ("index", "db", "lock")

    def __init__(self, index: int, db: FuzzyDatabase):
        self.index = index
        self.db = db
        self.lock = ReadWriteLock()


class ShardedDatabase:
    """A collection of fuzzy objects partitioned across independent shards."""

    def __init__(
        self,
        shards: Sequence[FuzzyDatabase],
        placement,
        owners: Dict[int, int],
        config: Optional[RuntimeConfig] = None,
    ):
        if not shards:
            raise ValueError("a sharded database needs at least one shard")
        self.config = (config or RuntimeConfig()).validate()
        self.placement = placement
        self._shards = [_Shard(i, db) for i, db in enumerate(shards)]
        self._owners = dict(owners)
        self._admin_lock = threading.Lock()
        self._next_id = max(self._owners, default=-1) + 1
        self._epoch = EpochCounter()
        self._pool: Optional[ThreadPoolExecutor] = None
        self.metrics = SharedMetricsCollector()
        self._rknn = _FederatedRKNNSearcher(self, self.config)
        # ((total size, summed tree mutations), KD-tree over every shard's
        # representative points, aligned object ids); rebuilt lazily after
        # any mutation — the global analogue of the executor's local index.
        self._rep_index: Optional[Tuple[Tuple[int, int], object, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[FuzzyObject],
        n_shards: Optional[int] = None,
        placement: Optional[str] = None,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "ShardedDatabase":
        """Partition ``objects`` and build one index per shard.

        Objects without an id receive globally-sequential ids; explicit ids
        must be unique across the whole database.  ``n_shards`` and
        ``placement`` default to the config's ``service_shards`` /
        ``shard_placement``.
        """
        config = (config or RuntimeConfig()).validate()
        n_shards = config.service_shards if n_shards is None else int(n_shards)
        policy_name = placement or config.shard_placement
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")

        # Two passes: ids first (explicit ids win, the rest fill the gaps),
        # then placement, which may need every centre to fit stripes.
        materialised: List[FuzzyObject] = []
        raw = list(objects)
        used = {int(o.object_id) for o in raw if o.object_id is not None}
        if len(used) != sum(1 for o in raw if o.object_id is not None):
            raise StorageError("explicit object ids must be unique")
        next_free = 0
        for obj in raw:
            if obj.object_id is None:
                while next_free in used:
                    next_free += 1
                used.add(next_free)
                obj = obj.with_id(next_free)
            materialised.append(obj)

        centers = np.asarray(
            [obj.support_mbr().center for obj in materialised], dtype=float
        ) if materialised else np.empty((0, 1))
        policy = make_placement(policy_name, n_shards, centers)

        per_shard: List[List[FuzzyObject]] = [[] for _ in range(n_shards)]
        owners: Dict[int, int] = {}
        for obj, center in zip(materialised, centers):
            shard_index = policy.shard_for(int(obj.object_id), center)
            per_shard[shard_index].append(obj)
            owners[int(obj.object_id)] = shard_index

        shards = [
            FuzzyDatabase.build(shard_objects, config=config, rng=rng)
            for shard_objects in per_shard
        ]
        return cls(shards, policy, owners, config=config)

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def epoch(self) -> int:
        """Number of live mutations applied since construction."""
        return self._epoch.value

    def shard_sizes(self) -> List[int]:
        """Object count per shard (placement-balance diagnostics)."""
        return [len(shard.db) for shard in self._shards]

    def _fanout_pool(self) -> ThreadPoolExecutor:
        with self._admin_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self._shards),
                    thread_name_prefix="shard-fanout",
                )
            return self._pool

    def _map_shards(self, fn: Callable[[_Shard], T]) -> List[T]:
        """Apply ``fn`` to every shard, in parallel when there are several."""
        self.metrics.increment(MetricsCollector.SHARD_FANOUTS, len(self._shards))
        if len(self._shards) == 1:
            return [fn(self._shards[0])]
        return list(self._fanout_pool().map(fn, self._shards))

    def _owner_shard(self, object_id: int) -> _Shard:
        with self._admin_lock:
            shard_index = self._owners.get(int(object_id))
        if shard_index is None:
            raise ObjectNotFoundError(f"object {object_id} is not in the database")
        return self._shards[shard_index]

    # ------------------------------------------------------------------
    # Global pruning-radius bootstrap
    # ------------------------------------------------------------------
    def _global_rep_index(self) -> Tuple[Optional[object], np.ndarray]:
        """KD-tree over every shard's representative points (cached).

        The cross-shard analogue of the executor's per-shard index: one
        nominate-and-probe pass against it yields pruning radii that are
        valid over the whole database, so each shard's traversal prunes as
        tightly as an unsharded one would.  The caller must hold every
        shard's read lock (the batch path does); taking them here would
        deadlock against the non-reentrant writer-preferring lock.
        """
        key = (len(self), sum(shard.db.tree.mutations for shard in self._shards))
        cached = self._rep_index
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        reps: List[np.ndarray] = []
        oids: List[int] = []
        for shard in self._shards:
            for entry in shard.db.tree.leaf_entries():
                reps.append(entry.summary.representative)
                oids.append(entry.object_id)
        if not reps or cKDTree is None:
            return None, np.empty(0, dtype=np.int64)
        tree = cKDTree(np.asarray(reps))
        oid_array = np.asarray(oids, dtype=np.int64)
        self._rep_index = (key, tree, oid_array)
        return tree, oid_array

    def _global_bootstrap(
        self,
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        rng: Optional[np.random.Generator],
    ) -> Optional[Tuple[np.ndarray, List[Dict[int, float]]]]:
        """Globally-valid per-query pruning radii for a batch.

        For each query, the ``k + extra`` objects whose representatives sit
        closest to the query alpha-cut centre are probed exactly (each cut
        fetched once, from its owning shard); the k-th smallest probed
        distance upper-bounds the true global k-th neighbour distance.
        Returns ``(tau, exact)`` — the radii plus the per-query exact
        distances already paid for, which seed the shard executors' memos so
        bootstrap nominees are never re-evaluated.  Returns ``None`` when no
        usable radius can be computed (tiny database, scipy missing) —
        shards then bootstrap locally.  Caller must hold every shard's read
        lock, and must keep holding it through the fan-out that consumes the
        radii — they are only valid against the snapshot they were probed
        from.
        """
        rep_tree, rep_oids = self._global_rep_index()
        if rep_tree is None or rep_oids.shape[0] < k:
            return None
        prepared = [PreparedQuery(q, alpha, self.config, rng) for q in queries]
        kk = min(k + _BOOTSTRAP_EXTRA, rep_oids.shape[0])
        centers = np.stack(
            [(p.query_mbr.lower + p.query_mbr.upper) / 2.0 for p in prepared]
        )
        _, rep_idx = rep_tree.query(centers, k=kk)
        if kk == 1:
            rep_idx = rep_idx[:, None]
        nominated = rep_oids[rep_idx]
        # Fetch each distinct nominee once, grouped per owning shard so every
        # shard's read lock is taken a single time for the whole group.
        by_shard: Dict[int, List[int]] = {}
        with self._admin_lock:
            for object_id in np.unique(nominated).tolist():
                shard_index = self._owners.get(object_id)
                if shard_index is not None:
                    by_shard.setdefault(shard_index, []).append(object_id)
        cuts: Dict[int, np.ndarray] = {}
        for shard_index, object_ids in by_shard.items():
            store = self._shards[shard_index].db.store
            for object_id in object_ids:
                try:
                    cuts[object_id] = store.get(object_id).alpha_cut(alpha)
                except ObjectNotFoundError:
                    # Deleted before this batch took its locks: skip it.
                    continue
        tau = np.full(len(prepared), np.inf)
        exact: List[Dict[int, float]] = [dict() for _ in prepared]
        for qi in range(len(prepared)):
            row = [oid for oid in nominated[qi].tolist() if oid in cuts]
            if len(row) < k:
                continue  # not enough survivors; inf stays a valid radius
            dists = _exact_min_distances(
                prepared[qi].query_cut, [cuts[oid] for oid in row]
            )
            exact[qi] = dict(zip(row, dists.tolist()))
            tau[qi] = float(np.partition(dists, k - 1)[k - 1])
        return tau, exact

    # ------------------------------------------------------------------
    # The query surface (QueryEngine protocol)
    # ------------------------------------------------------------------
    def execute(
        self,
        request: QueryRequest,
        *,
        rng: Optional[np.random.Generator] = None,
    ):
        """Answer one typed request over the whole sharded database."""
        return execute_plan(self, [request], rng=rng)[0]

    def execute_batch(
        self,
        requests: Iterable[QueryRequest],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> List:
        """Answer a submission that may mix request types freely.

        Grouping is identical to the unsharded engine
        (:meth:`FuzzyDatabase.execute_batch`); each per-bucket sub-batch runs
        the sharded fast path (global bootstrap + parallel fan-out + global
        merge) once for the whole bucket.
        """
        return execute_plan(self, list(requests), rng=rng)

    # Bucket hooks consumed by the planners in repro.core.requests.
    def _execute_aknn_bucket(
        self,
        bucket: Sequence[AknnRequest],
        rng: Optional[np.random.Generator],
    ) -> List[AKNNResult]:
        first = bucket[0]
        if len(bucket) == 1:
            return [
                self._aknn_single(
                    first.query, first.k, first.alpha,
                    method=first.method.value, rng=rng,
                )
            ]
        self.metrics.increment(MetricsCollector.BATCH_QUERIES, len(bucket))
        batch = self._run_aknn_batch(
            [request.query for request in bucket],
            first.k,
            first.alpha,
            method=first.method.value,
            rng=rng,
        )
        return batch.results

    def _execute_range_bucket(
        self,
        bucket: Sequence[RangeRequest],
        rng: Optional[np.random.Generator],
    ) -> List[RangeSearchResult]:
        return [
            self._range_single(request.query, request.alpha, request.radius, rng=rng)
            for request in bucket
        ]

    def _execute_sweep_bucket(
        self,
        bucket: Sequence[SweepRequest],
        rng: Optional[np.random.Generator],
    ) -> List[RKNNResult]:
        return [
            self._rknn.search(
                request.query,
                request.k,
                request.alpha_range,
                method=request.method.value,
                aknn_method=request.aknn_method.value,
                rng=rng,
            )
            for request in bucket
        ]

    def _execute_reverse_bucket(
        self,
        bucket: Sequence[ReverseRequest],
        rng: Optional[np.random.Generator],
    ) -> List[ReverseKNNResult]:
        first = bucket[0]
        return self._run_reverse_bucket(
            [request.query for request in bucket],
            first.k,
            first.alpha,
            method=first.method.value,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Sharded execution engines
    # ------------------------------------------------------------------
    def _aknn_single(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        """Global AKNN: per-shard top-k, merged by exact distance."""
        self._check_aknn_args(k, method)
        timer = Timer().start()

        def run(shard: _Shard) -> Tuple[List[Neighbor], QueryStats]:
            with shard.lock.read():
                if len(shard.db) == 0:
                    return [], QueryStats()
                result = shard.db._aknn.search(query, k, alpha, method=method, rng=rng)
                resolved = self._resolve_exact(shard.db, result.neighbors, query, alpha)
                return resolved, result.stats

        per_shard = self._map_shards(run)
        stats = QueryStats()
        for _, shard_stats in per_shard:
            stats.merge(shard_stats)
        stats.aknn_calls = 1
        stats.extra["shard_fanouts"] = float(len(self._shards))
        merged = self._merge_topk([neighbors for neighbors, _ in per_shard], k)
        stats.elapsed_seconds = timer.stop()
        return AKNNResult(
            neighbors=merged, k=k, alpha=alpha, method=method, stats=stats
        )

    def _run_aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> BatchResult:
        """Batched AKNN: every shard answers the whole batch through its
        vectorized executor, then each query's shard answers merge globally."""
        self._check_aknn_args(k, method)
        queries = list(queries)
        timer = Timer().start()
        # The whole batch runs under every shard's read lock: the globally
        # bootstrapped pruning radii are only valid against the dataset they
        # were probed from, so a delete landing between bootstrap and
        # fan-out could otherwise prune true neighbours.  Readers share the
        # locks freely — only live updates are held off until the batch is
        # done.  The per-shard calls below must stay lock-free (the lock is
        # not reentrant and writer preference would deadlock nested reads).
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.lock.read())
            # One global nominate-and-probe pass replaces N per-shard
            # bootstraps and hands every shard the tight global radius to
            # prune against, plus the exact distances already paid for.
            bootstrap = (
                self._global_bootstrap(queries, k, alpha, rng)
                if queries and len(self._shards) > 1
                else None
            )
            initial_tau, initial_exact = bootstrap if bootstrap else (None, None)

            def run(shard: _Shard) -> BatchResult:
                return shard.db._run_aknn_batch(
                    queries, k, alpha, method=method, workers=workers, rng=rng,
                    initial_tau=initial_tau, initial_exact=initial_exact,
                )

            shard_batches = self._map_shards(run)
        results: List[AKNNResult] = []
        for qi in range(len(queries)):
            per_shard = [batch.results[qi].neighbors for batch in shard_batches]
            merged = self._merge_topk(per_shard, k)
            per_query_stats = QueryStats(
                distance_evaluations=sum(
                    batch.results[qi].stats.distance_evaluations
                    for batch in shard_batches
                ),
                aknn_calls=1,
            )
            results.append(
                AKNNResult(
                    neighbors=merged, k=k, alpha=alpha, method=method,
                    stats=per_query_stats,
                )
            )

        stats = QueryStats()
        for batch in shard_batches:
            stats.merge(batch.stats)
        stats.aknn_calls = len(queries)
        stats.elapsed_seconds = timer.stop()
        stats.extra["batch_queries"] = float(len(queries))
        stats.extra["shard_fanouts"] = float(len(self._shards))
        if stats.elapsed_seconds > 0.0:
            stats.extra["throughput_qps"] = len(queries) / stats.elapsed_seconds
        return BatchResult(results=results, k=k, alpha=alpha, method=method, stats=stats)

    def _range_single(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RangeSearchResult:
        """All objects within ``radius`` at ``alpha``: union of shard answers."""
        timer = Timer().start()

        def run(shard: _Shard) -> RangeSearchResult:
            with shard.lock.read():
                return shard.db._range.search(query, alpha, radius, rng=rng)

        per_shard = self._map_shards(run)
        matches = [match for result in per_shard for match in result.matches]
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        stats = QueryStats()
        for result in per_shard:
            stats.merge(result.stats)
        stats.range_calls = 1
        stats.elapsed_seconds = timer.stop()
        stats.extra["shard_fanouts"] = float(len(self._shards))
        return RangeSearchResult(matches=matches, radius=radius, alpha=alpha, stats=stats)

    def _run_reverse_bucket(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
    ) -> List[ReverseKNNResult]:
        """Answer a bucket of reverse AKNN queries sharing ``(k, alpha)``.

        The sharded analogue of
        :meth:`~repro.core.reverse_nn.ReverseAKNNSearcher.search_batch`:

        1. every shard exports its ``(n_s, d)`` Equation-2 box arrays from
           the leaf SoA views (one gather, under all shard read locks);
        2. each shard evaluates the all-pairs disqualification test for *its*
           rows against the **global** box set in parallel — so candidate
           sets are exactly as tight as the unsharded filter — and the
           surviving candidates merge globally;
        3. every shard verifies the merged candidate list through its batch
           executor with the globally valid per-candidate radii
           (``d_alpha(A, Q)``, maximised over the bucket), and per-candidate
           (k+1)-NN lists merge across shards before the membership count.

        Holding every shard's read lock for the whole pass keeps the radii
        and the owner snapshot consistent under live updates.
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        if method not in REVERSE_METHODS:
            raise InvalidQueryError(
                f"unknown reverse-kNN method {method!r}; "
                f"expected one of {REVERSE_METHODS}"
            )
        queries = list(queries)
        if not queries:
            return []
        timer = Timer().start()
        n_queries = len(queries)
        accesses_before = sum(
            shard.db.store.statistics.object_accesses for shard in self._shards
        )

        # The per-shard calls below run on fan-out threads while this thread
        # holds every read lock, so they must stay lock-free (the RW lock is
        # not reentrant and writer preference would deadlock nested reads).
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.lock.read())

            gathered = self._map_shards(
                lambda shard: shard.db.tree.leaf_alpha_bounds(alpha)
            )
            parts = [g for g in gathered if g[0].shape[0] > 0]
            if not parts:
                self.metrics.increment(MetricsCollector.REVERSE_QUERIES, n_queries)
                return [
                    self._empty_reverse_result(k, alpha, method, timer.stop())
                    for _ in queries
                ]
            ids = np.concatenate([g[0] for g in parts])
            box_lo = np.concatenate([g[1] for g in parts])
            box_hi = np.concatenate([g[2] for g in parts])
            # Row ranges of each shard within the concatenated global arrays.
            spans: Dict[int, Tuple[int, int]] = {}
            offset = 0
            for shard_index, g in enumerate(gathered):
                rows = g[0].shape[0]
                spans[shard_index] = (offset, offset + rows)
                offset += rows

            prepared = [PreparedQuery(q, alpha, self.config, rng) for q in queries]
            if method == "linear":
                masks = np.ones((n_queries, ids.shape[0]), dtype=bool)
            else:
                thresholds = query_filter_thresholds(prepared, box_lo, box_hi)

                def filter_rows(shard: _Shard) -> Optional[np.ndarray]:
                    start, stop = spans[shard.index]
                    if start == stop:
                        return None
                    return certainly_closer_counts(
                        box_lo[start:stop],
                        box_hi[start:stop],
                        box_lo,
                        box_hi,
                        thresholds[:, start:stop],
                        self_index=np.arange(start, stop),
                    )

                blocks = self._map_shards(filter_rows)
                counts = np.concatenate(
                    [b for b in blocks if b is not None], axis=1
                )
                masks = counts < k

            # Each candidate row came from a known shard span, so its object
            # can be fetched from the owning store without the owner map.
            # Candidate prep (union, exact distances, shared radii, seeds) is
            # the same plan the unsharded engine runs; only the fetch and the
            # verification fan-out differ.
            shard_of_row = np.empty(ids.shape[0], dtype=np.int64)
            for shard_index, (start, stop) in spans.items():
                shard_of_row[start:stop] = shard_index
            metrics = MetricsCollector()
            plan = plan_bucket_verification(
                prepared,
                masks,
                ids,
                lambda row: self._shards[int(shard_of_row[row])].db.store.get(
                    int(ids[row])
                ),
                alpha,
                metrics,
            )
            if plan is None:
                self.metrics.increment(MetricsCollector.REVERSE_QUERIES, n_queries)
                elapsed = timer.stop()
                return [
                    self._empty_reverse_result(
                        k, alpha, method, elapsed, candidates=0.0
                    )
                    for _ in queries
                ]
            shard_batches = self._map_shards(
                lambda shard: shard.db._run_aknn_batch(
                    plan.cand_objs, k + 1, alpha, rng=rng,
                    initial_tau=plan.tau, initial_exact=plan.seeds,
                )
            )

        merged = [
            self._merge_topk(
                [batch.results[j].neighbors for batch in shard_batches], k + 1
            )
            for j in range(len(plan.cand_ids))
        ]
        elapsed = timer.stop()
        self.metrics.increment(MetricsCollector.REVERSE_QUERIES, n_queries)
        self.metrics.increment(MetricsCollector.REVERSE_CANDIDATES, len(plan.cand_ids))
        memberships, distance_maps = collect_memberships(
            k, plan.cand_ids, merged, plan.per_query_cols, plan.per_query_dists
        )
        return build_bucket_results(
            k,
            alpha,
            method,
            elapsed,
            masks,
            memberships,
            distance_maps,
            plan.probes,
            totals={
                "object_accesses": sum(
                    shard.db.store.statistics.object_accesses
                    for shard in self._shards
                )
                - accesses_before,
                "node_accesses": sum(
                    batch.stats.node_accesses for batch in shard_batches
                ),
                "distance_evaluations": metrics.get(
                    MetricsCollector.DISTANCE_EVALUATIONS
                )
                + sum(batch.stats.distance_evaluations for batch in shard_batches),
                "lower_bound_evaluations": sum(
                    batch.stats.lower_bound_evaluations for batch in shard_batches
                ),
                "upper_bound_evaluations": sum(
                    batch.stats.upper_bound_evaluations for batch in shard_batches
                ),
            },
            extra_common={
                "batch_reverse_queries": float(n_queries),
                "shard_fanouts": float(len(self._shards)),
            },
        )

    @staticmethod
    def _empty_reverse_result(
        k: int,
        alpha: float,
        method: str,
        elapsed: float,
        candidates: float = 0.0,
    ) -> ReverseKNNResult:
        return ReverseKNNResult(
            object_ids=[],
            distances={},
            k=k,
            alpha=alpha,
            method=method,
            stats=QueryStats(
                elapsed_seconds=elapsed, extra={"candidates": candidates}
            ),
        )

    # ------------------------------------------------------------------
    # Deprecated per-type shims (delegate to the request surface)
    # ------------------------------------------------------------------
    def aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        """Deprecated: use ``execute(AknnRequest(...))``."""
        warn_legacy("ShardedDatabase.aknn()", "execute(AknnRequest(...))")
        return self.execute(
            AknnRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )

    def aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> BatchResult:
        """Deprecated: use ``execute_batch([AknnRequest(...), ...])``.

        Kept for the batch-level :class:`BatchResult` telemetry; the unified
        surface returns plain per-request results instead.
        """
        warn_legacy(
            "ShardedDatabase.aknn_batch()", "execute_batch([AknnRequest(...), ...])"
        )
        return self._run_aknn_batch(
            queries, k, alpha, method=method, workers=workers, rng=rng
        )

    def rknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha_range: Tuple[float, float],
        method: str = "rss_icr",
        aknn_method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> RKNNResult:
        """Deprecated: use ``execute(SweepRequest(...))``."""
        warn_legacy("ShardedDatabase.rknn()", "execute(SweepRequest(...))")
        return self.execute(
            SweepRequest(
                query, k=k, alpha_range=tuple(alpha_range),
                method=method, aknn_method=aknn_method,
            ),
            rng=rng,
        )

    def range_search(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RangeSearchResult:
        """Deprecated: use ``execute(RangeRequest(...))``."""
        warn_legacy("ShardedDatabase.range_search()", "execute(RangeRequest(...))")
        return self.execute(RangeRequest(query, alpha=alpha, radius=radius), rng=rng)

    def reverse_aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
    ) -> ReverseKNNResult:
        """Deprecated: use ``execute(ReverseRequest(...))``."""
        warn_legacy("ShardedDatabase.reverse_aknn()", "execute(ReverseRequest(...))")
        return self.execute(
            ReverseRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )

    def reverse_aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
    ) -> List[ReverseKNNResult]:
        """Deprecated: use ``execute_batch([ReverseRequest(...), ...])``."""
        warn_legacy(
            "ShardedDatabase.reverse_aknn_batch()",
            "execute_batch([ReverseRequest(...), ...])",
        )
        return self.execute_batch(
            [
                ReverseRequest(query, k=k, alpha=alpha, method=method)
                for query in queries
            ],
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def insert(
        self,
        obj: FuzzyObject,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Add one object to the running database; returns its id.

        The owning shard is chosen by the placement policy; the insert holds
        that shard's write lock, so concurrent queries see either the old or
        the new index state, never a partial mutation.  The object's geometry
        is validated first — a non-finite support centre would otherwise be
        mis-routed (or poison distance evaluations) after the owner map and
        id watermark were already touched.
        """
        center = obj.require_finite().support_mbr().center
        with self._admin_lock:
            if obj.object_id is None:
                object_id = self._next_id
                obj = obj.with_id(object_id)
            else:
                object_id = int(obj.object_id)
                if object_id in self._owners:
                    raise StorageError(f"object id {object_id} already stored")
            self._next_id = max(self._next_id, object_id + 1)
        shard_index = self.placement.shard_for(object_id, center)
        shard = self._shards[shard_index]
        with shard.lock.write():
            shard.db.insert(obj, rng=rng)
        with self._admin_lock:
            self._owners[object_id] = shard_index
            self.metrics.increment(MetricsCollector.LIVE_INSERTS)
        self._epoch.advance()
        return object_id

    def delete(self, object_id: int) -> None:
        """Remove one object from the running database."""
        object_id = int(object_id)
        shard = self._owner_shard(object_id)
        with shard.lock.write():
            shard.db.delete(object_id)
        with self._admin_lock:
            self._owners.pop(object_id, None)
            self.metrics.increment(MetricsCollector.LIVE_DELETES)
        self._epoch.advance()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard.db) for shard in self._shards)

    def object_ids(self) -> List[int]:
        """Ids of every stored object, across all shards."""
        with self._admin_lock:
            return sorted(self._owners)

    def get_object(self, object_id: int) -> FuzzyObject:
        """Probe one object from its owning shard's store."""
        shard = self._owner_shard(object_id)
        with shard.lock.read():
            return shard.db.get_object(object_id)

    def reset_statistics(self) -> None:
        """Zero every shard store's access counters."""
        for shard in self._shards:
            shard.db.reset_statistics()

    @property
    def object_accesses(self) -> int:
        """Total object accesses across shards since the last reset."""
        return sum(shard.db.object_accesses for shard in self._shards)

    def validate(self) -> None:
        """Check per-shard index invariants and owner-map consistency."""
        for shard in self._shards:
            shard.db.validate()
        indexed = {
            object_id for shard in self._shards for object_id in shard.db.object_ids()
        }
        with self._admin_lock:
            owned = set(self._owners)
        if indexed != owned:
            raise StorageError(
                f"owner map drifted: {len(owned)} owned vs {len(indexed)} indexed"
            )

    def close(self) -> None:
        """Shut the fan-out pool down and close every shard store."""
        with self._admin_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for shard in self._shards:
            shard.db.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Merge helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_aknn_args(k: int, method: str) -> None:
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if method not in AKNN_METHODS:
            raise InvalidQueryError(
                f"unknown AKNN method {method!r}; expected one of {AKNN_METHODS}"
            )

    def _resolve_exact(
        self,
        db: FuzzyDatabase,
        neighbors: Sequence[Neighbor],
        query: FuzzyObject,
        alpha: float,
    ) -> List[Neighbor]:
        """Probe lazily-confirmed neighbours so the merge compares exact values."""
        resolved: List[Neighbor] = []
        for neighbor in neighbors:
            if neighbor.distance is None:
                obj = db.store.get(neighbor.object_id)
                distance = alpha_distance(
                    obj, query, alpha, use_kdtree=self.config.use_kdtree
                )
                neighbor = Neighbor(
                    object_id=neighbor.object_id,
                    distance=distance,
                    lower_bound=distance,
                    upper_bound=distance,
                    probed=True,
                )
            resolved.append(neighbor)
        return resolved

    @staticmethod
    def _merge_topk(
        per_shard: Sequence[Sequence[Neighbor]], k: int
    ) -> List[Neighbor]:
        """Global top-k across shard answers (distance, then object id)."""
        merged = [neighbor for neighbors in per_shard for neighbor in neighbors]
        merged.sort(key=lambda n: (n.distance, n.object_id))
        return merged[:k]


# ----------------------------------------------------------------------
# Federated building blocks for the RKNN sweep
# ----------------------------------------------------------------------
class _FederatedStore:
    """Routes store reads to the owning shard; aggregates statistics.

    Implements exactly the slice of the :class:`ObjectStore` interface the
    RKNN searcher consumes (``get``, ``object_ids``, ``statistics``), so the
    sweep algorithms run unmodified over the partitioned data.
    """

    def __init__(self, sharded: ShardedDatabase):
        self._sharded = sharded

    def get(self, object_id: int) -> FuzzyObject:
        shard = self._sharded._owner_shard(object_id)
        with shard.lock.read():
            return shard.db.store.get(object_id)

    def object_ids(self) -> List[int]:
        return self._sharded.object_ids()

    @property
    def statistics(self) -> StoreStatistics:
        """Summed counters across shard stores (snapshot-compatible)."""
        total = StoreStatistics()
        for shard in self._sharded._shards:
            stats = shard.db.store.statistics
            total.object_accesses += stats.object_accesses
            total.physical_reads += stats.physical_reads
            total.bytes_read += stats.bytes_read
            total.bytes_written += stats.bytes_written
            total.cache_hits += stats.cache_hits
            total.deletes += stats.deletes
        return total


class _FanoutAKNNAdapter:
    """AKNN-searcher facade over the sharded fan-out (for the RKNN sweep)."""

    def __init__(self, sharded: ShardedDatabase):
        self._sharded = sharded

    def search(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        return self._sharded._aknn_single(query, k, alpha, method=method, rng=rng)


class _FanoutRangeAdapter:
    """Range-searcher facade collecting candidates from every shard."""

    def __init__(self, sharded: ShardedDatabase):
        self._sharded = sharded

    def collect(
        self,
        prepared,
        radius: float,
        use_improved_bounds: bool = True,
    ) -> Tuple[List[Tuple[int, float]], Dict[int, FuzzyObject]]:
        matches: List[Tuple[int, float]] = []
        objects: Dict[int, FuzzyObject] = {}
        for shard in self._sharded._shards:
            with shard.lock.read():
                shard_matches, shard_objects = shard.db._range.collect(
                    prepared, radius, use_improved_bounds=use_improved_bounds
                )
            matches.extend(shard_matches)
            objects.update(shard_objects)
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        return matches, objects


class _FederatedRKNNSearcher(RKNNSearcher):
    """The stock RKNN sweep running on federated sub-query building blocks.

    Every index-backed primitive the four method variants touch — the AKNN
    call fixing radii, the range search collecting candidates, and the store
    probes materialising distance profiles — is swapped for its globally
    correct fan-out equivalent; the sweep logic itself is inherited verbatim,
    so qualifying ranges match the single-tree searcher exactly.
    """

    def __init__(self, sharded: ShardedDatabase, config: RuntimeConfig):
        super().__init__(_FederatedStore(sharded), None, config)
        self.aknn_searcher = _FanoutAKNNAdapter(sharded)
        self.range_searcher = _FanoutRangeAdapter(sharded)
