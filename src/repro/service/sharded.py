"""A partitioned database with parallel shard fan-out and global merging.

:class:`ShardedDatabase` splits a dataset across ``N`` independent
:class:`~repro.core.database.FuzzyDatabase` shards, each owning its own
object store, R-tree, SoA views and batch executor.  Placement is pluggable
(:mod:`repro.service.placement`): hash placement balances shards uniformly,
space placement stripes the first spatial axis so nearby objects share a
shard.

Queries fan out to every shard in parallel (one pool thread per shard) and
the per-shard answers are merged globally:

* **AKNN / batched AKNN** — each shard answers its local top-k; the global
  answer is the k smallest exact distances across shards (ties broken by
  object id).  Lazily-confirmed local neighbours are probed inside the
  shard's read section so the merge always compares exact distances.
* **Range search** — the union of the per-shard matches.
* **RKNN** — the sweep algorithms of :mod:`repro.core.rknn` run unchanged
  against federated building blocks: a fan-out AKNN, a fan-out range
  collector and a store router, so every sub-query is globally correct and
  the returned qualifying ranges are identical to the single-tree path.

Live updates (:meth:`insert` / :meth:`delete`) route through the placement
policy to the owning shard and take that shard's write lock, so in-flight
queries never observe a half-applied R-tree mutation; each mutation advances
the database epoch.  Object ids are globally unique and never recycled.

With :meth:`ShardedDatabase.enable_durability` each shard additionally logs
its mutations to its own WAL inside a per-shard subdirectory and snapshots
independently; :meth:`ShardedDatabase.recover` heals a crashed directory
shard by shard (snapshot + WAL tail replay + STR bulk load).  Registered
update listeners (:meth:`add_update_listener` — the subscription engine)
are notified after each mutation commits and its shard lock is released.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.config import RuntimeConfig
from repro.core.aknn import AKNN_METHODS
from repro.core.database import FuzzyDatabase
from repro.core.executor import _BOOTSTRAP_EXTRA, _exact_min_distances
from repro.core.query import PreparedQuery
from repro.core.requests import (
    AknnRequest,
    QueryRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
    execute_plan,
    warn_legacy,
)
from repro.core.results import (
    AKNNResult,
    BatchResult,
    Coverage,
    Neighbor,
    QueryStats,
    RangeSearchResult,
    RKNNResult,
)
from repro.core.reverse_nn import (
    REVERSE_METHODS,
    ReverseKNNResult,
    build_bucket_results,
    collect_memberships,
    plan_bucket_verification,
    query_filter_thresholds,
)
from repro.core.rknn import RKNNSearcher
from repro.exceptions import (
    DeadlineExceededError,
    InvalidQueryError,
    ObjectNotFoundError,
    ShardUnavailableError,
    StorageError,
)
from repro.fuzzy.alpha_distance import alpha_distance
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.index.soa import certainly_closer_counts
from repro.metrics.counters import MetricsCollector, SharedMetricsCollector
from repro.metrics.timer import Timer
from repro.service.concurrency import EpochCounter, ReadWriteLock
from repro.service.faults import FaultPlan
from repro.service.placement import make_placement
from repro.service.policy import CircuitBreaker, RetryPolicy
from repro.storage.object_store import StoreStatistics
from repro.storage.snapshot import Manifest, read_manifest, write_manifest

try:  # scipy is a hard dependency; keep the import failure readable.
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - scipy is always installed in CI
    cKDTree = None

T = TypeVar("T")


class _Shard:
    """One partition: a FuzzyDatabase, its readers/writer lock, its breaker."""

    __slots__ = ("index", "db", "lock", "breaker")

    def __init__(self, index: int, db: FuzzyDatabase, breaker: CircuitBreaker):
        self.index = index
        self.db = db
        self.lock = ReadWriteLock()
        self.breaker = breaker


class _ShardFailure(Exception):
    """Internal: one shard could not answer (retries exhausted / breaker open).

    Never escapes the sharded fan-out — it is converted into partial
    coverage or a :class:`~repro.exceptions.ShardUnavailableError`.
    """

    def __init__(self, shard_index: int, reason: str):
        super().__init__(f"shard {shard_index}: {reason}")
        self.shard_index = int(shard_index)
        self.reason = reason


class _FanoutFailure(Exception):
    """Internal: one fan-out pass lost shards (all failures of the pass).

    Raised by the strict (coupled) fan-out maps; the exclusion loop catches
    it, removes the lost shards from the live set, and reruns the pass so
    the surviving shards' answers stay exactly what a fresh query against
    only those shards would return.
    """

    def __init__(self, failures: Dict[int, str]):
        super().__init__(f"shards failed: {sorted(failures)}")
        self.failures = dict(failures)


class ShardedDatabase:
    """A collection of fuzzy objects partitioned across independent shards."""

    def __init__(
        self,
        shards: Sequence[FuzzyDatabase],
        placement,
        owners: Dict[int, int],
        config: Optional[RuntimeConfig] = None,
    ):
        if not shards:
            raise ValueError("a sharded database needs at least one shard")
        self.config = (config or RuntimeConfig()).validate()
        self.placement = placement
        self._shards = [
            _Shard(i, db, CircuitBreaker.from_config(self.config))
            for i, db in enumerate(shards)
        ]
        self._owners = dict(owners)
        # Failure policy: retries for transient per-shard read failures, one
        # breaker per shard (held by the _Shard), and an optional fault plan
        # installed by chaos tests / `serve --fault-plan`.  The plan hook is
        # a single `is None` check on the fan-out path — zero overhead when
        # disabled.
        self.retry_policy = RetryPolicy.from_config(self.config)
        self.fault_plan: Optional[FaultPlan] = None
        self._durable_dir: Optional[Path] = None
        self._update_listeners: List = []
        self._admin_lock = threading.Lock()
        self._next_id = max(self._owners, default=-1) + 1
        self._epoch = EpochCounter()
        self._pool: Optional[ThreadPoolExecutor] = None
        self.metrics = SharedMetricsCollector()
        self._rknn = _FederatedRKNNSearcher(self, self.config)
        # ((total size, summed tree mutations), KD-tree over every shard's
        # representative points, aligned object ids); rebuilt lazily after
        # any mutation — the global analogue of the executor's local index.
        self._rep_index: Optional[Tuple[Tuple[int, int], object, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[FuzzyObject],
        n_shards: Optional[int] = None,
        placement: Optional[str] = None,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "ShardedDatabase":
        """Partition ``objects`` and build one index per shard.

        Objects without an id receive globally-sequential ids; explicit ids
        must be unique across the whole database.  ``n_shards`` and
        ``placement`` default to the config's ``service_shards`` /
        ``shard_placement``.
        """
        config = (config or RuntimeConfig()).validate()
        n_shards = config.service_shards if n_shards is None else int(n_shards)
        policy_name = placement or config.shard_placement
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")

        # Two passes: ids first (explicit ids win, the rest fill the gaps),
        # then placement, which may need every centre to fit stripes.
        materialised: List[FuzzyObject] = []
        raw = list(objects)
        used = {int(o.object_id) for o in raw if o.object_id is not None}
        if len(used) != sum(1 for o in raw if o.object_id is not None):
            raise StorageError("explicit object ids must be unique")
        next_free = 0
        for obj in raw:
            if obj.object_id is None:
                while next_free in used:
                    next_free += 1
                used.add(next_free)
                obj = obj.with_id(next_free)
            materialised.append(obj)

        centers = np.asarray(
            [obj.support_mbr().center for obj in materialised], dtype=float
        ) if materialised else np.empty((0, 1))
        policy = make_placement(policy_name, n_shards, centers)

        per_shard: List[List[FuzzyObject]] = [[] for _ in range(n_shards)]
        owners: Dict[int, int] = {}
        for obj, center in zip(materialised, centers):
            shard_index = policy.shard_for(int(obj.object_id), center)
            per_shard[shard_index].append(obj)
            owners[int(obj.object_id)] = shard_index

        shards = [
            FuzzyDatabase.build(shard_objects, config=config, rng=rng)
            for shard_objects in per_shard
        ]
        return cls(shards, policy, owners, config=config)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @staticmethod
    def _shard_dir(directory: Path, index: int) -> Path:
        return directory / f"shard-{index:04d}"

    @property
    def durable(self) -> bool:
        """Whether every shard logs its mutations to a per-shard WAL."""
        return self._durable_dir is not None

    def _wal_fault_hook(self, shard_index: int) -> Callable[[], None]:
        """A WAL-append injection point wired to the *current* fault plan.

        The closure re-reads ``self.fault_plan`` on every call, so chaos
        tests can install or swap a plan after durability was enabled —
        exactly like the query fan-out hook.
        """

        def hook() -> None:
            plan = self.fault_plan
            if plan is not None:
                plan.invoke(shard_index, "wal_append")

        return hook

    def _write_toplevel_manifest(self, directory: Path) -> None:
        write_manifest(
            directory,
            Manifest(
                kind="sharded",
                n_shards=len(self._shards),
                extra={"placement": getattr(self.placement, "name", "hash")},
            ),
        )

    def enable_durability(self, directory: os.PathLike | str) -> "ShardedDatabase":
        """Attach per-shard WAL + snapshot cycles rooted at ``directory``.

        Each shard gets its own subdirectory (``shard-0000/`` ...) holding a
        self-contained snapshot plus WAL, so shards fail — and recover —
        independently; a top-level manifest records the shard count and the
        placement policy for :meth:`recover`.  WAL appends run while the
        owning shard's write lock is held, so log order matches apply order
        per shard; cross-shard ordering is irrelevant because every object
        lives in exactly one shard and ids are never recycled.
        """
        if self._durable_dir is not None:
            raise StorageError("durability already enabled for this database")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for shard in self._shards:
            sub = self._shard_dir(directory, shard.index)
            sub.mkdir(parents=True, exist_ok=True)
            with shard.lock.write():
                shard.db.enable_durability(
                    sub, fault_hook=self._wal_fault_hook(shard.index)
                )
        self._write_toplevel_manifest(directory)
        self._durable_dir = directory
        return self

    @classmethod
    def recover(
        cls,
        path: os.PathLike | str,
        config: Optional[RuntimeConfig] = None,
        rng: Optional[np.random.Generator] = None,
        *,
        resume: bool = True,
    ) -> "ShardedDatabase":
        """Rebuild a sharded database from its durable directory after a crash.

        Every shard recovers independently (snapshot + WAL tail replay + one
        STR bulk load), so a crash that tore only some shards' logs heals
        exactly those shards; the owner map is rebuilt from actual shard
        membership and the id watermark from the recovered stores, so no
        recycled id can ever collide with a logged one.  The placement
        policy is rebuilt from the manifest (``space`` boundaries are refit
        to the recovered centres — that only affects where *future* inserts
        land, never query correctness, since queries fan out everywhere and
        deletes route via the owner map).
        """
        directory = Path(path)
        manifest = read_manifest(directory)
        if manifest.kind != "sharded":
            raise StorageError(
                f"manifest at {directory} describes a {manifest.kind!r} database; "
                f"use FuzzyDatabase.recover() for single-node directories"
            )
        config = (config or RuntimeConfig()).validate()
        shard_dbs = [
            FuzzyDatabase.recover(
                cls._shard_dir(directory, index), config=config, rng=rng,
                resume=resume,
            )
            for index in range(int(manifest.n_shards))
        ]
        owners: Dict[int, int] = {}
        centers: List[np.ndarray] = []
        for index, db in enumerate(shard_dbs):
            for object_id, summary in db.summaries.items():
                owners[int(object_id)] = index
                centers.append(summary.support_mbr.center)
        policy = make_placement(
            str(manifest.extra.get("placement", config.shard_placement)),
            int(manifest.n_shards),
            np.asarray(centers, dtype=float) if centers else None,
        )
        instance = cls(shard_dbs, policy, owners, config=config)
        instance._durable_dir = directory
        for index, db in enumerate(shard_dbs):
            # Fold the per-shard recovery counters (WAL_REPLAYED, RECOVERIES,
            # BULK_LOADS, ...) into the global collector, then arm the WAL
            # fault hooks now that `instance` exists to route through.
            instance.metrics.merge(db.metrics)
            if resume and db.wal is not None:
                db.wal.fault_hook = instance._wal_fault_hook(index)
        return instance

    # ------------------------------------------------------------------
    # Standing-query listeners
    # ------------------------------------------------------------------
    def add_update_listener(self, listener) -> None:
        """Register an object with ``notify_insert`` / ``notify_delete``.

        Listeners fire *after* the owning shard's write lock is released and
        the epoch has advanced, so a listener that re-queries (the
        subscription engine's delete path) sees the post-mutation state and
        cannot deadlock against the mutation's lock.
        """
        self._update_listeners.append(listener)

    def remove_update_listener(self, listener) -> None:
        try:
            self._update_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_insert(self, obj: FuzzyObject) -> None:
        for listener in list(self._update_listeners):
            listener.notify_insert(obj)

    def _notify_delete(self, object_id: int) -> None:
        for listener in list(self._update_listeners):
            listener.notify_delete(object_id)

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def epoch(self) -> int:
        """Number of live mutations applied since construction."""
        return self._epoch.value

    def shard_sizes(self) -> List[int]:
        """Object count per shard (placement-balance diagnostics)."""
        return [len(shard.db) for shard in self._shards]

    def _fanout_pool(self) -> ThreadPoolExecutor:
        with self._admin_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self._shards),
                    thread_name_prefix="shard-fanout",
                )
            return self._pool

    def _map_pool(self, shards: Sequence[_Shard], fn: Callable[[_Shard], T]) -> List[T]:
        """Apply ``fn`` to each of ``shards``, in parallel when several."""
        self.metrics.increment(MetricsCollector.SHARD_FANOUTS, len(shards))
        if len(shards) == 1:
            return [fn(shards[0])]
        return list(self._fanout_pool().map(fn, shards))

    def _owner_shard(self, object_id: int) -> _Shard:
        with self._admin_lock:
            shard_index = self._owners.get(int(object_id))
        if shard_index is None:
            raise ObjectNotFoundError(f"object {object_id} is not in the database")
        return self._shards[shard_index]

    # ------------------------------------------------------------------
    # Failure-policy plumbing
    # ------------------------------------------------------------------
    def _admit_shards(self) -> Tuple[List[_Shard], Dict[int, str]]:
        """Split the shards into a live set and a breaker-shed set.

        ``allow()`` is called exactly once per shard per query — it consumes
        half-open probe slots, so neither retry loops nor rerun passes may
        call it again for the same query.
        """
        live: List[_Shard] = []
        failed: Dict[int, str] = {}
        for shard in self._shards:
            if shard.breaker.allow():
                live.append(shard)
            else:
                failed[shard.index] = "circuit breaker open"
        if failed:
            self.metrics.increment(MetricsCollector.BREAKER_SHED, len(failed))
        return live, failed

    def _invoke_shard(
        self,
        shard: _Shard,
        op: str,
        fn: Callable[[_Shard], T],
        deadline=None,
    ) -> T:
        """One shard call with fault injection, retries and breaker accounting.

        Every query in this system is an idempotent read, so transient worker
        failures retry with capped exponential backoff (full jitter).  The
        breaker records one failure per *exhausted* invocation, not one per
        attempt.  Deadline expiry aborts without blaming the shard.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.invoke(shard.index, op)
                result = fn(shard)
            except DeadlineExceededError:
                raise
            except Exception as error:  # noqa: BLE001 - isolation boundary
                attempt += 1
                expired = deadline is not None and deadline.expired()
                if attempt < policy.max_attempts and not expired:
                    self.metrics.increment(MetricsCollector.RETRIES)
                    delay = policy.delay_seconds(attempt - 1)
                    if deadline is not None:
                        delay = min(delay, max(deadline.remaining_ms(), 0.0) / 1000.0)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                if shard.breaker.record_failure():
                    self.metrics.increment(MetricsCollector.BREAKER_OPEN)
                if expired:
                    raise DeadlineExceededError(
                        f"deadline expired during shard {shard.index} {op}"
                    ) from error
                raise _ShardFailure(
                    shard.index, f"{type(error).__name__}: {error}"
                ) from error
            else:
                shard.breaker.record_success()
                return result

    def _map_outcomes(
        self,
        shards: Sequence[_Shard],
        op: str,
        fn: Callable[[_Shard], T],
        deadline=None,
    ) -> List[Tuple[str, object]]:
        """Isolated fan-out: every shard finishes; failures become outcomes.

        The wrapper catches everything so the pool map always completes every
        shard before the caller inspects the outcomes — callers holding read
        locks must not release them while a fan-out thread is still reading.
        Returns ``("ok", result) | ("deadline", error) | ("fail", reason)``
        per shard, aligned with ``shards``; a deadline outcome is re-raised
        once the barrier has been crossed.
        """

        def guarded(shard: _Shard) -> Tuple[str, object]:
            try:
                return ("ok", self._invoke_shard(shard, op, fn, deadline=deadline))
            except DeadlineExceededError as error:
                return ("deadline", error)
            except _ShardFailure as error:
                return ("fail", error.reason)

        outcomes = self._map_pool(shards, guarded)
        for kind, value in outcomes:
            if kind == "deadline":
                raise value
        return outcomes

    def _map_strict(
        self,
        shards: Sequence[_Shard],
        op: str,
        fn: Callable[[_Shard], T],
        deadline=None,
    ) -> List[T]:
        """Coupled fan-out: all results, or a :class:`_FanoutFailure` naming
        every shard lost in this pass (for the caller's exclusion loop)."""
        outcomes = self._map_outcomes(shards, op, fn, deadline=deadline)
        failures = {
            shard.index: value
            for shard, (kind, value) in zip(shards, outcomes)
            if kind == "fail"
        }
        if failures:
            raise _FanoutFailure(failures)
        return [value for _, value in outcomes]

    @staticmethod
    def _drop_lost(
        live: List[_Shard], failure: _FanoutFailure, failed: Dict[int, str]
    ) -> List[_Shard]:
        """Shrink ``live`` by the shards a pass lost; guards non-progress.

        A :class:`_FanoutFailure` naming no live shard would rerun the same
        pass forever, so it escalates to total unavailability instead.
        """
        failed.update(failure.failures)
        lost = set(failure.failures)
        remaining = [shard for shard in live if shard.index not in lost]
        if len(remaining) == len(live):
            return []
        return remaining

    def _coverage(
        self, answered: Sequence[_Shard], failed: Dict[int, str]
    ) -> Coverage:
        """Describe which shards produced this answer, at which epochs."""
        return Coverage(
            total_shards=len(self._shards),
            answered=tuple(shard.index for shard in answered),
            failed=tuple(sorted(failed)),
            reasons=tuple(sorted(failed.items())),
            epochs=tuple(
                (shard.index, shard.db.tree.mutations) for shard in answered
            ),
            epoch=self.epoch,
        )

    def breaker_retry_after_ms(self) -> float:
        """Longest remaining cool-off across shard breakers (0 if none open)."""
        return max(
            (shard.breaker.retry_after_ms() for shard in self._shards),
            default=0.0,
        )

    def _unavailable(self, failed: Dict[int, str]) -> ShardUnavailableError:
        retry_after = self.breaker_retry_after_ms()
        if retry_after <= 0.0:
            retry_after = self.config.shard_retry_base_ms
        return ShardUnavailableError(
            f"shards {sorted(failed)} unavailable",
            retry_after_ms=retry_after,
            shards=sorted(failed),
            reasons=failed,
        )

    def _shed_fail_closed(self, bucket: Sequence[QueryRequest]):
        """Fast-fail a fail-closed bucket while breakers are still open.

        Uses the non-mutating ``shedding()`` check, so the bucket is shed in
        well under a millisecond without touching the fan-out pool or
        consuming half-open probe slots.  Returns ``None`` when any member
        tolerates a partial answer (the bucket then runs normally and
        per-request finalization sorts the slots out).
        """
        if not any(request.require_full for request in bucket):
            return None
        shedding = {
            shard.index: "circuit breaker open"
            for shard in self._shards
            if shard.breaker.shedding()
        }
        if shedding and all(request.require_full for request in bucket):
            self.metrics.increment(MetricsCollector.BREAKER_SHED, len(bucket))
            return [self._unavailable(shedding)] * len(bucket)
        return None

    def _finalize_slot(self, request: QueryRequest, result):
        """Apply the request's partial-tolerance contract to one result slot."""
        coverage = getattr(result, "coverage", None)
        if coverage is None or coverage.complete:
            return result
        if request.require_full:
            return self._unavailable(dict(coverage.reasons))
        self.metrics.increment(MetricsCollector.PARTIAL_RESULTS)
        return result

    def _finalize_bucket(self, bucket: Sequence[QueryRequest], results: List) -> List:
        return [
            self._finalize_slot(request, result)
            for request, result in zip(bucket, results)
        ]

    # ------------------------------------------------------------------
    # Global pruning-radius bootstrap
    # ------------------------------------------------------------------
    def _global_rep_index(
        self, shards: Sequence[_Shard]
    ) -> Tuple[Optional[object], np.ndarray]:
        """KD-tree over the given shards' representative points (cached).

        The cross-shard analogue of the executor's per-shard index: one
        nominate-and-probe pass against it yields pruning radii that are
        valid over the covered shards, so each shard's traversal prunes as
        tightly as an unsharded one would.  The cache key includes the shard
        set, so a degraded pass (some shards excluded) never reuses radii
        probed from a different snapshot.  The caller must hold the given
        shards' read locks (the batch path does); taking them here would
        deadlock against the non-reentrant writer-preferring lock.
        """
        key = (
            tuple(shard.index for shard in shards),
            sum(len(shard.db) for shard in shards),
            sum(shard.db.tree.mutations for shard in shards),
        )
        cached = self._rep_index
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        reps: List[np.ndarray] = []
        oids: List[int] = []
        for shard in shards:
            for entry in shard.db.tree.leaf_entries():
                reps.append(entry.summary.representative)
                oids.append(entry.object_id)
        if not reps or cKDTree is None:
            return None, np.empty(0, dtype=np.int64)
        tree = cKDTree(np.asarray(reps))
        oid_array = np.asarray(oids, dtype=np.int64)
        self._rep_index = (key, tree, oid_array)
        return tree, oid_array

    def _global_bootstrap(
        self,
        shards: Sequence[_Shard],
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        rng: Optional[np.random.Generator],
    ) -> Optional[Tuple[np.ndarray, List[Dict[int, float]]]]:
        """Globally-valid per-query pruning radii for a batch.

        For each query, the ``k + extra`` objects whose representatives sit
        closest to the query alpha-cut centre are probed exactly (each cut
        fetched once, from its owning shard); the k-th smallest probed
        distance upper-bounds the true global k-th neighbour distance.
        Returns ``(tau, exact)`` — the radii plus the per-query exact
        distances already paid for, which seed the shard executors' memos so
        bootstrap nominees are never re-evaluated.  Returns ``None`` when no
        usable radius can be computed (tiny database, scipy missing) —
        shards then bootstrap locally.  Caller must hold every given shard's
        read lock, and must keep holding it through the fan-out that consumes
        the radii — they are only valid against the snapshot they were probed
        from.
        """
        rep_tree, rep_oids = self._global_rep_index(shards)
        if rep_tree is None or rep_oids.shape[0] < k:
            return None
        prepared = [PreparedQuery(q, alpha, self.config, rng) for q in queries]
        kk = min(k + _BOOTSTRAP_EXTRA, rep_oids.shape[0])
        centers = np.stack(
            [(p.query_mbr.lower + p.query_mbr.upper) / 2.0 for p in prepared]
        )
        _, rep_idx = rep_tree.query(centers, k=kk)
        if kk == 1:
            rep_idx = rep_idx[:, None]
        nominated = rep_oids[rep_idx]
        # Fetch each distinct nominee once, grouped per owning shard so every
        # shard's read lock is taken a single time for the whole group.
        by_shard: Dict[int, List[int]] = {}
        with self._admin_lock:
            for object_id in np.unique(nominated).tolist():
                shard_index = self._owners.get(object_id)
                if shard_index is not None:
                    by_shard.setdefault(shard_index, []).append(object_id)
        cuts: Dict[int, np.ndarray] = {}
        for shard_index, object_ids in by_shard.items():
            store = self._shards[shard_index].db.store
            for object_id in object_ids:
                try:
                    cuts[object_id] = store.get(object_id).alpha_cut(alpha)
                except ObjectNotFoundError:
                    # Deleted before this batch took its locks: skip it.
                    continue
                except Exception as error:  # noqa: BLE001 - isolation boundary
                    # A failing probe blames its shard so the exclusion loop
                    # can rerun the batch against the survivors.
                    raise _FanoutFailure(
                        {
                            shard_index: (
                                f"bootstrap probe failed: "
                                f"{type(error).__name__}: {error}"
                            )
                        }
                    ) from error
        tau = np.full(len(prepared), np.inf)
        exact: List[Dict[int, float]] = [dict() for _ in prepared]
        for qi in range(len(prepared)):
            row = [oid for oid in nominated[qi].tolist() if oid in cuts]
            if len(row) < k:
                continue  # not enough survivors; inf stays a valid radius
            dists = _exact_min_distances(
                prepared[qi].query_cut, [cuts[oid] for oid in row]
            )
            exact[qi] = dict(zip(row, dists.tolist()))
            tau[qi] = float(np.partition(dists, k - 1)[k - 1])
        return tau, exact

    # ------------------------------------------------------------------
    # The query surface (QueryEngine protocol)
    # ------------------------------------------------------------------
    def execute(
        self,
        request: QueryRequest,
        *,
        rng: Optional[np.random.Generator] = None,
    ):
        """Answer one typed request over the whole sharded database."""
        return execute_plan(self, [request], rng=rng)[0]

    def execute_batch(
        self,
        requests: Iterable[QueryRequest],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> List:
        """Answer a submission that may mix request types freely.

        Grouping is identical to the unsharded engine
        (:meth:`FuzzyDatabase.execute_batch`); each per-bucket sub-batch runs
        the sharded fast path (global bootstrap + parallel fan-out + global
        merge) once for the whole bucket.
        """
        return execute_plan(self, list(requests), rng=rng)

    # Bucket hooks consumed by the planners in repro.core.requests.  Each
    # starts with the fail-closed shed fast path, converts total shard loss
    # into per-slot errors, and finalizes every slot against its request's
    # partial-tolerance contract (attach coverage / count a partial / swap in
    # a ShardUnavailableError for ``require_full``).
    def _execute_aknn_bucket(
        self,
        bucket: Sequence[AknnRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List:
        shed = self._shed_fail_closed(bucket)
        if shed is not None:
            return shed
        first = bucket[0]
        try:
            if len(bucket) == 1:
                results = [
                    self._aknn_single(
                        first.query, first.k, first.alpha,
                        method=first.method.value, rng=rng, deadline=deadline,
                    )
                ]
            else:
                self.metrics.increment(MetricsCollector.BATCH_QUERIES, len(bucket))
                batch = self._run_aknn_batch(
                    [request.query for request in bucket],
                    first.k,
                    first.alpha,
                    method=first.method.value,
                    rng=rng,
                    deadline=deadline,
                )
                results = batch.results
        except ShardUnavailableError as error:
            return [error] * len(bucket)
        return self._finalize_bucket(bucket, results)

    def _execute_range_bucket(
        self,
        bucket: Sequence[RangeRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List:
        shed = self._shed_fail_closed(bucket)
        if shed is not None:
            return shed
        results: List = []
        for request in bucket:
            if deadline is not None:
                deadline.check("range bucket")
            try:
                results.append(
                    self._range_single(
                        request.query, request.alpha, request.radius,
                        rng=rng, deadline=deadline,
                    )
                )
            except ShardUnavailableError as error:
                results.append(error)
        return self._finalize_bucket(bucket, results)

    def _execute_sweep_bucket(
        self,
        bucket: Sequence[SweepRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List:
        shed = self._shed_fail_closed(bucket)
        if shed is not None:
            return shed
        live, failed = self._admit_shards()
        results: List = []
        for request in bucket:
            if deadline is not None:
                deadline.check("sweep bucket")
            while True:
                if not live:
                    results.append(self._unavailable(failed))
                    break
                # The sweep's sub-queries must all answer against the same
                # live set, so a mid-sweep shard loss reruns the whole sweep
                # against the survivors (the strict adapters raise
                # _FanoutFailure).  The long-lived searcher serves the
                # undegraded, unbounded case; a degraded or deadline-bounded
                # pass gets an ephemeral searcher pinned to the live set.
                if len(live) == len(self._shards) and deadline is None:
                    searcher = self._rknn
                else:
                    searcher = _FederatedRKNNSearcher(
                        self, self.config, shards=live, deadline=deadline
                    )
                try:
                    result = searcher.search(
                        request.query,
                        request.k,
                        request.alpha_range,
                        method=request.method.value,
                        aknn_method=request.aknn_method.value,
                        rng=rng,
                    )
                except _FanoutFailure as failure:
                    live = self._drop_lost(live, failure, failed)
                    continue
                result.coverage = self._coverage(live, failed)
                results.append(result)
                break
        return self._finalize_bucket(bucket, results)

    def _execute_reverse_bucket(
        self,
        bucket: Sequence[ReverseRequest],
        rng: Optional[np.random.Generator],
        deadline=None,
    ) -> List:
        shed = self._shed_fail_closed(bucket)
        if shed is not None:
            return shed
        first = bucket[0]
        try:
            results = self._run_reverse_bucket(
                [request.query for request in bucket],
                first.k,
                first.alpha,
                method=first.method.value,
                rng=rng,
                deadline=deadline,
            )
        except ShardUnavailableError as error:
            return [error] * len(bucket)
        return self._finalize_bucket(bucket, results)

    # ------------------------------------------------------------------
    # Sharded execution engines
    # ------------------------------------------------------------------
    def _aknn_run(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str,
        rng: Optional[np.random.Generator],
    ) -> Callable[[_Shard], Tuple[List[Neighbor], QueryStats]]:
        """The per-shard AKNN worker shared by the isolated and strict paths."""

        def run(shard: _Shard) -> Tuple[List[Neighbor], QueryStats]:
            with shard.lock.read():
                if len(shard.db) == 0:
                    return [], QueryStats()
                result = shard.db._aknn.search(query, k, alpha, method=method, rng=rng)
                resolved = self._resolve_exact(shard.db, result.neighbors, query, alpha)
                return resolved, result.stats

        return run

    @staticmethod
    def _aknn_merge(
        per_shard: Sequence[Tuple[List[Neighbor], QueryStats]],
        k: int,
        alpha: float,
        method: str,
        timer: Timer,
    ) -> AKNNResult:
        stats = QueryStats()
        for _, shard_stats in per_shard:
            stats.merge(shard_stats)
        stats.aknn_calls = 1
        stats.extra["shard_fanouts"] = float(len(per_shard))
        merged = ShardedDatabase._merge_topk(
            [neighbors for neighbors, _ in per_shard], k
        )
        stats.elapsed_seconds = timer.stop()
        return AKNNResult(
            neighbors=merged, k=k, alpha=alpha, method=method, stats=stats
        )

    def _aknn_single(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> AKNNResult:
        """Global AKNN: per-shard top-k, merged by exact distance.

        Shard failures are isolated: surviving shards' answers merge into a
        partial result whose coverage names the shards that failed.  Raises
        :class:`~repro.exceptions.ShardUnavailableError` only when no shard
        answered at all.
        """
        self._check_aknn_args(k, method)
        if deadline is not None:
            deadline.check("aknn fan-out")
        timer = Timer().start()
        live, failed = self._admit_shards()
        if not live:
            raise self._unavailable(failed)
        run = self._aknn_run(query, k, alpha, method, rng)
        outcomes = self._map_outcomes(live, "aknn", run, deadline=deadline)
        answered: List[_Shard] = []
        per_shard: List[Tuple[List[Neighbor], QueryStats]] = []
        for shard, (kind, value) in zip(live, outcomes):
            if kind == "ok":
                answered.append(shard)
                per_shard.append(value)
            else:
                failed[shard.index] = value
        if not answered:
            raise self._unavailable(failed)
        result = self._aknn_merge(per_shard, k, alpha, method, timer)
        result.coverage = self._coverage(answered, failed)
        return result

    def _aknn_on(
        self,
        shards: Sequence[_Shard],
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> AKNNResult:
        """Strict AKNN over a fixed shard set (RKNN sweep building block).

        Raises :class:`_FanoutFailure` on any shard loss: a sweep's
        sub-queries must all answer against the same live set, so the sweep's
        exclusion loop reruns the whole sweep against the survivors rather
        than merging a silently partial sub-answer into its ranges.
        """
        self._check_aknn_args(k, method)
        if deadline is not None:
            deadline.check("aknn fan-out")
        timer = Timer().start()
        run = self._aknn_run(query, k, alpha, method, rng)
        per_shard = self._map_strict(shards, "aknn", run, deadline=deadline)
        return self._aknn_merge(per_shard, k, alpha, method, timer)

    def _run_aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> BatchResult:
        """Batched AKNN with shard-failure isolation.

        The batch is *coupled* across shards — the globally bootstrapped
        pruning radii fold every shard's nominees together, so a mid-pass
        shard failure cannot simply drop that shard's slice (a dead shard's
        nominee could have set a radius that over-prunes a survivor).
        Instead the whole pass reruns against the surviving shards only,
        which makes the partial answer exactly what a fresh query against
        those shards would return.
        """
        self._check_aknn_args(k, method)
        queries = list(queries)
        live, failed = self._admit_shards()
        while True:
            if not live:
                raise self._unavailable(failed)
            try:
                batch = self._aknn_batch_on(
                    live, queries, k, alpha,
                    method=method, workers=workers, rng=rng, deadline=deadline,
                )
                break
            except _FanoutFailure as failure:
                live = self._drop_lost(live, failure, failed)
        coverage = self._coverage(live, failed)
        batch.coverage = coverage
        for result in batch.results:
            result.coverage = coverage
        return batch

    def _aknn_batch_on(
        self,
        shards: Sequence[_Shard],
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> BatchResult:
        """One batched-AKNN pass against a fixed shard set (strict)."""
        timer = Timer().start()
        # The whole pass runs under every covered shard's read lock: the
        # globally bootstrapped pruning radii are only valid against the
        # dataset they were probed from, so a delete landing between
        # bootstrap and fan-out could otherwise prune true neighbours.
        # Readers share the locks freely — only live updates are held off
        # until the pass is done.  The per-shard calls below must stay
        # lock-free (the lock is not reentrant and writer preference would
        # deadlock nested reads).
        with ExitStack() as stack:
            for shard in shards:
                stack.enter_context(shard.lock.read())
            # One global nominate-and-probe pass replaces N per-shard
            # bootstraps and hands every shard the tight global radius to
            # prune against, plus the exact distances already paid for.
            bootstrap = (
                self._global_bootstrap(shards, queries, k, alpha, rng)
                if queries and len(shards) > 1
                else None
            )
            initial_tau, initial_exact = bootstrap if bootstrap else (None, None)

            def run(shard: _Shard) -> BatchResult:
                return shard.db._run_aknn_batch(
                    queries, k, alpha, method=method, workers=workers, rng=rng,
                    initial_tau=initial_tau, initial_exact=initial_exact,
                    deadline=deadline,
                )

            shard_batches = self._map_strict(
                shards, "aknn_batch", run, deadline=deadline
            )
        results: List[AKNNResult] = []
        for qi in range(len(queries)):
            per_shard = [batch.results[qi].neighbors for batch in shard_batches]
            merged = self._merge_topk(per_shard, k)
            per_query_stats = QueryStats(
                distance_evaluations=sum(
                    batch.results[qi].stats.distance_evaluations
                    for batch in shard_batches
                ),
                aknn_calls=1,
            )
            results.append(
                AKNNResult(
                    neighbors=merged, k=k, alpha=alpha, method=method,
                    stats=per_query_stats,
                )
            )

        stats = QueryStats()
        for batch in shard_batches:
            stats.merge(batch.stats)
        stats.aknn_calls = len(queries)
        stats.elapsed_seconds = timer.stop()
        stats.extra["batch_queries"] = float(len(queries))
        stats.extra["shard_fanouts"] = float(len(shards))
        if stats.elapsed_seconds > 0.0:
            stats.extra["throughput_qps"] = len(queries) / stats.elapsed_seconds
        return BatchResult(results=results, k=k, alpha=alpha, method=method, stats=stats)

    def _range_single(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> RangeSearchResult:
        """All objects within ``radius`` at ``alpha``: union of shard answers.

        Per-shard answers are independent, so failures are isolated: the
        surviving shards' matches form a partial result whose coverage names
        the shards that failed.
        """
        timer = Timer().start()
        live, failed = self._admit_shards()
        if not live:
            raise self._unavailable(failed)

        def run(shard: _Shard) -> RangeSearchResult:
            with shard.lock.read():
                return shard.db._range.search(query, alpha, radius, rng=rng)

        outcomes = self._map_outcomes(live, "range", run, deadline=deadline)
        answered: List[_Shard] = []
        per_shard: List[RangeSearchResult] = []
        for shard, (kind, value) in zip(live, outcomes):
            if kind == "ok":
                answered.append(shard)
                per_shard.append(value)
            else:
                failed[shard.index] = value
        if not answered:
            raise self._unavailable(failed)
        matches = [match for result in per_shard for match in result.matches]
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        stats = QueryStats()
        for result in per_shard:
            stats.merge(result.stats)
        stats.range_calls = 1
        stats.elapsed_seconds = timer.stop()
        stats.extra["shard_fanouts"] = float(len(answered))
        return RangeSearchResult(
            matches=matches, radius=radius, alpha=alpha, stats=stats,
            coverage=self._coverage(answered, failed),
        )

    def _run_reverse_bucket(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> List[ReverseKNNResult]:
        """Answer a bucket of reverse AKNN queries sharing ``(k, alpha)``.

        Like the batched AKNN, the reverse pass is *coupled* across shards
        (the filter compares every shard's rows against the global box set,
        and verification radii fold all shards' candidates together), so a
        mid-pass shard failure reruns the whole pass against the survivors —
        the partial answer is exactly what a fresh query against only those
        shards would return, with coverage naming the shards that failed.
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if not 0.0 < alpha <= 1.0:
            raise InvalidQueryError(f"alpha must be in (0, 1], got {alpha}")
        if method not in REVERSE_METHODS:
            raise InvalidQueryError(
                f"unknown reverse-kNN method {method!r}; "
                f"expected one of {REVERSE_METHODS}"
            )
        queries = list(queries)
        if not queries:
            return []
        live, failed = self._admit_shards()
        while True:
            if not live:
                raise self._unavailable(failed)
            try:
                results = self._reverse_bucket_on(
                    live, queries, k, alpha, method=method, rng=rng,
                    deadline=deadline,
                )
                break
            except _FanoutFailure as failure:
                live = self._drop_lost(live, failure, failed)
        coverage = self._coverage(live, failed)
        for result in results:
            result.coverage = coverage
        return results

    def _reverse_bucket_on(
        self,
        shards: Sequence[_Shard],
        queries: Sequence[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
        deadline=None,
    ) -> List[ReverseKNNResult]:
        """One reverse-bucket pass against a fixed shard set (strict).

        The sharded analogue of
        :meth:`~repro.core.reverse_nn.ReverseAKNNSearcher.search_batch`:

        1. every covered shard exports its ``(n_s, d)`` Equation-2 box arrays
           from the leaf SoA views (one gather, under the shard read locks);
        2. each shard evaluates the all-pairs disqualification test for *its*
           rows against the **global** box set in parallel — so candidate
           sets are exactly as tight as the unsharded filter — and the
           surviving candidates merge globally;
        3. every shard verifies the merged candidate list through its batch
           executor with the globally valid per-candidate radii
           (``d_alpha(A, Q)``, maximised over the bucket), and per-candidate
           (k+1)-NN lists merge across shards before the membership count.

        Holding every covered shard's read lock for the whole pass keeps the
        radii and the owner snapshot consistent under live updates.
        """
        timer = Timer().start()
        n_queries = len(queries)
        accesses_before = sum(
            shard.db.store.statistics.object_accesses for shard in shards
        )

        # The per-shard calls below run on fan-out threads while this thread
        # holds every read lock, so they must stay lock-free (the RW lock is
        # not reentrant and writer preference would deadlock nested reads).
        with ExitStack() as stack:
            for shard in shards:
                stack.enter_context(shard.lock.read())

            gathered = self._map_strict(
                shards,
                "reverse_gather",
                lambda shard: shard.db.tree.leaf_alpha_bounds(alpha),
                deadline=deadline,
            )
            parts = [g for g in gathered if g[0].shape[0] > 0]
            if not parts:
                self.metrics.increment(MetricsCollector.REVERSE_QUERIES, n_queries)
                return [
                    self._empty_reverse_result(k, alpha, method, timer.stop())
                    for _ in queries
                ]
            ids = np.concatenate([g[0] for g in parts])
            box_lo = np.concatenate([g[1] for g in parts])
            box_hi = np.concatenate([g[2] for g in parts])
            # Row ranges of each shard within the concatenated global arrays.
            spans: Dict[int, Tuple[int, int]] = {}
            offset = 0
            for shard, g in zip(shards, gathered):
                rows = g[0].shape[0]
                spans[shard.index] = (offset, offset + rows)
                offset += rows

            if deadline is not None:
                deadline.check("reverse filter")
            prepared = [PreparedQuery(q, alpha, self.config, rng) for q in queries]
            if method == "linear":
                masks = np.ones((n_queries, ids.shape[0]), dtype=bool)
            else:
                thresholds = query_filter_thresholds(prepared, box_lo, box_hi)

                def filter_rows(shard: _Shard) -> Optional[np.ndarray]:
                    start, stop = spans[shard.index]
                    if start == stop:
                        return None
                    return certainly_closer_counts(
                        box_lo[start:stop],
                        box_hi[start:stop],
                        box_lo,
                        box_hi,
                        thresholds[:, start:stop],
                        self_index=np.arange(start, stop),
                    )

                blocks = self._map_strict(
                    shards, "reverse_filter", filter_rows, deadline=deadline
                )
                counts = np.concatenate(
                    [b for b in blocks if b is not None], axis=1
                )
                masks = counts < k

            # Each candidate row came from a known shard span, so its object
            # can be fetched from the owning store without the owner map.
            # Candidate prep (union, exact distances, shared radii, seeds) is
            # the same plan the unsharded engine runs; only the fetch and the
            # verification fan-out differ.
            shard_of_row = np.empty(ids.shape[0], dtype=np.int64)
            for shard_index, (start, stop) in spans.items():
                shard_of_row[start:stop] = shard_index
            metrics = MetricsCollector()
            plan = plan_bucket_verification(
                prepared,
                masks,
                ids,
                lambda row: self._shards[int(shard_of_row[row])].db.store.get(
                    int(ids[row])
                ),
                alpha,
                metrics,
            )
            if plan is None:
                self.metrics.increment(MetricsCollector.REVERSE_QUERIES, n_queries)
                elapsed = timer.stop()
                return [
                    self._empty_reverse_result(
                        k, alpha, method, elapsed, candidates=0.0
                    )
                    for _ in queries
                ]
            if deadline is not None:
                deadline.check("reverse verification")
            shard_batches = self._map_strict(
                shards,
                "reverse_verify",
                lambda shard: shard.db._run_aknn_batch(
                    plan.cand_objs, k + 1, alpha, rng=rng,
                    initial_tau=plan.tau, initial_exact=plan.seeds,
                    deadline=deadline,
                ),
                deadline=deadline,
            )

        merged = [
            self._merge_topk(
                [batch.results[j].neighbors for batch in shard_batches], k + 1
            )
            for j in range(len(plan.cand_ids))
        ]
        elapsed = timer.stop()
        self.metrics.increment(MetricsCollector.REVERSE_QUERIES, n_queries)
        self.metrics.increment(MetricsCollector.REVERSE_CANDIDATES, len(plan.cand_ids))
        memberships, distance_maps = collect_memberships(
            k, plan.cand_ids, merged, plan.per_query_cols, plan.per_query_dists
        )
        return build_bucket_results(
            k,
            alpha,
            method,
            elapsed,
            masks,
            memberships,
            distance_maps,
            plan.probes,
            totals={
                "object_accesses": sum(
                    shard.db.store.statistics.object_accesses
                    for shard in shards
                )
                - accesses_before,
                "node_accesses": sum(
                    batch.stats.node_accesses for batch in shard_batches
                ),
                "distance_evaluations": metrics.get(
                    MetricsCollector.DISTANCE_EVALUATIONS
                )
                + sum(batch.stats.distance_evaluations for batch in shard_batches),
                "lower_bound_evaluations": sum(
                    batch.stats.lower_bound_evaluations for batch in shard_batches
                ),
                "upper_bound_evaluations": sum(
                    batch.stats.upper_bound_evaluations for batch in shard_batches
                ),
            },
            extra_common={
                "batch_reverse_queries": float(n_queries),
                "shard_fanouts": float(len(shards)),
            },
        )

    @staticmethod
    def _empty_reverse_result(
        k: int,
        alpha: float,
        method: str,
        elapsed: float,
        candidates: float = 0.0,
    ) -> ReverseKNNResult:
        return ReverseKNNResult(
            object_ids=[],
            distances={},
            k=k,
            alpha=alpha,
            method=method,
            stats=QueryStats(
                elapsed_seconds=elapsed, extra={"candidates": candidates}
            ),
        )

    # ------------------------------------------------------------------
    # Deprecated per-type shims (delegate to the request surface)
    # ------------------------------------------------------------------
    def aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        """Deprecated: use ``execute(AknnRequest(...))``."""
        warn_legacy("ShardedDatabase.aknn()", "execute(AknnRequest(...))")
        return self.execute(
            AknnRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )

    def aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        workers: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> BatchResult:
        """Deprecated: use ``execute_batch([AknnRequest(...), ...])``.

        Kept for the batch-level :class:`BatchResult` telemetry; the unified
        surface returns plain per-request results instead.
        """
        warn_legacy(
            "ShardedDatabase.aknn_batch()", "execute_batch([AknnRequest(...), ...])"
        )
        return self._run_aknn_batch(
            queries, k, alpha, method=method, workers=workers, rng=rng
        )

    def rknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha_range: Tuple[float, float],
        method: str = "rss_icr",
        aknn_method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> RKNNResult:
        """Deprecated: use ``execute(SweepRequest(...))``."""
        warn_legacy("ShardedDatabase.rknn()", "execute(SweepRequest(...))")
        return self.execute(
            SweepRequest(
                query, k=k, alpha_range=tuple(alpha_range),
                method=method, aknn_method=aknn_method,
            ),
            rng=rng,
        )

    def range_search(
        self,
        query: FuzzyObject,
        alpha: float,
        radius: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RangeSearchResult:
        """Deprecated: use ``execute(RangeRequest(...))``."""
        warn_legacy("ShardedDatabase.range_search()", "execute(RangeRequest(...))")
        return self.execute(RangeRequest(query, alpha=alpha, radius=radius), rng=rng)

    def reverse_aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
    ) -> ReverseKNNResult:
        """Deprecated: use ``execute(ReverseRequest(...))``."""
        warn_legacy("ShardedDatabase.reverse_aknn()", "execute(ReverseRequest(...))")
        return self.execute(
            ReverseRequest(query, k=k, alpha=alpha, method=method), rng=rng
        )

    def reverse_aknn_batch(
        self,
        queries: Iterable[FuzzyObject],
        k: int,
        alpha: float,
        method: str = "batch",
        rng: Optional[np.random.Generator] = None,
    ) -> List[ReverseKNNResult]:
        """Deprecated: use ``execute_batch([ReverseRequest(...), ...])``."""
        warn_legacy(
            "ShardedDatabase.reverse_aknn_batch()",
            "execute_batch([ReverseRequest(...), ...])",
        )
        return self.execute_batch(
            [
                ReverseRequest(query, k=k, alpha=alpha, method=method)
                for query in queries
            ],
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def insert(
        self,
        obj: FuzzyObject,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Add one object to the running database; returns its id.

        The owning shard is chosen by the placement policy; the insert holds
        that shard's write lock, so concurrent queries see either the old or
        the new index state, never a partial mutation.  The object's geometry
        is validated first — a non-finite support centre would otherwise be
        mis-routed (or poison distance evaluations) after the owner map and
        id watermark were already touched.
        """
        center = obj.require_finite().support_mbr().center
        with self._admin_lock:
            if obj.object_id is None:
                object_id = self._next_id
                obj = obj.with_id(object_id)
            else:
                object_id = int(obj.object_id)
                if object_id in self._owners:
                    raise StorageError(f"object id {object_id} already stored")
            self._next_id = max(self._next_id, object_id + 1)
        shard_index = self.placement.shard_for(object_id, center)
        shard = self._shards[shard_index]
        with shard.lock.write():
            shard.db.insert(obj, rng=rng)
        with self._admin_lock:
            self._owners[object_id] = shard_index
            self.metrics.increment(MetricsCollector.LIVE_INSERTS)
        self._epoch.advance()
        self._notify_insert(obj)
        return object_id

    def delete(self, object_id: int) -> None:
        """Remove one object from the running database."""
        object_id = int(object_id)
        shard = self._owner_shard(object_id)
        with shard.lock.write():
            shard.db.delete(object_id)
        with self._admin_lock:
            self._owners.pop(object_id, None)
            self.metrics.increment(MetricsCollector.LIVE_DELETES)
        self._epoch.advance()
        self._notify_delete(object_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard.db) for shard in self._shards)

    def object_ids(self) -> List[int]:
        """Ids of every stored object, across all shards."""
        with self._admin_lock:
            return sorted(self._owners)

    def get_object(self, object_id: int) -> FuzzyObject:
        """Probe one object from its owning shard's store."""
        shard = self._owner_shard(object_id)
        with shard.lock.read():
            return shard.db.get_object(object_id)

    def reset_statistics(self) -> None:
        """Zero every shard store's access counters."""
        for shard in self._shards:
            shard.db.reset_statistics()

    @property
    def object_accesses(self) -> int:
        """Total object accesses across shards since the last reset."""
        return sum(shard.db.object_accesses for shard in self._shards)

    def validate(self) -> None:
        """Check per-shard index invariants and owner-map consistency."""
        for shard in self._shards:
            shard.db.validate()
        indexed = {
            object_id for shard in self._shards for object_id in shard.db.object_ids()
        }
        with self._admin_lock:
            owned = set(self._owners)
        if indexed != owned:
            raise StorageError(
                f"owner map drifted: {len(owned)} owned vs {len(indexed)} indexed"
            )

    def close(self) -> None:
        """Shut the fan-out pool down and close every shard store."""
        with self._admin_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for shard in self._shards:
            shard.db.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Merge helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_aknn_args(k: int, method: str) -> None:
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if method not in AKNN_METHODS:
            raise InvalidQueryError(
                f"unknown AKNN method {method!r}; expected one of {AKNN_METHODS}"
            )

    def _resolve_exact(
        self,
        db: FuzzyDatabase,
        neighbors: Sequence[Neighbor],
        query: FuzzyObject,
        alpha: float,
    ) -> List[Neighbor]:
        """Probe lazily-confirmed neighbours so the merge compares exact values."""
        resolved: List[Neighbor] = []
        for neighbor in neighbors:
            if neighbor.distance is None:
                obj = db.store.get(neighbor.object_id)
                distance = alpha_distance(
                    obj, query, alpha, use_kdtree=self.config.use_kdtree
                )
                neighbor = Neighbor(
                    object_id=neighbor.object_id,
                    distance=distance,
                    lower_bound=distance,
                    upper_bound=distance,
                    probed=True,
                )
            resolved.append(neighbor)
        return resolved

    @staticmethod
    def _merge_topk(
        per_shard: Sequence[Sequence[Neighbor]], k: int
    ) -> List[Neighbor]:
        """Global top-k across shard answers (distance, then object id)."""
        merged = [neighbor for neighbors in per_shard for neighbor in neighbors]
        merged.sort(key=lambda n: (n.distance, n.object_id))
        return merged[:k]


# ----------------------------------------------------------------------
# Federated building blocks for the RKNN sweep
# ----------------------------------------------------------------------
class _FederatedStore:
    """Routes store reads to the owning shard; aggregates statistics.

    Implements exactly the slice of the :class:`ObjectStore` interface the
    RKNN searcher consumes (``get``, ``object_ids``, ``statistics``), so the
    sweep algorithms run unmodified over the partitioned data.  When pinned
    to a live subset (a degraded sweep) it only sees those shards' objects —
    a read routed to an excluded shard raises :class:`_FanoutFailure` so the
    sweep's exclusion loop restarts rather than mixing in a dead shard.
    """

    def __init__(
        self, sharded: ShardedDatabase, shards: Optional[Sequence[_Shard]] = None
    ):
        self._sharded = sharded
        self._shards = None if shards is None else list(shards)

    def _live(self) -> Sequence[_Shard]:
        return self._sharded._shards if self._shards is None else self._shards

    def get(self, object_id: int) -> FuzzyObject:
        shard = self._sharded._owner_shard(object_id)
        if self._shards is not None and shard not in self._shards:
            raise _FanoutFailure({shard.index: "shard excluded from live set"})
        with shard.lock.read():
            return shard.db.store.get(object_id)

    def object_ids(self) -> List[int]:
        if self._shards is None:
            return self._sharded.object_ids()
        ids: List[int] = []
        for shard in self._shards:
            with shard.lock.read():
                ids.extend(shard.db.object_ids())
        return sorted(ids)

    @property
    def statistics(self) -> StoreStatistics:
        """Summed counters across the covered shard stores."""
        total = StoreStatistics()
        for shard in self._live():
            stats = shard.db.store.statistics
            total.object_accesses += stats.object_accesses
            total.physical_reads += stats.physical_reads
            total.bytes_read += stats.bytes_read
            total.bytes_written += stats.bytes_written
            total.cache_hits += stats.cache_hits
            total.deletes += stats.deletes
        return total


class _FanoutAKNNAdapter:
    """AKNN-searcher facade over the sharded fan-out (for the RKNN sweep).

    Always strict: a sweep's sub-queries must all answer against the same
    live set, so any shard loss surfaces as :class:`_FanoutFailure` for the
    sweep bucket's exclusion loop instead of a silently partial merge.
    """

    def __init__(
        self,
        sharded: ShardedDatabase,
        shards: Optional[Sequence[_Shard]] = None,
        deadline=None,
    ):
        self._sharded = sharded
        self._shards = None if shards is None else list(shards)
        self._deadline = deadline

    def search(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        rng: Optional[np.random.Generator] = None,
    ) -> AKNNResult:
        shards = self._shards if self._shards is not None else self._sharded._shards
        return self._sharded._aknn_on(
            shards, query, k, alpha, method=method, rng=rng,
            deadline=self._deadline,
        )


class _FanoutRangeAdapter:
    """Range-searcher facade collecting candidates from the covered shards."""

    def __init__(
        self,
        sharded: ShardedDatabase,
        shards: Optional[Sequence[_Shard]] = None,
        deadline=None,
    ):
        self._sharded = sharded
        self._shards = None if shards is None else list(shards)
        self._deadline = deadline

    def collect(
        self,
        prepared,
        radius: float,
        use_improved_bounds: bool = True,
    ) -> Tuple[List[Tuple[int, float]], Dict[int, FuzzyObject]]:
        shards = self._shards if self._shards is not None else self._sharded._shards

        def run(shard: _Shard):
            with shard.lock.read():
                return shard.db._range.collect(
                    prepared, radius, use_improved_bounds=use_improved_bounds
                )

        per_shard = self._sharded._map_strict(
            shards, "range", run, deadline=self._deadline
        )
        matches: List[Tuple[int, float]] = []
        objects: Dict[int, FuzzyObject] = {}
        for shard_matches, shard_objects in per_shard:
            matches.extend(shard_matches)
            objects.update(shard_objects)
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        return matches, objects


class _FederatedRKNNSearcher(RKNNSearcher):
    """The stock RKNN sweep running on federated sub-query building blocks.

    Every index-backed primitive the four method variants touch — the AKNN
    call fixing radii, the range search collecting candidates, and the store
    probes materialising distance profiles — is swapped for its globally
    correct fan-out equivalent; the sweep logic itself is inherited verbatim,
    so qualifying ranges match the single-tree searcher exactly.  ``shards``
    pins the searcher to a live subset (degraded operation) and ``deadline``
    bounds every federated sub-query.
    """

    def __init__(
        self,
        sharded: ShardedDatabase,
        config: RuntimeConfig,
        shards: Optional[Sequence[_Shard]] = None,
        deadline=None,
    ):
        super().__init__(_FederatedStore(sharded, shards=shards), None, config)
        self.aknn_searcher = _FanoutAKNNAdapter(
            sharded, shards=shards, deadline=deadline
        )
        self.range_searcher = _FanoutRangeAdapter(
            sharded, shards=shards, deadline=deadline
        )
