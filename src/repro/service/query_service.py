"""A concurrent query front end with request coalescing.

:class:`QueryService` turns the batch engines' throughput into a serving
story: concurrent callers submit typed requests
(:mod:`repro.core.requests`) and receive futures::

    future = service.submit_request(AknnRequest(query, k=20, alpha=0.5))
    result = future.result()

Behind the scenes one generic coalescer groups requests by their
``bucket_key()`` — the same key every request type defines for execution
sharing — and flushes each bucket through the database's ``execute_batch``
when it either reaches ``coalesce_max_batch`` requests or its oldest request
has waited ``coalesce_window_ms`` milliseconds.  A flushed bucket is
homogeneous by construction, so the planner answers it through the shared
engine for its type: one R-tree traversal for an AKNN bucket, one candidate
filter matrix + one verification traversal for a reverse bucket.  New
request families coalesce correctly with zero service edits — the bucket
table never switches on request types.  Since ``bucket_key()`` carries each
request's full method parameterisation, per-request method overrides (e.g. a
``ReverseRequest(method=ReverseMethod.LINEAR)`` audit probe next to the
default batch traffic) are supported for free: they simply land in their own
bucket.

The service itself implements the :class:`~repro.core.requests.QueryEngine`
protocol — ``execute`` / ``execute_batch`` submit and wait — so callers can
swap a database for a coalescing service without code changes.

Admission control bounds the number of requests waiting across all buckets
(``service_queue_depth``); submissions beyond the bound fail fast with
:class:`~repro.exceptions.ServiceOverloadedError` instead of queueing
without limit.  Every completed request records its end-to-end latency
(submit to future resolution), from which the service reports p50/p99.

The service works over a :class:`~repro.service.sharded.ShardedDatabase`
(each flush fans out across shards) or a plain
:class:`~repro.core.database.FuzzyDatabase`; live ``insert``/``delete``
passes straight through to the underlying database, whose shard write locks
keep in-flight flushes consistent.

Standing queries ride the same mutation path: :meth:`QueryService.subscribe`
registers an ``AknnRequest`` or ``RangeRequest`` with the shared
:class:`~repro.service.subscriptions.SubscriptionEngine` and returns a
buffered delta stream; consumers that stop pulling are shed at
``subscription_queue_depth`` instead of stalling writers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig
from repro.core.requests import (
    AknnRequest,
    QueryRequest,
    ReverseMethod,
    ReverseRequest,
    execute_plan,
    warn_legacy,
)
from repro.core.results import AKNNResult
from repro.core.reverse_nn import ReverseKNNResult
from repro.exceptions import (
    DeadlineExceededError,
    InvalidQueryError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.metrics.counters import MetricsCollector, SharedMetricsCollector
from repro.service.policy import Deadline
from repro.service.subscriptions import DeliverySubscription, SubscriptionEngine

# Buckets are keyed by QueryRequest.bucket_key(): a hashable tuple carrying
# the request type tag and its full sharing-relevant parameterisation.
_BucketKey = Tuple


class _Pending:
    __slots__ = ("request", "future", "submitted_at", "deadline")

    def __init__(
        self,
        request: QueryRequest,
        submitted_at: float,
        deadline: Optional[Deadline],
    ):
        self.request = request
        self.future: "Future" = Future()
        self.submitted_at = submitted_at
        self.deadline = deadline

    def resolve(self, result) -> None:
        """Set the result, tolerating a future cancelled by the caller."""
        try:
            self.future.set_result(result)
        except InvalidStateError:
            pass

    def fail(self, error: BaseException) -> None:
        """Set the exception, tolerating a future cancelled by the caller."""
        try:
            self.future.set_exception(error)
        except InvalidStateError:
            pass


class _Bucket:
    __slots__ = ("key", "requests", "opened_at", "expires_at")

    def __init__(self, key: _BucketKey, opened_at: float):
        self.key = key
        self.requests: List[_Pending] = []
        self.opened_at = opened_at
        # Earliest member deadline (monotonic), or None while every member
        # is unbounded; the flusher brings the flush forward so a bounded
        # member still has time to execute.
        self.expires_at: Optional[float] = None

    def note_deadline(self, deadline: Optional[Deadline]) -> None:
        if deadline is None:
            return
        if self.expires_at is None or deadline.expires_at < self.expires_at:
            self.expires_at = deadline.expires_at


@dataclass
class ServiceStats:
    """A point-in-time summary of the service's serving behaviour."""

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_shed: int = 0
    requests_failed: int = 0
    batches_flushed: int = 0
    coalesced_queries: int = 0
    max_batch_size: int = 0
    mean_batch_size: float = 0.0
    p50_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    mean_latency_ms: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        payload = {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_shed": self.requests_shed,
            "requests_failed": self.requests_failed,
            "batches_flushed": self.batches_flushed,
            "coalesced_queries": self.coalesced_queries,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "mean_latency_ms": self.mean_latency_ms,
        }
        payload.update(self.counters)
        return payload


class QueryService:
    """Coalescing, admission-controlled front end over a database.

    Parameters
    ----------
    database:
        Any :class:`~repro.core.requests.QueryEngine` (a
        :class:`ShardedDatabase` or a plain :class:`FuzzyDatabase`);
        ``insert``/``delete`` are forwarded when present.
    window_ms / max_batch / queue_depth:
        Coalescer knobs; default to the database config's
        ``coalesce_window_ms`` / ``coalesce_max_batch`` /
        ``service_queue_depth``.
    latency_window:
        Number of recent per-request latencies kept for the percentile
        telemetry.
    """

    def __init__(
        self,
        database,
        window_ms: Optional[float] = None,
        max_batch: Optional[int] = None,
        queue_depth: Optional[int] = None,
        latency_window: int = 8192,
    ):
        config = getattr(database, "config", None) or RuntimeConfig()
        self.database = database
        self._config = config
        self.window_seconds = (
            config.coalesce_window_ms if window_ms is None else float(window_ms)
        ) / 1000.0
        self.max_batch = (
            config.coalesce_max_batch if max_batch is None else int(max_batch)
        )
        self.queue_depth = (
            config.service_queue_depth if queue_depth is None else int(queue_depth)
        )
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.default_deadline_ms = config.default_deadline_ms
        self.metrics = SharedMetricsCollector()
        # EWMA of flush throughput (requests/second); feeds the retry-after
        # estimate handed back with ServiceOverloadedError.
        self._drain_rate = 0.0
        self._cv = threading.Condition()
        self._buckets: Dict[_BucketKey, _Bucket] = {}
        self._pending = 0
        self._running = False
        self._flusher: Optional[threading.Thread] = None
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._submitted = 0
        self._completed = 0
        self._shed = 0
        self._failed = 0
        self._batches = 0
        self._coalesced = 0
        self._max_batch_seen = 0
        # Standing queries: one shared SubscriptionEngine (registered as the
        # database's update listener on first use) plus the per-consumer
        # delivery queues, tracked for shedding and shutdown.
        self._sub_lock = threading.Lock()
        self._subscriptions: Optional[SubscriptionEngine] = None
        self._deliveries: Dict[int, DeliverySubscription] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Start the background flusher; idempotent."""
        with self._cv:
            if self._running:
                return self
            self._running = True
        self._flusher = threading.Thread(
            target=self._flush_loop, name="query-service-flusher", daemon=True
        )
        self._flusher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` flushes every waiting bucket before returning, so all
        outstanding futures resolve; ``drain=False`` fails them with
        :class:`ServiceStoppedError`.
        """
        with self._cv:
            if not self._running and self._flusher is None:
                return
            self._running = False
            if not drain:
                for bucket in self._buckets.values():
                    for request in bucket.requests:
                        request.fail(
                            ServiceStoppedError("query service stopped before flush")
                        )
                self._pending = 0
                self._buckets.clear()
            self._cv.notify_all()
        if self._flusher is not None:
            self._flusher.join()
            self._flusher = None
        # A clean flusher exit drains every bucket; anything still queued
        # means it died mid-flight.  No submitted future may hang forever,
        # so sweep the leftovers into ServiceStoppedError.
        with self._cv:
            leftovers = [
                pending
                for bucket in self._buckets.values()
                for pending in bucket.requests
            ]
            self._buckets.clear()
            self._pending = 0
        for pending in leftovers:
            pending.fail(ServiceStoppedError("query service stopped before flush"))
        # Close every standing query so no consumer blocks on a dead stream,
        # and detach the engine so a stopped service stops paying for
        # subscription maintenance on later mutations.
        with self._sub_lock:
            deliveries = list(self._deliveries.values())
            self._deliveries.clear()
            engine, self._subscriptions = self._subscriptions, None
        for delivery in deliveries:
            if engine is not None and delivery.subscription is not None:
                engine.unsubscribe(delivery.subscription)
            delivery.close()
        if engine is not None:
            detach = getattr(self.database, "remove_update_listener", None)
            if detach is not None:
                detach(engine)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Request path (QueryEngine protocol + futures)
    # ------------------------------------------------------------------
    def submit_request(self, request: QueryRequest) -> "Future":
        """Enqueue one typed request; returns a future for its result.

        Requests sharing a ``bucket_key()`` coalesce into one bucket flushed
        through the database's ``execute_batch`` (one shared traversal for an
        AKNN bucket, one shared filter + verification pass for a reverse
        bucket).  Raises :class:`ServiceOverloadedError` when the queue is
        full and :class:`ServiceStoppedError` when the service is not
        running.
        """
        return self._submit(request).future

    def _deadline_for(self, request: QueryRequest) -> Optional[Deadline]:
        """The request's absolute deadline, honouring the service default."""
        budget_ms = request.deadline_ms
        if budget_ms is None:
            budget_ms = self.default_deadline_ms
        if budget_ms is None:
            return None
        return Deadline.after_ms(budget_ms)

    def _retry_after_ms(self) -> float:
        """How long a shed caller should back off (caller holds ``_cv``).

        The backlog needs roughly ``pending / drain_rate`` seconds to clear;
        before the first flush establishes a rate, one coalescing window is
        the best available floor.
        """
        window_ms = self.window_seconds * 1000.0
        if self._drain_rate <= 0.0:
            return max(window_ms, 1.0)
        return max(window_ms, (self._pending / self._drain_rate) * 1000.0, 1.0)

    def _submit(self, request: QueryRequest) -> _Pending:
        if not isinstance(request, QueryRequest):
            raise TypeError(
                f"submit_request expects a QueryRequest, got {type(request).__name__}"
            )
        key: _BucketKey = request.bucket_key()
        now = time.monotonic()
        pending = _Pending(request, now, self._deadline_for(request))
        with self._cv:
            if not self._running:
                raise ServiceStoppedError("query service is not running")
            if self._pending >= self.queue_depth:
                self._shed += 1
                self.metrics.increment(MetricsCollector.SHED_REQUESTS)
                raise ServiceOverloadedError(
                    f"queue depth {self.queue_depth} exceeded; request shed",
                    retry_after_ms=self._retry_after_ms(),
                )
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = _Bucket(key, now)
                self._buckets[key] = bucket
            bucket.requests.append(pending)
            bucket.note_deadline(pending.deadline)
            self._pending += 1
            self._submitted += 1
            self._cv.notify_all()
        return pending

    def _withdraw(self, submitted: List[_Pending]) -> None:
        """Pull not-yet-flushed requests back out of their buckets.

        Used when a multi-request submission fails part-way (admission
        control): without this the already-enqueued futures would be
        dropped unreferenced while the flusher still paid to answer them —
        amplifying exactly the overload that shed the submission.  Requests
        whose bucket already flushed are left to finish.
        """
        with self._cv:
            for pending in submitted:
                key = pending.request.bucket_key()
                bucket = self._buckets.get(key)
                if bucket is None or pending not in bucket.requests:
                    continue  # already flushing/flushed; let it complete
                bucket.requests.remove(pending)
                if not bucket.requests:
                    del self._buckets[key]
                self._pending -= 1
                self._shed += 1
                self.metrics.increment(MetricsCollector.SHED_REQUESTS)
                pending.future.cancel()

    def execute(
        self,
        request: QueryRequest,
        *,
        rng=None,
        timeout: Optional[float] = None,
    ):
        """Synchronously answer one request (submit + wait).

        ``rng`` is accepted for :class:`~repro.core.requests.QueryEngine`
        compatibility but ignored: coalesced execution happens on the flusher
        thread, where per-caller randomness would race between bucket
        members.
        """
        return self.submit_request(request).result(timeout=timeout)

    def execute_batch(
        self,
        requests,
        *,
        rng=None,
        timeout: Optional[float] = None,
    ) -> List:
        """Submit a mixed-type batch and wait for every result.

        Each request lands in its ``bucket_key()`` bucket, so a mixed
        submission is answered as per-type, per-bucket shared sub-batches —
        the same plan :meth:`FuzzyDatabase.execute_batch` would build, plus
        coalescing with any concurrent callers' compatible requests.  If a
        submission is shed part-way by admission control, the requests
        already enqueued by this call are withdrawn from their buckets
        (counted as shed) before the error propagates, so the overloaded
        service does not pay for answers nobody can retrieve.  ``timeout``
        is one deadline for the whole batch, not per future; when it
        expires, still-queued requests are withdrawn before the
        :class:`TimeoutError` propagates.
        """
        submitted: List[_Pending] = []
        try:
            for request in requests:
                submitted.append(self._submit(request))
        except BaseException:
            self._withdraw(submitted)
            raise
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for pending in submitted:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                results.append(pending.future.result(timeout=remaining))
            except BaseException:
                self._withdraw(submitted)
                raise
        return results

    # ------------------------------------------------------------------
    # Deprecated per-type shims (delegate to the request surface)
    # ------------------------------------------------------------------
    def submit(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
    ) -> "Future[AKNNResult]":
        """Deprecated: use ``submit_request(AknnRequest(...))``."""
        warn_legacy("QueryService.submit()", "submit_request(AknnRequest(...))")
        return self.submit_request(AknnRequest(query, k=k, alpha=alpha, method=method))

    def submit_reverse(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
    ) -> "Future[ReverseKNNResult]":
        """Deprecated: use ``submit_request(ReverseRequest(...))``."""
        warn_legacy(
            "QueryService.submit_reverse()", "submit_request(ReverseRequest(...))"
        )
        return self.submit_request(
            ReverseRequest(query, k=k, alpha=alpha, method=ReverseMethod.BATCH)
        )

    def aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        method: str = "lb_lp_ub",
        timeout: Optional[float] = None,
    ) -> AKNNResult:
        """Deprecated: use ``execute(AknnRequest(...))``."""
        warn_legacy("QueryService.aknn()", "execute(AknnRequest(...))")
        return self.submit_request(
            AknnRequest(query, k=k, alpha=alpha, method=method)
        ).result(timeout=timeout)

    def reverse_aknn(
        self,
        query: FuzzyObject,
        k: int,
        alpha: float,
        timeout: Optional[float] = None,
    ) -> "ReverseKNNResult":
        """Deprecated: use ``execute(ReverseRequest(...))``."""
        warn_legacy("QueryService.reverse_aknn()", "execute(ReverseRequest(...))")
        return self.submit_request(
            ReverseRequest(query, k=k, alpha=alpha, method=ReverseMethod.BATCH)
        ).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Live updates (forwarded to the database)
    # ------------------------------------------------------------------
    def insert(self, obj: FuzzyObject, rng=None) -> int:
        """Insert into the underlying database (shard write locks apply)."""
        object_id = self.database.insert(obj, rng=rng)
        self.metrics.increment(MetricsCollector.LIVE_INSERTS)
        return object_id

    def delete(self, object_id: int) -> None:
        """Delete from the underlying database (shard write locks apply)."""
        self.database.delete(object_id)
        self.metrics.increment(MetricsCollector.LIVE_DELETES)

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def _subscription_engine(self) -> SubscriptionEngine:
        """The shared engine, registered as a DB update listener on first use."""
        with self._sub_lock:
            if self._subscriptions is None:
                register = getattr(self.database, "add_update_listener", None)
                if register is None:
                    raise InvalidQueryError(
                        "the underlying engine does not expose update "
                        "listeners; standing queries need a FuzzyDatabase or "
                        "ShardedDatabase"
                    )
                engine = SubscriptionEngine(
                    self.database, config=self._config, metrics=self.metrics
                )
                register(engine)
                self._subscriptions = engine
            return self._subscriptions

    def subscribe(
        self, request: QueryRequest, depth: Optional[int] = None
    ) -> DeliverySubscription:
        """Register a standing query; returns its buffered delta stream.

        The first delta is the request's full current answer; every
        subsequent mutation that changes the answer queues an incremental
        delta.  A consumer that lets ``depth`` deltas pile up (default
        ``subscription_queue_depth``) is shed: its stream closes with
        ``shed=True`` and the subscription is torn down, so one stuck
        consumer cannot stall mutations or grow memory without bound.
        """
        engine = self._subscription_engine()
        delivery = DeliverySubscription(
            self._config.subscription_queue_depth if depth is None else int(depth)
        )
        delivery._on_overflow = lambda: self._shed_subscriber(delivery)
        delivery.subscription = engine.subscribe(request, listener=delivery.deliver)
        with self._sub_lock:
            self._deliveries[delivery.id] = delivery
        return delivery

    def unsubscribe(self, delivery: DeliverySubscription) -> None:
        """Tear one standing query down and close its delta stream."""
        self._drop_subscription(delivery)
        delivery.close()

    def _shed_subscriber(self, delivery: DeliverySubscription) -> None:
        """Overflow callback: count the shed and tear the subscription down."""
        self.metrics.increment(MetricsCollector.SUBSCRIBERS_SHED)
        self._drop_subscription(delivery)

    def _drop_subscription(self, delivery: DeliverySubscription) -> None:
        sub = delivery.subscription
        with self._sub_lock:
            engine = self._subscriptions
            if sub is not None:
                self._deliveries.pop(sub.id, None)
        if engine is not None and sub is not None:
            engine.unsubscribe(sub)

    @property
    def subscriptions(self) -> int:
        """Number of live standing queries."""
        with self._sub_lock:
            return len(self._deliveries)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Current serving statistics (latency percentiles in milliseconds)."""
        with self._cv:
            latencies = list(self._latencies)
            stats = ServiceStats(
                requests_submitted=self._submitted,
                requests_completed=self._completed,
                requests_shed=self._shed,
                requests_failed=self._failed,
                batches_flushed=self._batches,
                coalesced_queries=self._coalesced,
                max_batch_size=self._max_batch_seen,
                mean_batch_size=(
                    self._coalesced / self._batches if self._batches else 0.0
                ),
                counters=self.metrics.as_dict(),
            )
        if latencies:
            millis = np.asarray(latencies) * 1000.0
            stats.p50_latency_ms = float(np.percentile(millis, 50))
            stats.p99_latency_ms = float(np.percentile(millis, 99))
            stats.mean_latency_ms = float(millis.mean())
        return stats

    @property
    def pending(self) -> int:
        """Requests currently waiting in coalescer buckets."""
        with self._cv:
            return self._pending

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------
    def _flush_at(self, bucket: _Bucket) -> float:
        """When this bucket must flush: its window, brought forward so the
        earliest member deadline still leaves one window's worth of time to
        execute."""
        at = bucket.opened_at + self.window_seconds
        if bucket.expires_at is not None:
            at = min(at, bucket.expires_at - self.window_seconds)
        return at

    def _due_buckets(self, now: float, flush_all: bool) -> List[_Bucket]:
        """Pop the buckets ready to execute (size, window or deadline)."""
        due: List[_Bucket] = []
        for key in list(self._buckets):
            bucket = self._buckets[key]
            if (
                flush_all
                or now >= self._flush_at(bucket)
                or len(bucket.requests) >= self.max_batch
            ):
                due.append(self._buckets.pop(key))
        for bucket in due:
            self._pending -= len(bucket.requests)
        return due

    def _next_deadline(self) -> Optional[float]:
        if not self._buckets:
            return None
        return min(self._flush_at(b) for b in self._buckets.values())

    def _flush_loop(self) -> None:
        while True:
            with self._cv:
                now = time.monotonic()
                due = self._due_buckets(now, flush_all=not self._running)
                if not due:
                    if not self._running:
                        return
                    deadline = self._next_deadline()
                    timeout = None if deadline is None else max(0.0, deadline - now)
                    self._cv.wait(timeout=timeout)
                    continue
            for bucket in due:
                try:
                    self._execute(bucket)
                except BaseException as exc:  # the loop must survive anything
                    with self._cv:
                        self._failed += len(bucket.requests)
                    for pending in bucket.requests:
                        pending.fail(exc)

    def _withdraw_expired(self, bucket: _Bucket) -> List[_Pending]:
        """Fail members whose deadline lapsed in the queue; return the rest.

        An expired member gets :class:`DeadlineExceededError` without
        touching the database — the whole point of deadline propagation is
        not paying for answers nobody is waiting for any more.
        """
        live: List[_Pending] = []
        expired: List[_Pending] = []
        for pending in bucket.requests:
            if pending.deadline is not None and pending.deadline.expired():
                expired.append(pending)
            else:
                live.append(pending)
        if expired:
            with self._cv:
                self._failed += len(expired)
            self.metrics.increment(
                MetricsCollector.REQUESTS_WITHDRAWN_EXPIRED, len(expired)
            )
            self.metrics.increment(MetricsCollector.DEADLINE_EXPIRED, len(expired))
            for pending in expired:
                pending.fail(
                    DeadlineExceededError(
                        f"{type(pending.request).__name__} expired waiting in queue"
                    )
                )
        return live

    def _execute(self, bucket: _Bucket) -> None:
        # The bucket is homogeneous by construction (one bucket_key), so the
        # database's planner answers it through the shared engine registered
        # for its request type — no per-type dispatch here.  execute_plan is
        # called directly (rather than through database.execute_batch) so the
        # deadlines captured at submit time keep counting down, and so each
        # slot's failure lands on its own future instead of failing the whole
        # bucket (on_error="return").
        started = time.monotonic()
        live = self._withdraw_expired(bucket)
        if not live:
            return
        try:
            results = execute_plan(
                self.database,
                [pending.request for pending in live],
                deadlines=[pending.deadline for pending in live],
                on_error="return",
            )
        except BaseException as exc:  # propagate into the waiting futures
            with self._cv:
                self._failed += len(live)
            for pending in live:
                pending.fail(exc)
            return
        done = time.monotonic()
        size = len(live)
        completed = sum(
            1 for result in results if not isinstance(result, BaseException)
        )
        with self._cv:
            self._batches += 1
            self._coalesced += size
            self._max_batch_seen = max(self._max_batch_seen, size)
            self._completed += completed
            self._failed += size - completed
            for pending in live:
                self._latencies.append(done - pending.submitted_at)
            rate = size / max(done - started, 1e-6)
            self._drain_rate = (
                rate if self._drain_rate <= 0.0
                else 0.8 * self._drain_rate + 0.2 * rate
            )
        self.metrics.increment(MetricsCollector.COALESCED_BATCHES)
        self.metrics.increment(MetricsCollector.COALESCED_QUERIES, size)
        for pending, result in zip(live, results):
            if isinstance(result, BaseException):
                pending.fail(result)
            else:
                pending.resolve(result)
