"""A retrying client that honours the service's backpressure contract.

Every shed path in the serving stack carries a computed ``retry_after_ms``:

* :class:`~repro.exceptions.ServiceOverloadedError` — admission control,
  estimated from the queue depth and the coalescer's drain-rate EWMA;
* :class:`~repro.exceptions.ShardUnavailableError` — circuit-breaker sheds
  and total shard loss, reflecting the longest open breaker's remaining
  cool-off.

:class:`RetryingClient` is the reference consumer of that contract: it
submits through a :class:`~repro.service.query_service.QueryService` (or any
``QueryEngine``), sleeps for the server-provided hint (jittered, so a
thundering herd of shed callers does not return in lockstep), and gives up
once a total retry budget is spent.  Deadline and validation errors are never
retried — a request that expired will not un-expire, and a malformed one will
not become well-formed.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, Sequence

from repro.core.requests import QueryRequest
from repro.exceptions import BackpressureError
from repro.metrics.counters import MetricsCollector, SharedMetricsCollector


class RetryBudgetExhaustedError(BackpressureError):
    """Raised when the client's retry budget is spent before an answer.

    Chains the last backpressure error so callers can inspect the final
    ``retry_after_ms`` the service reported.
    """


class RetryingClient:
    """Submit-with-backoff wrapper over a query engine.

    Parameters
    ----------
    engine:
        Anything implementing ``execute`` / ``execute_batch`` — typically a
        running :class:`~repro.service.query_service.QueryService`.
    max_retries:
        Retries after the initial attempt (``3`` means up to 4 calls).
    budget_ms:
        Total milliseconds the client may spend sleeping between attempts;
        once the next hinted sleep would exceed what is left, the client
        stops and raises :class:`RetryBudgetExhaustedError`.
    default_backoff_ms:
        Sleep used when a backpressure error carries no ``retry_after_ms``.
    jitter:
        The hinted sleep is scaled by a uniform factor in
        ``[1, 1 + jitter]`` — *after* the hint, never before it, because the
        hint is the service's earliest-useful-retry estimate.
    """

    def __init__(
        self,
        engine,
        max_retries: int = 3,
        budget_ms: float = 1000.0,
        default_backoff_ms: float = 10.0,
        jitter: float = 0.25,
        rand: Callable[[], float] = random.random,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if budget_ms < 0.0 or default_backoff_ms < 0.0:
            raise ValueError("budgets must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.engine = engine
        self.max_retries = int(max_retries)
        self.budget_ms = float(budget_ms)
        self.default_backoff_ms = float(default_backoff_ms)
        self.jitter = float(jitter)
        self._rand = rand
        self._sleep = sleep
        self.metrics = SharedMetricsCollector()

    # ------------------------------------------------------------------
    # The retry loop
    # ------------------------------------------------------------------
    def _call(self, attempt_fn):
        spent_ms = 0.0
        last_error: Optional[BackpressureError] = None
        for attempt in range(self.max_retries + 1):
            try:
                return attempt_fn()
            except BackpressureError as error:
                last_error = error
                if attempt >= self.max_retries:
                    break
                hint_ms = error.retry_after_ms
                if hint_ms is None:
                    hint_ms = self.default_backoff_ms
                sleep_ms = hint_ms * (1.0 + self.jitter * self._rand())
                if spent_ms + sleep_ms > self.budget_ms:
                    break
                spent_ms += sleep_ms
                self.metrics.increment(MetricsCollector.RETRIES)
                if sleep_ms > 0.0:
                    self._sleep(sleep_ms / 1000.0)
        raise RetryBudgetExhaustedError(
            f"retry budget exhausted after {spent_ms:.1f} ms of backoff",
            retry_after_ms=getattr(last_error, "retry_after_ms", None),
        ) from last_error

    def execute(self, request: QueryRequest, *, timeout: Optional[float] = None):
        """Answer one request, retrying shed submissions per the contract."""
        kwargs = {} if timeout is None else {"timeout": timeout}
        return self._call(lambda: self.engine.execute(request, **kwargs))

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List:
        """Answer a batch, retrying the whole submission when it is shed.

        The query service withdraws a partially-admitted submission before
        raising, so resubmitting the full batch never double-answers.
        """
        requests = list(requests)
        kwargs = {} if timeout is None else {"timeout": timeout}
        return self._call(lambda: self.engine.execute_batch(requests, **kwargs))
