"""Fault injection for chaos-testing the serving layer.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules installed on a
:class:`~repro.service.sharded.ShardedDatabase` (``db.fault_plan = plan`` or
``serve --fault-plan``).  Every per-shard fan-out call site consults the plan
through one zero-overhead-when-disabled hook (a single ``is None`` check on
the hot path); a matching rule then raises, delays, or hangs the call —
exactly where a real worker failure would surface — so the retry, breaker,
partial-coverage and deadline paths can all be driven deterministically.

Spec strings (CLI / smoke-script friendly) are ``;``-separated rules of
``key=value`` pairs::

    shard=1,kind=raise                      # shard 1 always fails
    shard=0,op=aknn_batch,kind=delay,delay_ms=50,after=2,count=3
    kind=raise,count=1                      # first call to any shard fails

``op`` names the fan-out operation (``aknn``, ``aknn_batch``, ``range``,
``reverse_gather``, ``reverse_filter``, ``reverse_verify``, ``wal_append``;
omit to match all).  ``after`` skips the first N matching calls, ``count`` bounds how many
times the rule fires (omit for "forever").  ``kind=hang`` sleeps
``hang_ms`` (default 30 s) to emulate a stuck worker — pair it with request
deadlines.  :meth:`FaultPlan.random` builds a seeded randomized plan for the
chaos smoke job.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import FaultInjectedError, InvalidQueryError

#: Operation names the sharded fan-out reports to the plan.  ``wal_append``
#: is invoked by a durable shard immediately before each WAL write, so a
#: matching ``raise`` rule emulates a crash mid-append (the torn-tail case
#: the recovery tests exercise).
FAULT_OPERATIONS = (
    "aknn",
    "aknn_batch",
    "range",
    "reverse_gather",
    "reverse_filter",
    "reverse_verify",
    "wal_append",
)

_KINDS = ("raise", "delay", "hang")

_DEFAULT_HANG_MS = 30_000.0


@dataclass
class FaultSpec:
    """One injection rule: *where* it applies and *what* it does.

    ``shard``/``op`` of ``None`` match every shard / operation.  The rule
    fires on matching calls number ``after`` .. ``after + count - 1``
    (0-based, per rule); ``count=None`` fires forever once triggered.
    """

    kind: str = "raise"
    shard: Optional[int] = None
    op: Optional[str] = None
    after: int = 0
    count: Optional[int] = None
    delay_ms: float = 10.0
    hang_ms: float = _DEFAULT_HANG_MS
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidQueryError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.op is not None and self.op not in FAULT_OPERATIONS:
            raise InvalidQueryError(
                f"unknown fault op {self.op!r}; expected one of {FAULT_OPERATIONS}"
            )
        if self.after < 0:
            raise InvalidQueryError("after must be >= 0")
        if self.count is not None and self.count < 1:
            raise InvalidQueryError("count must be >= 1 (or None for forever)")

    def matches(self, shard: int, op: str) -> bool:
        return (self.shard is None or self.shard == int(shard)) and (
            self.op is None or self.op == op
        )


class FaultPlan:
    """An installable set of fault rules with thread-safe trigger accounting.

    The plan records how often each rule fired (:attr:`fired`) and how many
    calls it saw, so chaos tests can assert that the intended failure paths
    actually ran.  All bookkeeping happens under one lock — the plan is only
    ever consulted on fan-out calls that are about to do real index work, so
    the lock is not a hot path.
    """

    def __init__(self, specs: Sequence[FaultSpec]):
        self.specs: List[FaultSpec] = list(specs)
        self._lock = threading.Lock()
        self._seen: List[int] = [0] * len(self.specs)
        self.fired: List[int] = [0] * len(self.specs)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``;``-separated spec string (see the module docstring)."""
        specs: List[FaultSpec] = []
        for rule in text.split(";"):
            rule = rule.strip()
            if not rule:
                continue
            kwargs: Dict[str, object] = {}
            for pair in rule.split(","):
                if "=" not in pair:
                    raise InvalidQueryError(
                        f"malformed fault rule {rule!r}: expected key=value pairs"
                    )
                key, value = (part.strip() for part in pair.split("=", 1))
                if key in ("shard", "after", "count"):
                    kwargs[key] = int(value)
                elif key in ("delay_ms", "hang_ms"):
                    kwargs[key] = float(value)
                elif key in ("kind", "op", "message"):
                    kwargs[key] = value
                else:
                    raise InvalidQueryError(f"unknown fault rule key {key!r}")
            specs.append(FaultSpec(**kwargs))
        if not specs:
            raise InvalidQueryError(f"fault plan {text!r} contains no rules")
        return cls(specs)

    @classmethod
    def random(
        cls,
        rng,
        n_shards: int,
        n_rules: int = 4,
        transient_count: int = 2,
        delay_ms: float = 5.0,
    ) -> "FaultPlan":
        """A seeded randomized plan of transient faults (chaos smoke).

        Every rule is *transient* (bounded ``count``) so a retried workload
        eventually succeeds; rules mix raises and small delays across random
        shards and operations.
        """
        specs = []
        for _ in range(max(1, int(n_rules))):
            kind = "raise" if rng.random() < 0.7 else "delay"
            specs.append(
                FaultSpec(
                    kind=kind,
                    shard=int(rng.integers(0, n_shards)),
                    op=None if rng.random() < 0.5 else str(
                        FAULT_OPERATIONS[int(rng.integers(0, len(FAULT_OPERATIONS)))]
                    ),
                    after=int(rng.integers(0, 3)),
                    count=int(rng.integers(1, transient_count + 1)),
                    delay_ms=delay_ms,
                )
            )
        return cls(specs)

    # ------------------------------------------------------------------
    # The injection hook
    # ------------------------------------------------------------------
    def invoke(self, shard: int, op: str) -> None:
        """Apply the first matching armed rule for this call, if any.

        Called by the sharded fan-out immediately before each per-shard
        operation.  ``raise`` rules raise :class:`FaultInjectedError`;
        ``delay``/``hang`` rules sleep.  A call matches at most one rule
        (first in spec order wins), so plans compose predictably.
        """
        action: Optional[FaultSpec] = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if not spec.matches(shard, op):
                    continue
                seen = self._seen[index]
                self._seen[index] = seen + 1
                armed = seen >= spec.after and (
                    spec.count is None or seen < spec.after + spec.count
                )
                if armed:
                    self.fired[index] += 1
                    action = spec
                    break
        if action is None:
            return
        if action.kind == "raise":
            raise FaultInjectedError(
                f"{action.message} (shard {shard}, op {op})"
            )
        sleep_ms = action.delay_ms if action.kind == "delay" else action.hang_ms
        time.sleep(sleep_ms / 1000.0)

    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.specs)} rules, fired={self.fired})"
