"""Concurrency primitives for the sharded query service.

The service runs queries and live updates against the same per-shard index
structures.  Queries share a shard freely (searchers only read the tree and
append to caches, which are individually thread-safe), but a structural
mutation — an R-tree insert or delete with its condense/reinsert cascade —
must never interleave with a traversal.  Each shard therefore carries a
:class:`ReadWriteLock`: queries hold it shared, mutations exclusively, and
the shard's epoch counter advances once per exclusive section so callers can
tell which version of the shard a result was computed against.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Any number of readers may hold the lock simultaneously; a writer waits
    for active readers to drain and excludes everyone.  Arriving readers
    queue behind a waiting writer so a steady query stream cannot starve
    updates.  Not reentrant — a thread must not acquire the read side while
    holding the write side or vice versa.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the lock shared for the duration of the block."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the lock exclusively for the duration of the block."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


class EpochCounter:
    """A monotonically increasing version number with thread-safe advance."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def advance(self) -> int:
        """Bump and return the new epoch."""
        with self._lock:
            self._value += 1
            return self._value

    @property
    def value(self) -> int:
        return self._value
