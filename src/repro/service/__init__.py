"""The sharded concurrent query service.

This package layers a serving architecture on top of the query engine:

* :mod:`repro.service.placement` — hash and space shard-placement policies;
* :mod:`repro.service.sharded` — :class:`ShardedDatabase`, partitioned
  indexes with parallel fan-out, global top-k merging and live updates;
* :mod:`repro.service.query_service` — :class:`QueryService`, a coalescing,
  admission-controlled front end reporting p50/p99 latency;
* :mod:`repro.service.concurrency` — the readers/writer lock and epoch
  counter the shards synchronise on.

Typical usage::

    from repro import AknnRequest
    from repro.service import ShardedDatabase, QueryService

    db = ShardedDatabase.build(objects, n_shards=4, placement="hash")
    with QueryService(db, window_ms=2.0, max_batch=64) as service:
        future = service.submit_request(AknnRequest(query, k=20, alpha=0.5))
        result = future.result()
"""

from repro.service.concurrency import EpochCounter, ReadWriteLock
from repro.service.placement import (
    PLACEMENT_POLICIES,
    HashPlacement,
    SpacePlacement,
    make_placement,
)
from repro.service.query_service import QueryService, ServiceStats
from repro.service.sharded import ShardedDatabase

__all__ = [
    "ShardedDatabase",
    "QueryService",
    "ServiceStats",
    "HashPlacement",
    "SpacePlacement",
    "make_placement",
    "PLACEMENT_POLICIES",
    "ReadWriteLock",
    "EpochCounter",
]
