"""The sharded concurrent query service.

This package layers a serving architecture on top of the query engine:

* :mod:`repro.service.placement` — hash and space shard-placement policies;
* :mod:`repro.service.sharded` — :class:`ShardedDatabase`, partitioned
  indexes with parallel fan-out, global top-k merging and live updates;
* :mod:`repro.service.query_service` — :class:`QueryService`, a coalescing,
  admission-controlled front end reporting p50/p99 latency;
* :mod:`repro.service.concurrency` — the readers/writer lock and epoch
  counter the shards synchronise on;
* :mod:`repro.service.policy` — deadlines, retry policies and per-shard
  circuit breakers (the failure-semantics building blocks);
* :mod:`repro.service.faults` — the injectable fault plans behind the chaos
  suite and ``serve --fault-plan``;
* :mod:`repro.service.subscriptions` — :class:`SubscriptionEngine`, standing
  AKNN/range queries maintained incrementally and pushed as result deltas;
* :mod:`repro.service.client` — :class:`RetryingClient`, the reference
  consumer of the retry-after backpressure contract.

Typical usage::

    from repro import AknnRequest
    from repro.service import ShardedDatabase, QueryService

    db = ShardedDatabase.build(objects, n_shards=4, placement="hash")
    with QueryService(db, window_ms=2.0, max_batch=64) as service:
        future = service.submit_request(AknnRequest(query, k=20, alpha=0.5))
        result = future.result()
"""

from repro.service.client import RetryBudgetExhaustedError, RetryingClient
from repro.service.concurrency import EpochCounter, ReadWriteLock
from repro.service.faults import FAULT_OPERATIONS, FaultPlan, FaultSpec
from repro.service.placement import (
    PLACEMENT_POLICIES,
    HashPlacement,
    SpacePlacement,
    make_placement,
)
from repro.service.policy import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.service.query_service import QueryService, ServiceStats
from repro.service.sharded import ShardedDatabase
from repro.service.subscriptions import (
    DeliverySubscription,
    ResultDelta,
    Subscription,
    SubscriptionEngine,
)

__all__ = [
    "ShardedDatabase",
    "QueryService",
    "ServiceStats",
    "SubscriptionEngine",
    "Subscription",
    "DeliverySubscription",
    "ResultDelta",
    "HashPlacement",
    "SpacePlacement",
    "make_placement",
    "PLACEMENT_POLICIES",
    "ReadWriteLock",
    "EpochCounter",
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "FaultPlan",
    "FaultSpec",
    "FAULT_OPERATIONS",
    "RetryingClient",
    "RetryBudgetExhaustedError",
]
