"""Shard placement policies.

A placement policy decides, for every object, which shard owns it.  Two
policies are provided:

``hash``
    Stateless multiplicative hashing of the object id.  Placement is uniform
    regardless of the data distribution, so shards stay balanced under any
    insert/delete workload, at the cost of no spatial locality — every query
    fans out to all shards.

``space``
    One-dimensional striping of the space: shard boundaries are fitted to
    the quantiles of the objects' support-MBR centres along the first axis,
    so each shard owns a contiguous slab.  Spatially concentrated query load
    then touches few shards; the trade-off is skew when inserts concentrate
    in one slab.

Both policies are deterministic functions of the object, so the owner of an
id can always be recomputed — the sharded database additionally keeps an
owner map so deletes don't need the object's geometry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

PLACEMENT_POLICIES = ("hash", "space")

# Knuth's multiplicative hashing constant (2^32 / phi); spreads sequential
# ids uniformly across shards instead of striping them modulo the count.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


class HashPlacement:
    """Uniform placement by multiplicative hashing of the object id."""

    name = "hash"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_for(self, object_id: int, center: Optional[np.ndarray] = None) -> int:
        """Owning shard of ``object_id`` (the centre is ignored)."""
        return ((int(object_id) * _HASH_MULTIPLIER) & _HASH_MASK) % self.n_shards

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "n_shards": self.n_shards}

    def __repr__(self) -> str:
        return f"HashPlacement(n_shards={self.n_shards})"


class SpacePlacement:
    """Quantile-striped placement along the first spatial axis."""

    name = "space"

    def __init__(self, boundaries: Sequence[float]):
        # boundaries[i] is the upper edge of stripe i; the last stripe is
        # open-ended, so n_shards = len(boundaries) + 1.
        self.boundaries = np.asarray(boundaries, dtype=float)
        self.n_shards = self.boundaries.size + 1

    @classmethod
    def fit(cls, centers: np.ndarray, n_shards: int) -> "SpacePlacement":
        """Fit stripe boundaries to the quantiles of ``centers``' first axis.

        With fewer distinct coordinates than shards the quantiles collapse;
        the duplicate boundaries are kept (some stripes own nothing), which
        is harmless — queries against an empty shard return instantly.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if n_shards == 1 or centers.size == 0:
            return cls(np.empty(0))
        xs = np.asarray(centers, dtype=float)
        if xs.ndim == 2:
            xs = xs[:, 0]
        quantiles = np.linspace(0.0, 1.0, n_shards + 1)[1:-1]
        return cls(np.quantile(xs, quantiles))

    def shard_for(self, object_id: int, center: Optional[np.ndarray] = None) -> int:
        """Owning shard for an object centred at ``center``.

        Non-finite centres are rejected: ``searchsorted`` would silently
        route a NaN (or +inf) coordinate to the last shard, which corrupts
        spatial locality and hides the bad geometry instead of surfacing it.
        """
        if center is None:
            raise ValueError("space placement requires the object's centre")
        x = float(np.asarray(center, dtype=float).reshape(-1)[0])
        if not np.isfinite(x):
            raise ValueError(
                f"space placement requires a finite centre coordinate, got {x!r} "
                f"for object {object_id}"
            )
        return int(np.searchsorted(self.boundaries, x, side="right"))

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "boundaries": self.boundaries.tolist(),
        }

    def __repr__(self) -> str:
        return f"SpacePlacement(n_shards={self.n_shards})"


def make_placement(
    name: str,
    n_shards: int,
    centers: Optional[np.ndarray] = None,
):
    """Build the named placement policy for ``n_shards`` shards."""
    if name not in PLACEMENT_POLICIES:
        raise ValueError(
            f"unknown placement policy {name!r}; expected one of {PLACEMENT_POLICIES}"
        )
    if name == "hash":
        return HashPlacement(n_shards)
    if centers is None:
        centers = np.empty((0, 1))
    return SpacePlacement.fit(np.asarray(centers, dtype=float), n_shards)
