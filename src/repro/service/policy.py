"""Fault-tolerance policies: deadlines, retries, circuit breakers.

These are the small, independently-testable building blocks of the serving
layer's failure semantics (see the README's "Failure semantics" section):

* :class:`Deadline` — an absolute point on the monotonic clock derived from a
  request's ``deadline_ms`` budget.  It is threaded from the coalescer
  through the planner into the batch executor's traversal loop, so expired
  work stops *before* burning a full traversal.
* :class:`RetryPolicy` — capped exponential backoff with jitter for
  idempotent per-shard reads.  Every query in this system is a read, so a
  transient worker failure is always safe to retry.
* :class:`CircuitBreaker` — a per-shard closed/open/half-open breaker.  A
  shard that keeps failing is declared sick: its portion of every fan-out is
  shed instantly (no retry storm against a dead shard) until the cool-off
  elapses, after which a bounded number of half-open probes test recovery.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.exceptions import DeadlineExceededError


class Deadline:
    """An absolute expiry on the monotonic clock.

    Cheap to check (one clock read, one comparison); the executor checks it
    between traversal chunks, the fan-out layer between retries, and the
    coalescer before flushing a bucket.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(time.monotonic() + float(budget_ms) / 1000.0)

    def remaining_ms(self) -> float:
        """Milliseconds until expiry (negative once expired)."""
        return (self.expires_at - time.monotonic()) * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` when expired."""
        overrun_ms = -self.remaining_ms()
        if overrun_ms >= 0.0:
            raise DeadlineExceededError(
                f"{what} deadline exceeded ({overrun_ms:.1f} ms past expiry)"
            )

    @staticmethod
    def earliest(*deadlines: Optional["Deadline"]) -> Optional["Deadline"]:
        """The tightest of several optional deadlines (``None`` = unbounded)."""
        concrete = [d for d in deadlines if d is not None]
        if not concrete:
            return None
        return min(concrete, key=lambda d: d.expires_at)

    def __repr__(self) -> str:
        return f"Deadline(remaining_ms={self.remaining_ms():.1f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter for idempotent reads.

    Attempt ``i`` (0-based) sleeps ``min(base * multiplier**i, cap)``
    milliseconds, scaled by a uniform random factor in ``[1 - jitter, 1]`` so
    synchronized failures do not retry in lockstep.  ``max_attempts`` counts
    the initial call: ``max_attempts=3`` means at most two retries.
    """

    max_attempts: int = 3
    base_delay_ms: float = 10.0
    max_delay_ms: float = 100.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0.0 or self.max_delay_ms < 0.0:
            raise ValueError("retry delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """The policy described by a :class:`~repro.config.RuntimeConfig`."""
        return cls(
            max_attempts=config.shard_retry_attempts,
            base_delay_ms=config.shard_retry_base_ms,
            max_delay_ms=config.shard_retry_max_ms,
            jitter=config.shard_retry_jitter,
        )

    def delay_seconds(self, attempt: int, rand: Callable[[], float] = random.random) -> float:
        """Backoff before retry number ``attempt`` (0-based), in seconds."""
        delay_ms = min(
            self.base_delay_ms * (self.multiplier ** attempt), self.max_delay_ms
        )
        scale = 1.0 - self.jitter * rand()
        return (delay_ms * scale) / 1000.0


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """A closed/open/half-open breaker guarding one shard.

    ``failure_threshold`` *consecutive* failed calls open the breaker; while
    open, :meth:`allow` answers ``False`` instantly (the fan-out sheds the
    shard's portion without touching it).  After ``reset_timeout_ms`` the
    breaker admits up to ``half_open_probes`` concurrent probe calls: one
    success closes it, one failure re-opens it for another full cool-off.
    Thread-safe; all shard fan-out workers share the same instance.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_ms: float = 1000.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_ms < 0.0:
            raise ValueError("reset_timeout_ms must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_ms) / 1000.0
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @classmethod
    def from_config(cls, config) -> "CircuitBreaker":
        return cls(
            failure_threshold=config.breaker_failure_threshold,
            reset_timeout_ms=config.breaker_reset_timeout_ms,
            half_open_probes=config.breaker_half_open_probes,
        )

    @property
    def state(self) -> BreakerState:
        """Current state (OPEN reported even if the cool-off has elapsed —
        the transition to HALF_OPEN happens on the next :meth:`allow`)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call be issued right now?

        CLOSED always allows.  OPEN allows nothing until the cool-off
        elapses, then flips to HALF_OPEN.  HALF_OPEN admits up to
        ``half_open_probes`` calls whose outcomes decide the next state.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probes_in_flight = 0
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def shedding(self) -> bool:
        """Non-mutating fast check: is the breaker open and still cooling off?

        Unlike :meth:`allow` this never consumes a half-open probe slot, so
        admission paths can consult it without influencing recovery.
        """
        with self._lock:
            return (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at < self.reset_timeout_s
            )

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self._state = BreakerState.CLOSED

    def record_failure(self) -> bool:
        """Record one failed call; returns ``True`` when this opened the breaker."""
        with self._lock:
            now = self._clock()
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.OPEN
                self._opened_at = now
                self._probes_in_flight = 0
                return True
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = BreakerState.OPEN
                self._opened_at = now
                return True
            return False

    def retry_after_ms(self) -> float:
        """Milliseconds until the breaker would admit a half-open probe."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return 0.0
            remaining = self.reset_timeout_s - (self._clock() - self._opened_at)
            return max(0.0, remaining * 1000.0)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"failures={self._consecutive_failures})"
        )
