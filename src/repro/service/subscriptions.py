"""Standing queries: registered requests maintained under live updates.

A client subscribes an :class:`~repro.core.requests.AknnRequest` or
:class:`~repro.core.requests.RangeRequest` and from then on receives
:class:`ResultDelta` messages whenever an insert or delete changes its
answer, instead of re-polling the full query.  The maintenance work per
update is deliberately small:

*Insert.*  A new object can only enter a kNN answer whose current k-th
distance it beats (or that is not full yet), and a range answer whose radius
it reaches.  Both conditions are screened *vectorised* across all
subscriptions at once: ``MinDist`` between each subscription's query
alpha-cut box and the new object's support box (:func:`min_dist_to_boxes`,
the Equation-1 kernel the tree traversal already uses) is a valid lower
bound on the exact alpha-distance, so subscriptions whose threshold lies
below it are dismissed without touching the object's point set
(SUB_SCREENED_OUT).  Only survivors pay one exact closest-pair evaluation
(SUB_EVALUATIONS).

*Delete.*  A delete can only change answers the object currently belongs
to.  A range subscription just drops the member (the delta is exact without
re-execution).  A kNN subscription must back-fill its k-th slot, which
requires a targeted re-query — routed through the engine's typed ``execute``
surface (SUB_REQUERIES), so on a sharded database the re-query is the normal
fan-out + cross-shard merge and the delta is correct across shards.

Parity invariant (pinned by the tests): after *every* mutation, replaying a
subscription's delta stream from empty reproduces exactly the result of
re-executing its request from scratch.

:class:`SubscriptionEngine` registers as an update listener on the database
(:meth:`~repro.core.database.FuzzyDatabase.add_update_listener`); the service
layer wraps subscriptions in a bounded :class:`DeliverySubscription` queue
and sheds consumers that fall behind (SUBSCRIBERS_SHED).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..config import RuntimeConfig
from ..core.requests import AknnRequest, QueryRequest, RangeRequest
from ..exceptions import EmptyAlphaCutError, InvalidQueryError
from ..fuzzy.alpha_distance import alpha_distance_points
from ..fuzzy.fuzzy_object import FuzzyObject
from ..index.soa import min_dist_to_boxes
from ..metrics.counters import MetricsCollector


@dataclass(frozen=True)
class ResultDelta:
    """One change notification for a standing query.

    ``added`` holds ``(object_id, distance)`` pairs entering the answer,
    ``removed`` the object ids leaving it.  ``seq`` increases by one per
    delta of a subscription (gap-free, so consumers can detect loss), and
    ``cause`` names the mutation that produced the delta (``"initial"``,
    ``"insert"``, ``"delete"``).
    """

    subscription_id: int
    seq: int
    added: Tuple[Tuple[int, float], ...] = ()
    removed: Tuple[int, ...] = ()
    cause: str = "initial"

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


class Subscription:
    """One registered standing query and its maintained answer."""

    def __init__(
        self,
        subscription_id: int,
        request: Union[AknnRequest, RangeRequest],
        listener: Optional[Callable[[ResultDelta], None]] = None,
        *,
        use_kdtree: bool = True,
    ) -> None:
        self.id = int(subscription_id)
        self.request = request
        self.listener = listener
        self.use_kdtree = use_kdtree
        self.alpha = float(request.alpha)
        # The query alpha-cut is fixed for the subscription's lifetime;
        # materialise it (and its box) once.
        self.query_cut = np.asarray(request.query.alpha_cut(self.alpha), dtype=float)
        if self.query_cut.shape[0] == 0:
            raise EmptyAlphaCutError(
                f"query alpha-cut at alpha={self.alpha} is empty"
            )
        self.query_lower = self.query_cut.min(axis=0)
        self.query_upper = self.query_cut.max(axis=0)
        # Current answer: {object_id: exact alpha-distance}.
        self.members: Dict[int, float] = {}
        self.seq = 0
        self.active = True

    # ------------------------------------------------------------------

    @property
    def is_aknn(self) -> bool:
        return isinstance(self.request, AknnRequest)

    @property
    def threshold(self) -> float:
        """Largest exact distance a new insert must beat to matter.

        kNN: the k-th member distance (``inf`` while the answer is not yet
        full — any insert may enter).  Range: the radius.
        """
        if self.is_aknn:
            if len(self.members) < self.request.k:
                return float("inf")
            return max(self.members.values())
        return float(self.request.radius)

    def distance_of(self, obj: FuzzyObject) -> float:
        """Exact alpha-distance between the query and ``obj``."""
        cut = np.asarray(obj.alpha_cut(self.alpha), dtype=float)
        return alpha_distance_points(cut, self.query_cut, use_kdtree=self.use_kdtree)

    def ranked_members(self) -> List[Tuple[float, int]]:
        """Members ordered by ``(distance, object_id)`` — the merge order."""
        return sorted((d, oid) for oid, d in self.members.items())

    # ------------------------------------------------------------------

    def emit(self, added, removed, cause: str) -> Optional[ResultDelta]:
        added = tuple(sorted(added))
        removed = tuple(sorted(removed))
        if not added and not removed:
            return None
        delta = ResultDelta(
            subscription_id=self.id,
            seq=self.seq,
            added=added,
            removed=removed,
            cause=cause,
        )
        self.seq += 1
        if self.listener is not None:
            self.listener(delta)
        return delta


class SubscriptionEngine:
    """Maintains every registered standing query under inserts and deletes.

    Implements the update-listener protocol (:meth:`notify_insert`,
    :meth:`notify_delete`) and is meant to be attached with
    ``database.add_update_listener(engine)`` so every mutation — whether it
    enters through the database, the sharded fan-out or the query service —
    triggers maintenance exactly once, after the mutation is applied.
    """

    def __init__(
        self,
        engine,
        config: Optional[RuntimeConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.engine = engine
        self.config = config or getattr(engine, "config", None) or RuntimeConfig()
        self.metrics = metrics if metrics is not None else getattr(engine, "metrics", None)
        self._subs: Dict[int, Subscription] = {}
        self._next_id = 0
        # Reentrant: delta listeners run under this lock, and a listener
        # may call back into unsubscribe() on the same thread (the delivery
        # queue sheds its subscription on overflow).
        self._lock = threading.RLock()
        # Stacked (S, d) query boxes for the vectorised insert screen;
        # rebuilt lazily after subscribe/unsubscribe.
        self._screen_ids: Optional[List[int]] = None
        self._screen_lower: Optional[np.ndarray] = None
        self._screen_upper: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def subscribe(
        self,
        request: QueryRequest,
        listener: Optional[Callable[[ResultDelta], None]] = None,
    ) -> Subscription:
        """Register ``request`` and emit its initial answer as a delta."""
        if not isinstance(request, (AknnRequest, RangeRequest)):
            raise InvalidQueryError(
                "standing queries support AknnRequest and RangeRequest, got "
                f"{type(request).__name__}"
            )
        with self._lock:
            sub = Subscription(
                self._next_id,
                request,
                listener,
                use_kdtree=self.config.use_kdtree,
            )
            self._next_id += 1
            sub.members = self._execute_members(sub)
            self._subs[sub.id] = sub
            self._invalidate_screen()
            self._count(MetricsCollector.SUBSCRIPTIONS)
            delta = sub.emit(
                [(oid, d) for oid, d in sub.members.items()], [], "initial"
            )
            if delta is not None:
                self._count(MetricsCollector.SUB_DELTAS)
        return sub

    def unsubscribe(self, subscription: Union[Subscription, int]) -> None:
        sub_id = subscription.id if isinstance(subscription, Subscription) else int(subscription)
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is not None:
                sub.active = False
                self._invalidate_screen()

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    # ------------------------------------------------------------------
    # Update-listener protocol
    # ------------------------------------------------------------------

    def notify_insert(self, obj: FuzzyObject) -> None:
        """Maintain every subscription after ``obj`` was inserted."""
        with self._lock:
            if not self._subs:
                return
            object_id = int(obj.object_id)
            support = obj.support_mbr()
            lower, upper, ids = self._screen_matrices()
            # MinDist(query alpha-cut box, object support box) lower-bounds
            # the exact alpha-distance at every alpha, so one (S, 1) kernel
            # call screens all subscriptions at once.
            bounds = min_dist_to_boxes(
                lower,
                upper,
                support.lower[None, :],
                support.upper[None, :],
            )[:, 0]
            screened = 0
            for sub_index, sub_id in enumerate(ids):
                sub = self._subs.get(sub_id)
                if sub is None:
                    continue
                if bounds[sub_index] > sub.threshold:
                    screened += 1
                    continue
                self._count(MetricsCollector.SUB_EVALUATIONS)
                try:
                    distance = sub.distance_of(obj)
                except EmptyAlphaCutError:
                    # No point of the object reaches this alpha: it cannot
                    # belong to any alpha-cut answer.
                    continue
                self._apply_insert(sub, object_id, distance)
            if screened:
                self._count(MetricsCollector.SUB_SCREENED_OUT, screened)

    def notify_delete(self, object_id: int) -> None:
        """Maintain every subscription after ``object_id`` was deleted."""
        object_id = int(object_id)
        with self._lock:
            for sub in list(self._subs.values()):
                if object_id not in sub.members:
                    continue
                if sub.is_aknn:
                    # The k-th slot must be back-filled: targeted re-query
                    # through the typed surface (fans out + merges across
                    # shards on a sharded engine), then diff.
                    self._count(MetricsCollector.SUB_REQUERIES)
                    fresh = self._execute_members(sub)
                    added = [
                        (oid, d) for oid, d in fresh.items() if oid not in sub.members
                    ]
                    removed = [oid for oid in sub.members if oid not in fresh]
                    sub.members = fresh
                    if sub.emit(added, removed, "delete") is not None:
                        self._count(MetricsCollector.SUB_DELTAS)
                else:
                    sub.members.pop(object_id)
                    sub.emit([], [object_id], "delete")
                    self._count(MetricsCollector.SUB_DELTAS)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_insert(self, sub: Subscription, object_id: int, distance: float) -> None:
        if sub.is_aknn:
            k = sub.request.k
            if len(sub.members) < k:
                sub.members[object_id] = distance
                if sub.emit([(object_id, distance)], [], "insert") is not None:
                    self._count(MetricsCollector.SUB_DELTAS)
                return
            worst_d, worst_id = max((d, oid) for oid, d in sub.members.items())
            if (distance, object_id) < (worst_d, worst_id):
                sub.members.pop(worst_id)
                sub.members[object_id] = distance
                sub.emit([(object_id, distance)], [worst_id], "insert")
                self._count(MetricsCollector.SUB_DELTAS)
            return
        if distance <= sub.request.radius:
            sub.members[object_id] = distance
            sub.emit([(object_id, distance)], [], "insert")
            self._count(MetricsCollector.SUB_DELTAS)

    def _execute_members(self, sub: Subscription) -> Dict[int, float]:
        """Run the subscription's request and return exact ``{id: distance}``.

        Lazily-confirmed kNN neighbours (accepted through bounds alone) carry
        ``distance=None``; the maintained state needs exact distances, so
        those are resolved with one store probe + closest-pair evaluation.
        """
        result = self.engine.execute(sub.request)
        members: Dict[int, float] = {}
        if isinstance(sub.request, AknnRequest):
            for neighbor in result.neighbors:
                distance = neighbor.distance
                if distance is None:
                    obj = self.engine.get_object(neighbor.object_id)
                    distance = sub.distance_of(obj)
                members[int(neighbor.object_id)] = float(distance)
        else:
            for object_id, distance in result.matches:
                members[int(object_id)] = float(distance)
        return members

    def _screen_matrices(self):
        if self._screen_lower is None:
            subs = list(self._subs.values())
            self._screen_ids = [s.id for s in subs]
            self._screen_lower = np.stack([s.query_lower for s in subs])
            self._screen_upper = np.stack([s.query_upper for s in subs])
        return self._screen_lower, self._screen_upper, self._screen_ids

    def _invalidate_screen(self) -> None:
        self._screen_ids = None
        self._screen_lower = None
        self._screen_upper = None

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)


class SubscriptionShedError(Exception):
    """Internal marker: the delivery queue overflowed (consumer too slow)."""


class DeliverySubscription:
    """A subscription whose deltas are buffered for a pulling consumer.

    The service layer hands these out: deltas queue up to
    ``RuntimeConfig.subscription_queue_depth``; a consumer that falls
    further behind is *shed* — the subscription is cancelled, the counter
    bumped, and the queue is terminated with a sentinel so the consumer
    observes the shed instead of waiting forever.
    """

    _CLOSE = object()

    def __init__(self, depth: int) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, int(depth)))
        self.subscription: Optional[Subscription] = None
        self.shed = False
        self.closed = False
        self._on_overflow: Optional[Callable[[], None]] = None

    @property
    def id(self) -> int:
        assert self.subscription is not None
        return self.subscription.id

    # -- producer side -------------------------------------------------

    def deliver(self, delta: ResultDelta) -> None:
        try:
            self._queue.put_nowait(delta)
        except queue.Full:
            self.shed = True
            self.close()
            if self._on_overflow is not None:
                self._on_overflow()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._queue.put_nowait(self._CLOSE)
            except queue.Full:
                # Consumer will still observe `closed` once it drains.
                pass

    # -- consumer side -------------------------------------------------

    def poll(self, timeout: Optional[float] = None) -> Optional[ResultDelta]:
        """Next delta, ``None`` when the stream ended (or ``timeout`` hit)."""
        try:
            item = self._queue.get(timeout=timeout) if timeout is not None else self._queue.get_nowait()
        except queue.Empty:
            return None
        if item is self._CLOSE:
            return None
        return item

    def drain(self) -> List[ResultDelta]:
        """Every currently queued delta, without blocking."""
        deltas: List[ResultDelta] = []
        while True:
            delta = self.poll()
            if delta is None:
                return deltas
            deltas.append(delta)

    def __iter__(self) -> Iterator[ResultDelta]:
        while True:
            item = self._queue.get()
            if item is self._CLOSE:
                return
            yield item
