"""The analytical access-cost model of Section 5 (Equations 6-8).

The model estimates how many objects a *basic* AKNN search touches, assuming
a dataset of ideal fuzzy objects (Definition 8: spheres whose alpha-cut radius
is a function ``R(alpha)``):

1. Represent every object by its centre; the expected distance from the query
   centre to its k-th nearest centre in a unit space follows from the
   correlation fractal dimension (Equation 6 for uniform 2-d data).
2. The alpha-distance to the k-th neighbour is that centre distance minus the
   two alpha-cut radii: ``d_knn(alpha) = eps - 2 R(alpha)``.
3. The number of leaf/object accesses of the resulting range query follows
   the Papadopoulos-Manolopoulos formula (Equation 7); substituting the kNN
   range ``d_knn(alpha) + R(alpha)`` yields Equation 8.

All distances inside the formulas live in the unit space; the model accepts a
``space_size`` so callers can work in data coordinates (the paper's space is
100 x 100).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.config import DEFAULT_RTREE_MAX_ENTRIES

# Radius functions map a probability threshold to the alpha-cut radius of an
# ideal fuzzy object, in data coordinates.
RadiusFunction = Callable[[float], float]


def estimate_knn_radius(k: int, n_objects: int, dimension: float = 2.0) -> float:
    """Equation 6: expected centre distance to the k-th neighbour (unit space).

    For a uniform 2-d dataset (``D2 = 2``) this reduces to the closed form
    ``(1 / sqrt(pi)) * sqrt(k / (N - 1))``; other correlation dimensions use
    the general form obtained by inverting ``nb(eps) = (N-1) (sqrt(pi) eps)^D2``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if n_objects < 2:
        raise ValueError("the cost model needs at least two objects")
    ratio = k / (n_objects - 1)
    return float(ratio ** (1.0 / dimension) / math.sqrt(math.pi))


def expected_knn_distance(
    k: int,
    n_objects: int,
    alpha: float,
    radius_function: RadiusFunction,
    space_size: float = 1.0,
    dimension: float = 2.0,
) -> float:
    """Expected alpha-distance to the k-th neighbour: ``eps - 2 R(alpha)``.

    The result is clamped at zero — overlapping ideal objects have
    alpha-distance zero.
    """
    eps_unit = estimate_knn_radius(k, n_objects, dimension)
    eps = eps_unit * space_size
    return max(0.0, eps - 2.0 * radius_function(alpha))


def gaussian_cut_radius(
    alpha: float, object_radius: float = 0.5, sigma: float = 0.5
) -> float:
    """``R(alpha)`` of the paper's synthetic objects.

    Raw membership of a synthetic point at distance ``r`` from the centre is
    ``g(r) = exp(-r^2 / (2 sigma^2))``; Section 6.1 then normalises the values
    across 0 to 1, i.e. ``mu(r) = (g(r) - g(R)) / (1 - g(R))`` where ``R`` is
    the object radius.  Inverting ``mu(r) = alpha`` gives the alpha-cut radius
    ``sigma * sqrt(-2 ln(alpha + (1 - alpha) g(R)))``, clipped to ``[0, R]``.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if alpha == 1.0:
        return 0.0
    boundary_membership = math.exp(-(object_radius**2) / (2.0 * sigma**2))
    raw = alpha + (1.0 - alpha) * boundary_membership
    radius = sigma * math.sqrt(-2.0 * math.log(raw))
    return float(min(object_radius, max(0.0, radius)))


@dataclass
class AccessCostModel:
    """Equation 8: expected number of object accesses of a basic AKNN search.

    Parameters
    ----------
    n_objects:
        Dataset cardinality ``N``.
    radius_function:
        ``R(alpha)`` of the ideal fuzzy objects, in data coordinates.
    space_size:
        Side length of the (square) data space; 1.0 for unit-space inputs.
    node_capacity:
        Maximum R-tree leaf fan-out ``C_max``.
    utilization:
        Average node utilisation ``U_avg``; STR bulk loading packs nodes
        nearly full, so the default is 0.9.
    hausdorff_dimension, correlation_dimension:
        ``D0`` and ``D2`` of the object centres (both 2 for uniform 2-d data).
    """

    n_objects: int
    radius_function: RadiusFunction
    space_size: float = 1.0
    node_capacity: int = DEFAULT_RTREE_MAX_ENTRIES
    utilization: float = 0.9
    hausdorff_dimension: float = 2.0
    correlation_dimension: float = 2.0

    def __post_init__(self) -> None:
        if self.n_objects < 2:
            raise ValueError("the cost model needs at least two objects")
        if self.space_size <= 0:
            raise ValueError("space_size must be positive")
        if self.node_capacity < 1:
            raise ValueError("node_capacity must be positive")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")

    # ------------------------------------------------------------------
    # Intermediate quantities
    # ------------------------------------------------------------------
    @property
    def average_capacity(self) -> float:
        """``C_avg = C_max * U_avg``."""
        return self.node_capacity * self.utilization

    def knn_center_distance(self, k: int) -> float:
        """Equation 6 scaled into data coordinates."""
        return (
            estimate_knn_radius(k, self.n_objects, self.correlation_dimension)
            * self.space_size
        )

    def knn_distance(self, k: int, alpha: float) -> float:
        """``d_knn(alpha) = eps - 2 R(alpha)`` in data coordinates."""
        return max(0.0, self.knn_center_distance(k) - 2.0 * self.radius_function(alpha))

    def search_range(self, k: int, alpha: float) -> float:
        """The equivalent range-query radius ``d_knn(alpha) + R(alpha)``."""
        return max(0.0, self.knn_distance(k, alpha) + self.radius_function(alpha))

    # ------------------------------------------------------------------
    # Equations 7 and 8
    # ------------------------------------------------------------------
    def range_query_accesses(self, search_range: float, capacity: Optional[float] = None) -> float:
        """Equation 7: expected leaf accesses of a range query of radius ``d``.

        ``capacity`` is ``C_avg``, the average number of data entries per
        accessed unit.  The default (``C_max * U_avg``) estimates accesses to
        R-tree *leaf nodes*; passing ``capacity=1`` estimates accesses to
        individual data entries, which in this library's layout (one fuzzy
        object per leaf entry, Section 3.1 of the paper) is the number of
        *objects* touched.
        """
        if search_range < 0:
            raise ValueError("search_range must be non-negative")
        c_avg = self.average_capacity if capacity is None else float(capacity)
        d_unit = search_range / self.space_size
        side = (c_avg / self.n_objects) ** (1.0 / self.hausdorff_dimension)
        leaves = (
            (self.n_objects - 1)
            / c_avg
            * (side + 2.0 * d_unit) ** self.correlation_dimension
        )
        return float(max(leaves, 1.0))

    def predict_node_accesses(self, k: int, alpha: float) -> float:
        """Expected R-tree leaf-node accesses of a basic AKNN query (Eq. 7 + 8)."""
        return self.range_query_accesses(self.search_range(k, alpha))

    def predict_object_accesses(self, k: int, alpha: float) -> float:
        """Equation 8: expected number of objects accessed by a basic AKNN query.

        Each fuzzy object is one leaf entry, so the object-level prediction
        evaluates the range-query formula with a per-entry capacity of one;
        the prediction can never drop below ``k`` because the k results
        themselves must always be verified.
        """
        objects = self.range_query_accesses(self.search_range(k, alpha), capacity=1.0)
        return float(max(objects, k))

    # ------------------------------------------------------------------
    # Sweeps used by the Section-5 validation experiment
    # ------------------------------------------------------------------
    def sweep_alpha(self, k: int, alphas: Iterable[float]) -> List[Dict[str, float]]:
        """Predicted accesses for several thresholds at fixed ``k``."""
        return [
            {"alpha": float(alpha), "predicted_accesses": self.predict_object_accesses(k, alpha)}
            for alpha in alphas
        ]

    def sweep_k(self, alpha: float, ks: Iterable[int]) -> List[Dict[str, float]]:
        """Predicted accesses for several ``k`` at a fixed threshold."""
        return [
            {"k": int(k), "predicted_accesses": self.predict_object_accesses(int(k), alpha)}
            for k in ks
        ]

    @classmethod
    def for_synthetic_dataset(
        cls,
        n_objects: int,
        space_size: float = 100.0,
        object_radius: float = 0.5,
        sigma: float = 0.5,
        node_capacity: int = DEFAULT_RTREE_MAX_ENTRIES,
        utilization: float = 0.9,
        correlation_dimension: Optional[float] = None,
        hausdorff_dimension: Optional[float] = None,
    ) -> "AccessCostModel":
        """Model preconfigured for the paper's synthetic dataset."""
        return cls(
            n_objects=n_objects,
            radius_function=lambda alpha: gaussian_cut_radius(alpha, object_radius, sigma),
            space_size=space_size,
            node_capacity=node_capacity,
            utilization=utilization,
            hausdorff_dimension=hausdorff_dimension or 2.0,
            correlation_dimension=correlation_dimension or 2.0,
        )
