"""Cost analysis of Section 5.

* :mod:`~repro.analysis.fractal` — correlation (D2) and box-counting /
  Hausdorff (D0) fractal-dimension estimators for point sets, following
  Papadopoulos & Manolopoulos.
* :mod:`~repro.analysis.cost_model` — the analytical estimate of the number
  of objects accessed by an AKNN query (Equations 6-8), parameterised by the
  ideal-fuzzy-object radius function ``R(alpha)``.
"""

from repro.analysis.fractal import (
    box_counting_dimension,
    correlation_dimension,
)
from repro.analysis.cost_model import (
    AccessCostModel,
    estimate_knn_radius,
    expected_knn_distance,
)

__all__ = [
    "box_counting_dimension",
    "correlation_dimension",
    "AccessCostModel",
    "estimate_knn_radius",
    "expected_knn_distance",
]
