"""Fractal dimension estimators for point sets.

The access-cost model of Section 5 borrows two formulas from Papadopoulos &
Manolopoulos that are parameterised by the *correlation fractal dimension*
``D2`` and the *Hausdorff (box-counting) fractal dimension* ``D0`` of the
dataset (both equal 2 for uniformly distributed 2-d data).  This module
estimates the two dimensions empirically so the cost model can also be
applied to skewed datasets.

Both estimators use the standard log-log regression over a geometric ladder
of scales:

* ``D0``: slope of ``log(occupied boxes)`` against ``log(1 / box size)``.
* ``D2``: slope of ``log(sum of squared box occupancies)`` against
  ``log(box size)`` (the grid approximation of the correlation integral).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _scale_ladder(
    points: np.ndarray, n_scales: int, min_cells: int, max_cells: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalised points plus a geometric ladder of grid resolutions."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] < 2:
        raise ValueError("fractal dimension needs a (n, d) array with n >= 2")
    lower = pts.min(axis=0)
    extent = pts.max(axis=0) - lower
    extent[extent == 0.0] = 1.0
    normalised = (pts - lower) / extent
    resolutions = np.unique(
        np.round(
            np.exp(np.linspace(np.log(min_cells), np.log(max_cells), n_scales))
        ).astype(int)
    )
    resolutions = resolutions[resolutions >= 2]
    return normalised, resolutions, extent


def _cell_counts(normalised: np.ndarray, resolution: int) -> np.ndarray:
    """Number of points falling into each occupied grid cell."""
    cells = np.minimum((normalised * resolution).astype(int), resolution - 1)
    # Hash the d-dimensional cell index into a single integer per point.
    dims = cells.shape[1]
    keys = cells[:, 0].astype(np.int64)
    for dim in range(1, dims):
        keys = keys * resolution + cells[:, dim]
    _, counts = np.unique(keys, return_counts=True)
    return counts


def box_counting_dimension(
    points: np.ndarray,
    n_scales: int = 8,
    min_cells: int = 2,
    max_cells: int = 64,
) -> float:
    """Hausdorff (box-counting) dimension ``D0`` of a point set."""
    normalised, resolutions, _ = _scale_ladder(points, n_scales, min_cells, max_cells)
    log_counts = []
    log_scales = []
    for resolution in resolutions:
        occupied = _cell_counts(normalised, int(resolution)).size
        log_counts.append(np.log(occupied))
        log_scales.append(np.log(resolution))
    if len(log_scales) < 2:
        return float(points.shape[1])
    slope, _ = np.polyfit(log_scales, log_counts, 1)
    return float(np.clip(slope, 0.0, points.shape[1]))


def correlation_dimension(
    points: np.ndarray,
    n_scales: int = 8,
    min_cells: int = 2,
    max_cells: int = 64,
) -> float:
    """Correlation dimension ``D2`` of a point set (grid approximation)."""
    normalised, resolutions, _ = _scale_ladder(points, n_scales, min_cells, max_cells)
    log_s2 = []
    log_sizes = []
    total = normalised.shape[0]
    for resolution in resolutions:
        counts = _cell_counts(normalised, int(resolution))
        s2 = float(np.sum((counts / total) ** 2))
        log_s2.append(np.log(s2))
        log_sizes.append(np.log(1.0 / resolution))
    if len(log_sizes) < 2:
        return float(points.shape[1])
    slope, _ = np.polyfit(log_sizes, log_s2, 1)
    return float(np.clip(slope, 0.0, points.shape[1]))


def dataset_center_dimension(
    centers: np.ndarray, kind: str = "correlation", n_scales: int = 8
) -> float:
    """Fractal dimension of a dataset represented by its object centres."""
    if kind == "correlation":
        return correlation_dimension(centers, n_scales=n_scales)
    if kind == "hausdorff":
        return box_counting_dimension(centers, n_scales=n_scales)
    raise ValueError(f"unknown dimension kind {kind!r}")


def uniform_reference_dimension(dimensions: int = 2) -> float:
    """The fractal dimension of a uniform set (both D0 and D2): the embedding dimension."""
    return float(dimensions)


def estimate_dimensions(
    centers: np.ndarray, n_scales: int = 8
) -> Tuple[float, float]:
    """Convenience helper returning ``(D0, D2)`` for a set of object centres."""
    return (
        box_counting_dimension(centers, n_scales=n_scales),
        correlation_dimension(centers, n_scales=n_scales),
    )


def sample_centers(
    centers: np.ndarray, max_points: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Subsample centres before estimation to bound the estimator's cost."""
    pts = np.asarray(centers, dtype=float)
    if pts.shape[0] <= max_points:
        return pts
    rng = rng or np.random.default_rng(0)
    idx = rng.choice(pts.shape[0], size=max_points, replace=False)
    return pts[idx]
