"""A file-backed fuzzy object store with exact access counting.

The store mirrors the paper's storage model: the (large) point sets live on
disk, the index keeps only summaries, and every time a search algorithm needs
an actual object it performs an *object access* — the metric reported on the
y-axis of Figures 11, 13 and 15a.

Two usage modes are supported:

* **on-disk** (default): objects are appended to a single data file; ``get``
  seeks and reads the record back.
* **in-memory**: backed by a ``dict`` for unit tests and tiny examples; the
  access counter behaves identically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ObjectNotFoundError, StorageCorruptionError, StorageError
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.storage.cache import LRUCache
from repro.storage.serialization import HEADER_SIZE, MAGIC, decode_object, encode_object


@dataclass
class StoreStatistics:
    """Counters describing the I/O behaviour of a store."""

    object_accesses: int = 0
    physical_reads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    deletes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.object_accesses = 0
        self.physical_reads = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.cache_hits = 0
        self.deletes = 0

    def snapshot(self) -> "StoreStatistics":
        """A copy of the current counters."""
        return StoreStatistics(
            object_accesses=self.object_accesses,
            physical_reads=self.physical_reads,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            cache_hits=self.cache_hits,
            deletes=self.deletes,
        )


@dataclass
class _Slot:
    """Location of one record inside the data file."""

    offset: int
    length: int


class ObjectStore:
    """Append-once store mapping object ids to fuzzy objects.

    Parameters
    ----------
    path:
        Path of the backing data file.  ``None`` selects the in-memory mode.
    cache_capacity:
        Number of decoded objects kept in an LRU buffer pool.  ``0`` (the
        default) disables the pool so every access is a physical read, which
        matches the paper's accounting.
    cut_cache_capacity:
        When given, every decoded object's per-object alpha-cut LRU cache is
        resized to this capacity (``None`` keeps the library default).
    """

    def __init__(
        self,
        path: Optional[os.PathLike | str] = None,
        cache_capacity: int = 0,
        cut_cache_capacity: Optional[int] = None,
    ):
        self._path = Path(path) if path is not None else None
        self._cut_cache_capacity = cut_cache_capacity
        # Ids are never recycled: deleting the highest id must not let a later
        # ``put`` hand the same id out again, or stale per-id caches (alpha
        # cuts, distance profiles) would silently apply to the new object.
        self._id_watermark = 0
        self._slots: Dict[int, _Slot] = {}
        self._memory: Dict[int, bytes] = {}
        self._cache: LRUCache[int, FuzzyObject] = LRUCache(cache_capacity)
        self.statistics = StoreStatistics()
        self._file = None
        self._closed = False
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            # Open for appending + reading; create the file if needed.
            self._file = open(self._path, "a+b")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[FuzzyObject],
        path: Optional[os.PathLike | str] = None,
        cache_capacity: int = 0,
    ) -> "ObjectStore":
        """Create a store and bulk-load ``objects`` into it."""
        store = cls(path=path, cache_capacity=cache_capacity)
        for obj in objects:
            store.put(obj)
        return store

    def flush(self) -> None:
        """Push buffered appends to stable storage (no-op in memory mode)."""
        if self._file is not None and not self._closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush and close the backing file."""
        if self._file is not None and not self._closed:
            self._file.flush()
            self._file.close()
        self._closed = True

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(self, obj: FuzzyObject) -> int:
        """Append ``obj`` and return its object id.

        Objects without an id are assigned the next sequential id.
        """
        self._ensure_open()
        if obj.object_id is None:
            obj = obj.with_id(self._next_id())
        object_id = int(obj.object_id)
        if object_id in self._slots or object_id in self._memory:
            raise StorageError(f"object id {object_id} already stored")
        payload = encode_object(obj)
        if self._file is not None:
            self._file.seek(0, os.SEEK_END)
            offset = self._file.tell()
            self._file.write(payload)
            self._slots[object_id] = _Slot(offset=offset, length=len(payload))
        else:
            self._memory[object_id] = payload
            self._slots[object_id] = _Slot(offset=0, length=len(payload))
        self.statistics.bytes_written += len(payload)
        self._id_watermark = max(self._id_watermark, object_id + 1)
        return object_id

    def _next_id(self) -> int:
        return max(self._id_watermark, max(self._slots.keys(), default=-1) + 1)

    def delete(self, object_id: int) -> None:
        """Remove one object from the store.

        On-disk mode leaves the record bytes dead in the data file (the store
        is append-only); the slot is dropped so the id can no longer be
        probed, and any buffered copy is evicted from the cache.  Deleted ids
        are never reassigned by :meth:`put`.
        """
        self._ensure_open()
        object_id = int(object_id)
        # pop() keeps concurrent deletes of the same id race-free: exactly
        # one caller wins, the other sees the consistent not-found.
        if self._slots.pop(object_id, None) is None:
            raise ObjectNotFoundError(f"object {object_id} is not in the store")
        self._memory.pop(object_id, None)
        self._cache.invalidate(object_id)
        self.statistics.deletes += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, object_id: int) -> FuzzyObject:
        """Probe one object from storage, counting the access."""
        self._ensure_open()
        object_id = int(object_id)
        if object_id not in self._slots:
            raise ObjectNotFoundError(f"object {object_id} is not in the store")
        self.statistics.object_accesses += 1
        cached = self._cache.get(object_id)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached
        payload = self._read_payload(object_id)
        self.statistics.physical_reads += 1
        self.statistics.bytes_read += len(payload)
        obj = decode_object(payload)
        if obj.object_id is None:
            obj = obj.with_id(object_id)
        if self._cut_cache_capacity is not None:
            obj.set_cut_cache_capacity(self._cut_cache_capacity)
        self._cache.put(object_id, obj)
        return obj

    def get_many(self, object_ids: Iterable[int]) -> List[FuzzyObject]:
        """Probe several objects, fetching each distinct id once.

        Duplicate ids in the request are served from the first fetch instead
        of paying one access (and potentially one physical read) apiece; the
        returned list still matches the request order element for element.
        """
        ids = [int(object_id) for object_id in object_ids]
        fetched: Dict[int, FuzzyObject] = {}
        for object_id in ids:
            if object_id not in fetched:
                fetched[object_id] = self.get(object_id)
        return [fetched[object_id] for object_id in ids]

    def _read_payload(self, object_id: int) -> bytes:
        # Re-fetch instead of indexing: a delete racing a read must surface
        # as the not-found the caller already handles, never a KeyError.
        slot = self._slots.get(object_id)
        if slot is None:
            raise ObjectNotFoundError(f"object {object_id} is not in the store")
        if self._file is not None:
            self._file.flush()
            self._file.seek(slot.offset)
            payload = self._file.read(slot.length)
            if len(payload) != slot.length:
                raise StorageError(f"short read for object {object_id}")
            return payload
        return self._memory[object_id]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, object_id: int) -> bool:
        return int(object_id) in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def object_ids(self) -> List[int]:
        """All stored ids in insertion order."""
        return sorted(self._slots.keys())

    def iter_objects(self, count_accesses: bool = True) -> Iterator[FuzzyObject]:
        """Iterate over every stored object.

        ``count_accesses=False`` is used by offline build steps (for example
        summary construction) that should not pollute the query-time metrics.
        """
        for object_id in self.object_ids():
            if count_accesses:
                yield self.get(object_id)
            else:
                payload = self._read_payload(object_id)
                obj = decode_object(payload)
                if obj.object_id is None:
                    obj = obj.with_id(object_id)
                yield obj

    @property
    def access_count(self) -> int:
        """Number of object accesses since the last reset."""
        return self.statistics.object_accesses

    def reset_statistics(self) -> None:
        """Zero counters before running a measured query."""
        self.statistics.reset()
        self._cache.reset_statistics()

    def size_on_disk(self) -> int:
        """Total bytes occupied by stored records."""
        return sum(slot.length for slot in self._slots.values())

    def slot_table(self) -> Dict[int, Tuple[int, int]]:
        """``{object_id: (offset, length)}`` — exposed for catalogue persistence."""
        return {oid: (slot.offset, slot.length) for oid, slot in self._slots.items()}

    @property
    def path(self) -> Optional[Path]:
        """Backing data file, ``None`` for in-memory stores."""
        return self._path

    def dump(self, path: os.PathLike | str) -> Dict[int, Tuple[int, int]]:
        """Write every live record to a fresh data file at ``path``.

        The file is published atomically (tmp + ``os.replace``) and the new
        slot table is returned.  Snapshots use this to materialise in-memory
        stores (and to compact on-disk ones whose data file lives elsewhere);
        the store itself keeps serving from its current backing.
        """
        self._ensure_open()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        table: Dict[int, Tuple[int, int]] = {}
        with open(tmp, "wb") as out:
            for object_id in self.object_ids():
                payload = self._read_payload(object_id)
                table[object_id] = (out.tell(), len(payload))
                out.write(payload)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
        return table

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("object store has been closed")

    # ------------------------------------------------------------------
    # Re-opening an existing store
    # ------------------------------------------------------------------
    @property
    def id_watermark(self) -> int:
        """The smallest id a future :meth:`put` may assign.

        Monotonically increasing and never behind ``max(ids) + 1``; persist
        it alongside the slot table so the never-recycle-ids guarantee
        survives a save/reopen even when the highest id was deleted.
        """
        return self._next_id()

    @classmethod
    def open_existing(
        cls,
        path: os.PathLike | str,
        slot_table: Dict[int, Tuple[int, int]],
        cache_capacity: int = 0,
        cut_cache_capacity: Optional[int] = None,
        id_watermark: Optional[int] = None,
    ) -> "ObjectStore":
        """Attach to a previously written data file using its slot table.

        ``id_watermark`` restores the persisted never-recycle bound; when
        absent (older catalogues) it falls back to ``max(ids) + 1``, which
        is correct unless the highest id had been deleted before saving.

        The file is validated against the slot table before the store is
        handed out: a missing or truncated data file, or a record that does
        not start with the codec magic, raises
        :class:`~repro.exceptions.StorageCorruptionError` naming the path
        and byte offset of the damage.  Crash recovery relies on this
        distinction — a WAL with a torn tail is repairable, a data file that
        cannot back its own catalogue is not.
        """
        path = Path(path)
        slots = {
            int(oid): _Slot(offset=int(off), length=int(length))
            for oid, (off, length) in slot_table.items()
        }
        if not path.exists():
            raise StorageCorruptionError(
                f"{path}: data file is missing", path=path, offset=0
            )
        size = path.stat().st_size
        for oid, slot in sorted(slots.items(), key=lambda kv: kv[1].offset):
            if slot.offset + slot.length > size:
                raise StorageCorruptionError(
                    f"{path}: truncated data file — object {oid} needs bytes "
                    f"[{slot.offset}, {slot.offset + slot.length}) but the file "
                    f"has {size}",
                    path=path,
                    offset=slot.offset,
                )
            if slot.length < HEADER_SIZE:
                raise StorageCorruptionError(
                    f"{path}: slot for object {oid} is shorter than a record "
                    f"header",
                    path=path,
                    offset=slot.offset,
                )
        # Spot-check the record magic at the shallowest and deepest slots —
        # catches a data file that has the right size but the wrong content
        # (e.g. a catalogue pointed at an unrelated file) without paying a
        # full scan on every open.
        if slots:
            with open(path, "rb") as probe:
                by_offset = sorted(slots.items(), key=lambda kv: kv[1].offset)
                for oid, slot in (by_offset[0], by_offset[-1]):
                    probe.seek(slot.offset)
                    if probe.read(len(MAGIC)) != MAGIC:
                        raise StorageCorruptionError(
                            f"{path}: record for object {oid} at offset "
                            f"{slot.offset} does not start with the codec magic",
                            path=path,
                            offset=slot.offset,
                        )
        store = cls(
            path=path,
            cache_capacity=cache_capacity,
            cut_cache_capacity=cut_cache_capacity,
        )
        store._slots = slots
        floor = max(store._slots.keys(), default=-1) + 1
        store._id_watermark = max(floor, int(id_watermark or 0))
        return store
