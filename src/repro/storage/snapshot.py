"""Snapshot + manifest lifecycle for durable databases.

A durable database directory holds three artifacts:

``objects.dat`` / ``catalog.json``
    The snapshot — the store's data file plus the catalog the database's
    ``save()`` writes (slot table, id watermark, summaries, config).
``wal.log``
    The mutation tail appended since the snapshot was taken.
``MANIFEST.json``
    A tiny pointer file naming the artifacts and the recovery parameters.

The manifest is published atomically (tmp file + ``os.replace``), and it is
written *last*: a crash at any point of the snapshot cycle leaves either the
old manifest (pointing at the old snapshot + a WAL whose records are all
replayable) or the new one.  Because mutation ids never recycle, replaying a
WAL record the snapshot already folded in is a no-op, so the
snapshot-then-truncate window needs no further coordination.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from ..exceptions import StorageCorruptionError
from ..metrics.counters import MetricsCollector
from .wal import WriteAheadLog

MANIFEST_FILE = "MANIFEST.json"
MANIFEST_VERSION = 1


@dataclass
class Manifest:
    """Recovery pointer for one durable database directory."""

    kind: str = "single"  # "single" | "sharded"
    n_shards: int = 1
    data_file: str = "objects.dat"
    catalog_file: str = "catalog.json"
    wal_file: str = "wal.log"
    last_seq: int = 0
    snapshots: int = 0
    version: int = MANIFEST_VERSION
    extra: dict = field(default_factory=dict)


def write_manifest(directory: Union[str, Path], manifest: Manifest) -> Path:
    """Atomically publish ``manifest`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / MANIFEST_FILE
    tmp = directory / (MANIFEST_FILE + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(asdict(manifest), handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return target


def read_manifest(directory: Union[str, Path]) -> Manifest:
    """Load the manifest of a durable directory, validating its shape."""
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        raise StorageCorruptionError(
            f"{path}: manifest missing — not a durable database directory",
            path=path,
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (json.JSONDecodeError, OSError) as exc:
        raise StorageCorruptionError(
            f"{path}: unreadable manifest ({exc})", path=path
        ) from exc
    if not isinstance(raw, dict) or int(raw.get("version", -1)) != MANIFEST_VERSION:
        raise StorageCorruptionError(
            f"{path}: unsupported manifest version {raw.get('version')!r}",
            path=path,
        )
    known = {f for f in Manifest.__dataclass_fields__}
    return Manifest(**{k: v for k, v in raw.items() if k in known})


class SnapshotManager:
    """Folds the WAL into a snapshot every ``every`` appends.

    ``save`` is the database's snapshot callable (it must write the catalog
    atomically); the manager owns the cycle ordering: save snapshot → publish
    manifest → truncate WAL.  With ``every == 0`` only explicit
    :meth:`snapshot` calls fold the log.
    """

    def __init__(
        self,
        *,
        directory: Union[str, Path],
        wal: WriteAheadLog,
        save: Callable[[], None],
        every: int = 0,
        manifest: Optional[Manifest] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.directory = Path(directory)
        self.wal = wal
        self.save = save
        self.every = int(every)
        self.manifest = manifest or Manifest()
        self.metrics = metrics
        self._since_snapshot = 0

    def record_append(self) -> bool:
        """Note one WAL append; snapshot when the configured budget is hit.

        Returns ``True`` when a snapshot was taken.
        """
        self._since_snapshot += 1
        if self.every and self._since_snapshot >= self.every:
            self.snapshot()
            return True
        return False

    def snapshot(self) -> Manifest:
        """Fold the WAL tail into a fresh snapshot and truncate the log."""
        self.save()
        self.manifest.last_seq = self.wal.next_seq
        self.manifest.snapshots += 1
        write_manifest(self.directory, self.manifest)
        self.wal.truncate()
        self._since_snapshot = 0
        if self.metrics is not None:
            self.metrics.increment(MetricsCollector.SNAPSHOTS)
        return self.manifest

    @property
    def appends_since_snapshot(self) -> int:
        return self._since_snapshot
