"""A small LRU buffer pool for fuzzy objects.

The paper's algorithms treat every probe as a disk access; the buffer pool is
optional (capacity 0 by default in the experiment harness) but provided so
downstream users can trade memory for I/O, and so tests can exercise the
difference between logical probes and physical reads.

The cache is thread-safe: the query service's shard pool and the batch
executor's worker threads share cache instances (the store buffer pool,
per-object alpha-cut caches, per-node alpha caches), so every mutating
operation holds an internal lock.  The lock is per-instance and uncontended
in single-threaded use, where its overhead is a few percent at most.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A classic least-recently-used cache with hit/miss accounting."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> Optional[V]:
        """Return the cached value or ``None``, updating recency and stats."""
        with self._lock:
            if self.capacity == 0:
                self.misses += 1
                return None
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the oldest one if needed."""
        with self._lock:
            if self.capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: K) -> bool:
        """Drop one entry if present; returns whether it was cached."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def reset_statistics(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
