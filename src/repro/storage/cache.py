"""A small LRU buffer pool for fuzzy objects.

The paper's algorithms treat every probe as a disk access; the buffer pool is
optional (capacity 0 by default in the experiment harness) but provided so
downstream users can trade memory for I/O, and so tests can exercise the
difference between logical probes and physical reads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A classic least-recently-used cache with hit/miss accounting."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> Optional[V]:
        """Return the cached value or ``None``, updating recency and stats."""
        if self.capacity == 0:
            self.misses += 1
            return None
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the oldest one if needed."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        self._entries.clear()

    def reset_statistics(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
