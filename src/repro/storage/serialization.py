"""Binary serialisation of fuzzy objects.

Record layout (little-endian):

=======  =====  =========================================
offset   size   field
=======  =====  =========================================
0        4      magic ``b"FZOB"``
4        4      format version (uint32)
8        8      object id (int64, -1 when unset)
16       4      number of points n (uint32)
20       4      dimensionality d (uint32)
24       8*n*d  point coordinates (float64, row major)
...      8*n    membership values (float64)
=======  =====  =========================================

The codec is deliberately simple — the store's purpose is to make "object
access" a real, countable I/O event, not to compete with a production codec.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import SerializationError
from repro.fuzzy.fuzzy_object import FuzzyObject

MAGIC = b"FZOB"
FORMAT_VERSION = 1
_HEADER_STRUCT = struct.Struct("<4sIqII")
HEADER_SIZE = _HEADER_STRUCT.size


def encode_object(obj: FuzzyObject) -> bytes:
    """Serialise ``obj`` into a self-describing byte string."""
    points = np.ascontiguousarray(obj.points, dtype="<f8")
    memberships = np.ascontiguousarray(obj.memberships, dtype="<f8")
    object_id = -1 if obj.object_id is None else int(obj.object_id)
    header = _HEADER_STRUCT.pack(
        MAGIC, FORMAT_VERSION, object_id, points.shape[0], points.shape[1]
    )
    return header + points.tobytes() + memberships.tobytes()


def decode_object(payload: bytes) -> FuzzyObject:
    """Inverse of :func:`encode_object`."""
    if len(payload) < HEADER_SIZE:
        raise SerializationError("record shorter than its header")
    magic, version, object_id, n_points, dims = _HEADER_STRUCT.unpack_from(payload, 0)
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r}; not a fuzzy object record")
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported record version {version}")
    expected = HEADER_SIZE + 8 * n_points * dims + 8 * n_points
    if len(payload) < expected:
        raise SerializationError(
            f"record truncated: expected {expected} bytes, got {len(payload)}"
        )
    points_bytes = payload[HEADER_SIZE : HEADER_SIZE + 8 * n_points * dims]
    membership_bytes = payload[HEADER_SIZE + 8 * n_points * dims : expected]
    points = np.frombuffer(points_bytes, dtype="<f8").reshape(n_points, dims).copy()
    memberships = np.frombuffer(membership_bytes, dtype="<f8").copy()
    return FuzzyObject(
        points,
        memberships,
        object_id=None if object_id == -1 else int(object_id),
        require_kernel=False,
    )


def record_size(obj: FuzzyObject) -> int:
    """Size in bytes of the encoded record for ``obj``."""
    return HEADER_SIZE + 8 * obj.size * obj.dimensions + 8 * obj.size
