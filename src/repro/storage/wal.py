"""Per-shard write-ahead log.

Durability for live mutations follows the classic recipe: before an insert or
delete touches the in-memory index or the object store, the mutation is
appended to an append-only log.  Crash recovery loads the last snapshot and
replays the log tail; because object ids are never recycled (the store's id
watermark only moves forward), replay is idempotent — an insert whose id is
already present and a delete whose id is already absent are both no-ops, so a
crash *between* the log append and the in-memory apply is harmless.

File layout::

    [8-byte file header: magic b"FZWL" + version u32]
    [record]*

    record  := [length u32][crc32 u32][payload]
    payload := [op u8][seq u64][object_id i64][blob]
    blob    := encode_object(...) for inserts, empty for deletes

Everything is little-endian.  The CRC covers the payload only, so a torn
record (short length prefix, short payload, or checksum mismatch **at the end
of the file**) is recognised as the expected artifact of a crash mid-append:
:meth:`WriteAheadLog.replay` truncates the file back to the last intact
record and continues.  Damage *inside* the committed prefix — a record that
fails its checksum but is followed by more bytes than a single torn append
could leave — means the file itself is bad and surfaces as
:class:`~repro.exceptions.StorageCorruptionError` instead.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Union

from ..exceptions import StorageCorruptionError, StorageError
from ..metrics.counters import MetricsCollector

WAL_MAGIC = b"FZWL"
WAL_VERSION = 1

_FILE_HEADER = struct.Struct("<4sI")
_RECORD_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
_PAYLOAD_HEADER = struct.Struct("<BQq")  # op, seq, object_id

OP_INSERT = 1
OP_DELETE = 2

#: Valid values of ``RuntimeConfig.wal_sync``.
SYNC_POLICIES = ("none", "flush", "fsync")


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    op: int
    seq: int
    object_id: int
    blob: bytes = b""

    @property
    def is_insert(self) -> bool:
        return self.op == OP_INSERT


class WriteAheadLog:
    """An append-only, checksummed mutation log for one database (or shard).

    Parameters
    ----------
    path:
        Log file location; created (with its parent directory) when missing.
    sync:
        One of :data:`SYNC_POLICIES` — how hard each append pushes bytes
        toward the platter.
    metrics:
        Optional collector for WAL_APPENDS / WAL_REPLAYED / WAL_TORN_TAILS
        (torn-tail repairs) / WAL_TRUNCATIONS (post-snapshot resets).
    fault_hook:
        Optional zero-argument callable invoked *before* every append; the
        chaos tests use it to crash the process mid-churn at targeted
        append indices (see :mod:`repro.service.faults`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        sync: str = "flush",
        metrics: Optional[MetricsCollector] = None,
        fault_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(f"sync must be one of {SYNC_POLICIES}, got {sync!r}")
        self.path = Path(path)
        self.sync = sync
        self.metrics = metrics
        self.fault_hook = fault_hook
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._file = open(self.path, "a+b")
        if fresh:
            self._file.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION))
            self._file.flush()
        self._next_seq = 0
        self._appends = 0
        # Scanning the existing tail both validates the header and positions
        # the sequence counter after the last committed record.
        for record in self.replay():
            self._next_seq = max(self._next_seq, record.seq + 1)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append_insert(self, object_id: int, blob: bytes) -> int:
        """Log an insert of ``object_id`` with its encoded object ``blob``."""
        return self._append(OP_INSERT, object_id, blob)

    def append_delete(self, object_id: int) -> int:
        """Log a delete of ``object_id``."""
        return self._append(OP_DELETE, object_id, b"")

    def _append(self, op: int, object_id: int, blob: bytes) -> int:
        if self._file.closed:
            raise StorageError("write-ahead log is closed")
        if self.fault_hook is not None:
            self.fault_hook()
        seq = self._next_seq
        payload = _PAYLOAD_HEADER.pack(op, seq, object_id) + blob
        record = _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        if self.sync == "flush":
            self._file.flush()
        elif self.sync == "fsync":
            self._file.flush()
            os.fsync(self._file.fileno())
        self._next_seq = seq + 1
        self._appends += 1
        if self.metrics is not None:
            self.metrics.increment(MetricsCollector.WAL_APPENDS)
        return seq

    @property
    def appends(self) -> int:
        """Records appended through this handle (not counting replayed ones)."""
        return self._appends

    @property
    def next_seq(self) -> int:
        return self._next_seq

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self) -> Iterator[WalRecord]:
        """Yield every committed record, repairing a torn tail in place.

        A torn tail (crash artifact) is truncated away and counted under
        WAL_TORN_TAILS; structural damage earlier in the file raises
        :class:`StorageCorruptionError`.
        """
        self._file.flush()
        self._file.seek(0)
        data = self._file.read()
        records, good_end = self._scan(data)
        if good_end < len(data):
            self._truncate_to(good_end)
        for record in records:
            yield record

    def _scan(self, data: bytes) -> tuple:
        if len(data) < _FILE_HEADER.size:
            # A file so short it lacks even the header can only be a crash
            # during creation: treat as empty and rewrite the header.
            return [], 0
        magic, version = _FILE_HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise StorageCorruptionError(
                f"{self.path}: bad WAL magic {magic!r}", path=self.path, offset=0
            )
        if version != WAL_VERSION:
            raise StorageCorruptionError(
                f"{self.path}: unsupported WAL version {version}",
                path=self.path,
                offset=4,
            )
        records: List[WalRecord] = []
        offset = _FILE_HEADER.size
        while offset < len(data):
            start = offset
            if offset + _RECORD_HEADER.size > len(data):
                break  # torn length prefix
            length, crc = _RECORD_HEADER.unpack_from(data, offset)
            offset += _RECORD_HEADER.size
            if offset + length > len(data):
                offset = start
                break  # torn payload
            payload = data[offset : offset + length]
            if zlib.crc32(payload) != crc or length < _PAYLOAD_HEADER.size:
                if offset + length < len(data):
                    # Bytes follow the damaged record: this is not a torn
                    # append but corruption inside the committed prefix.
                    raise StorageCorruptionError(
                        f"{self.path}: checksum mismatch at offset {start}",
                        path=self.path,
                        offset=start,
                    )
                offset = start
                break
            op, seq, object_id = _PAYLOAD_HEADER.unpack_from(payload, 0)
            if op not in (OP_INSERT, OP_DELETE):
                raise StorageCorruptionError(
                    f"{self.path}: unknown WAL op {op} at offset {start}",
                    path=self.path,
                    offset=start,
                )
            records.append(
                WalRecord(op=op, seq=seq, object_id=object_id,
                          blob=payload[_PAYLOAD_HEADER.size :])
            )
            offset += length
        return records, offset

    def _truncate_to(self, good_end: int) -> None:
        self._file.seek(0)
        keep = self._file.read(max(good_end, 0))
        if len(keep) < _FILE_HEADER.size:
            keep = _FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION)
        self._file.close()
        with open(self.path, "wb") as fresh:
            fresh.write(keep)
            fresh.flush()
            os.fsync(fresh.fileno())
        self._file = open(self.path, "a+b")
        if self.metrics is not None:
            self.metrics.increment(MetricsCollector.WAL_TORN_TAILS)

    # ------------------------------------------------------------------
    # Truncation (after a snapshot folded the log in)
    # ------------------------------------------------------------------

    def truncate(self) -> None:
        """Discard every record; the snapshot now owns their effects."""
        self._file.close()
        with open(self.path, "wb") as fresh:
            fresh.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION))
            fresh.flush()
            os.fsync(fresh.fileno())
        self._file = open(self.path, "a+b")
        if self.metrics is not None:
            self.metrics.increment(MetricsCollector.WAL_TRUNCATIONS)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog(path={str(self.path)!r}, sync={self.sync!r})"
