"""Disk-backed storage substrate.

The paper stores the actual point sets of fuzzy objects in files on disk and
keeps only MBRs (plus the small optimisation payload) in the R-tree; the key
cost metric of the evaluation is the *number of object accesses*, i.e. how
often a full object has to be read back from external storage.

This package reproduces that setup:

* :mod:`~repro.storage.serialization` — a compact binary codec for fuzzy
  objects.
* :class:`~repro.storage.object_store.ObjectStore` — an append-once,
  file-backed store with an exact access counter and an optional LRU buffer
  pool (:class:`~repro.storage.cache.LRUCache`).
* :class:`~repro.storage.wal.WriteAheadLog` — the per-shard durability log
  (length-prefixed, checksummed records; torn tails self-heal on replay).
* :mod:`~repro.storage.snapshot` — the snapshot/truncate cycle and the
  atomically published :class:`~repro.storage.snapshot.Manifest`.
"""

from repro.storage.serialization import encode_object, decode_object, HEADER_SIZE
from repro.storage.cache import LRUCache
from repro.storage.object_store import ObjectStore, StoreStatistics
from repro.storage.snapshot import Manifest, SnapshotManager, read_manifest, write_manifest
from repro.storage.wal import WalRecord, WriteAheadLog

__all__ = [
    "encode_object",
    "decode_object",
    "HEADER_SIZE",
    "LRUCache",
    "ObjectStore",
    "StoreStatistics",
    "WriteAheadLog",
    "WalRecord",
    "Manifest",
    "SnapshotManager",
    "read_manifest",
    "write_manifest",
]
