"""A simulated cell-image dataset standing in for the paper's real dataset.

The paper's real dataset consists of horizontal cells identified by
probabilistic segmentation of retinal microscope images (Ljosa & Singh): each
cell is a cloud of pixels whose probability of belonging to the cell peaks in
the cell body and decays, noisily and irregularly, towards the boundary.  The
original images are not redistributable, so this module synthesises objects
with the same statistical structure:

* an irregular, non-convex support obtained by perturbing a circle with a
  small number of random radial harmonics (lobes resembling dendrites),
* a membership mask that decreases with the normalised radial distance from
  the cell body, distorted by multiplicative speckle noise, and
* normalisation of both coordinates (into a unit square, then placed in the
  global space) and membership values (maximum of 1), exactly as Section 6.1
  describes for the real data.

What matters for the query algorithms is precisely this structure: irregular
supports make support-MBRs loose (so the improved lower bound matters) and
non-Gaussian membership decay makes the per-level MBR shrinkage uneven (so
the conservative-line approximation is stressed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import DEFAULTS
from repro.datasets.synthetic import normalize_memberships_to_unit
from repro.fuzzy.fuzzy_object import FuzzyObject


@dataclass(frozen=True)
class CellDatasetConfig:
    """Parameters of the simulated cell generator."""

    n_objects: int = 1_000
    points_per_object: int = 100
    space_size: float = DEFAULTS.space_size
    cell_extent: float = 1.0
    n_harmonics: int = 4
    irregularity: float = 0.45
    membership_noise: float = 0.25
    membership_decay: float = 2.0
    dimensions: int = 2
    seed: int = 11

    def validated(self) -> "CellDatasetConfig":
        """Check parameter sanity and return ``self``."""
        if self.n_objects <= 0 or self.points_per_object <= 0:
            raise ValueError("n_objects and points_per_object must be positive")
        if self.space_size <= 0 or self.cell_extent <= 0:
            raise ValueError("space_size and cell_extent must be positive")
        if not 0.0 <= self.irregularity < 1.0:
            raise ValueError("irregularity must lie in [0, 1)")
        if self.membership_noise < 0:
            raise ValueError("membership_noise must be non-negative")
        if self.membership_decay <= 0:
            raise ValueError("membership_decay must be positive")
        if self.dimensions != 2:
            raise ValueError("the cell simulator is two-dimensional")
        return self


def _radial_profile(
    angles: np.ndarray, rng: np.random.Generator, n_harmonics: int, irregularity: float
) -> np.ndarray:
    """Per-angle boundary radius of an irregular blob (mean 1)."""
    radius = np.ones_like(angles)
    for harmonic in range(1, n_harmonics + 1):
        amplitude = irregularity * rng.random() / harmonic
        phase = rng.random() * 2.0 * np.pi
        radius += amplitude * np.cos(harmonic * angles + phase)
    return np.clip(radius, 0.2, None)


def generate_cell_object(
    center: np.ndarray,
    rng: np.random.Generator,
    config: Optional[CellDatasetConfig] = None,
    object_id: Optional[int] = None,
) -> FuzzyObject:
    """One simulated cell: irregular support with a noisy probabilistic mask."""
    config = (config or CellDatasetConfig()).validated()
    center = np.asarray(center, dtype=float)

    # Sample points in polar form: angles uniform, radii biased towards the
    # cell body, boundary modulated by random harmonics.
    count = config.points_per_object
    angles = rng.random(count) * 2.0 * np.pi
    boundary = _radial_profile(angles, rng, config.n_harmonics, config.irregularity)
    radial_fraction = np.sqrt(rng.random(count))
    radii = radial_fraction * boundary * (config.cell_extent / 2.0)
    points = center + np.stack(
        [radii * np.cos(angles), radii * np.sin(angles)], axis=1
    )

    # Probabilistic mask: high in the body, decaying towards the boundary,
    # corrupted by multiplicative speckle noise (segmentation uncertainty).
    base = (1.0 - radial_fraction) ** config.membership_decay
    noise = 1.0 + config.membership_noise * rng.standard_normal(count)
    memberships = normalize_memberships_to_unit(np.clip(base * noise, 0.0, None))
    return FuzzyObject(points, memberships, object_id=object_id)


def generate_cell_dataset(
    config: Optional[CellDatasetConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[FuzzyObject]:
    """The full simulated cell dataset scattered over the global space."""
    config = (config or CellDatasetConfig()).validated()
    if rng is None:
        rng = np.random.default_rng(config.seed)
    objects = []
    for object_id in range(config.n_objects):
        center = rng.random(config.dimensions) * config.space_size
        objects.append(
            generate_cell_object(center, rng, config=config, object_id=object_id)
        )
    return objects
