"""Dataset -> store -> index build pipeline.

``build_database`` turns a dataset specification (synthetic circles or
simulated cells, at a chosen scale) into a ready-to-query
:class:`~repro.core.database.FuzzyDatabase`, and ``DatasetBundle`` keeps the
pieces an experiment needs together: the database, the generator
configuration, and a reproducible stream of query objects.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.datasets.cells import CellDatasetConfig, generate_cell_dataset
from repro.datasets.queries import generate_query_object
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.fuzzy.fuzzy_object import FuzzyObject

DatasetConfig = Union[SyntheticDatasetConfig, CellDatasetConfig]

DATASET_KINDS = ("synthetic", "cells")


def build_dataset(
    kind: str = "synthetic",
    n_objects: int = 1_000,
    points_per_object: int = 100,
    seed: int = 7,
    space_size: float = 100.0,
) -> List[FuzzyObject]:
    """Generate a dataset of the requested kind and scale."""
    if kind not in DATASET_KINDS:
        raise ValueError(f"unknown dataset kind {kind!r}; expected one of {DATASET_KINDS}")
    if kind == "cells":
        config = CellDatasetConfig(
            n_objects=n_objects,
            points_per_object=points_per_object,
            seed=seed,
            space_size=space_size,
        )
        return generate_cell_dataset(config)
    config = SyntheticDatasetConfig(
        n_objects=n_objects,
        points_per_object=points_per_object,
        seed=seed,
        space_size=space_size,
    )
    return generate_synthetic_dataset(config)


def build_database(
    kind: str = "synthetic",
    n_objects: int = 1_000,
    points_per_object: int = 100,
    seed: int = 7,
    space_size: float = 100.0,
    path: Optional[os.PathLike | str] = None,
    config: Optional[RuntimeConfig] = None,
) -> FuzzyDatabase:
    """Generate a dataset and index it into a :class:`FuzzyDatabase`."""
    objects = build_dataset(
        kind=kind,
        n_objects=n_objects,
        points_per_object=points_per_object,
        seed=seed,
        space_size=space_size,
    )
    rng = np.random.default_rng(seed + 1)
    return FuzzyDatabase.build(objects, path=path, config=config, rng=rng)


@dataclass
class DatasetBundle:
    """A database plus a reproducible stream of matching query objects."""

    database: FuzzyDatabase
    kind: str
    space_size: float
    points_per_object: int
    query_seed: int = 1234

    def queries(self, count: int, query_kind: Optional[str] = None) -> List[FuzzyObject]:
        """``count`` query objects drawn from the dataset's own distribution."""
        rng = np.random.default_rng(self.query_seed)
        kind = query_kind or self.kind
        return [
            generate_query_object(
                rng,
                kind=kind,
                space_size=self.space_size,
                points_per_object=self.points_per_object,
            )
            for _ in range(count)
        ]

    @classmethod
    def create(
        cls,
        kind: str = "synthetic",
        n_objects: int = 1_000,
        points_per_object: int = 100,
        seed: int = 7,
        space_size: float = 100.0,
        path: Optional[os.PathLike | str] = None,
        config: Optional[RuntimeConfig] = None,
        query_seed: int = 1234,
    ) -> "DatasetBundle":
        """Build the database and wrap it into a bundle."""
        database = build_database(
            kind=kind,
            n_objects=n_objects,
            points_per_object=points_per_object,
            seed=seed,
            space_size=space_size,
            path=path,
            config=config,
        )
        return cls(
            database=database,
            kind=kind,
            space_size=space_size,
            points_per_object=points_per_object,
            query_seed=query_seed,
        )
