"""The synthetic dataset of Section 6.1.

Each object is a circle of radius 0.5 containing uniformly distributed
points whose membership values follow a two-dimensional Gaussian with its
mean at the circle centre and ``sigma_x = sigma_y = 0.5``.  Membership values
are normalised so the maximum becomes exactly 1 (guaranteeing a non-empty
kernel), and the objects are scattered uniformly over a 100 x 100 space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import DEFAULTS
from repro.fuzzy.fuzzy_object import FuzzyObject


@dataclass(frozen=True)
class SyntheticDatasetConfig:
    """Parameters of the synthetic generator.

    The defaults follow Table 2 / Section 6.1 of the paper except for the
    dataset size and points per object, which are scaled down so the default
    configuration runs comfortably on a laptop; the experiment harness scales
    them explicitly per figure.
    """

    n_objects: int = 1_000
    points_per_object: int = 100
    space_size: float = DEFAULTS.space_size
    object_radius: float = DEFAULTS.object_radius
    membership_sigma: float = DEFAULTS.membership_sigma
    dimensions: int = 2
    seed: int = 7

    def validated(self) -> "SyntheticDatasetConfig":
        """Check parameter sanity and return ``self``."""
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if self.points_per_object <= 0:
            raise ValueError("points_per_object must be positive")
        if self.space_size <= 0 or self.object_radius <= 0:
            raise ValueError("space_size and object_radius must be positive")
        if self.membership_sigma <= 0:
            raise ValueError("membership_sigma must be positive")
        if self.dimensions < 2:
            raise ValueError("dimensions must be at least 2")
        return self


def _uniform_points_in_ball(
    center: np.ndarray, radius: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly distributed points inside a d-dimensional ball."""
    dims = center.shape[0]
    directions = rng.normal(size=(count, dims))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    directions /= norms
    radii = radius * rng.random(count) ** (1.0 / dims)
    return center + directions * radii[:, None]


# Smallest membership value assigned after normalisation; Definition 1
# requires memberships to be strictly positive.
MIN_MEMBERSHIP = 1e-3


def normalize_memberships_to_unit(memberships: np.ndarray) -> np.ndarray:
    """Min-max normalise raw membership values "across 0 to 1" (Section 6.1).

    The point with the largest raw value receives membership exactly 1 (the
    kernel is non-empty) and the smallest receives :data:`MIN_MEMBERSHIP`
    (memberships must stay strictly positive per Definition 1).
    """
    values = np.asarray(memberships, dtype=float)
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        return np.ones_like(values)
    scaled = (values - low) / (high - low)
    return np.clip(scaled, MIN_MEMBERSHIP, 1.0)


def generate_synthetic_object(
    center: np.ndarray,
    rng: np.random.Generator,
    points_per_object: int = 100,
    object_radius: float = DEFAULTS.object_radius,
    membership_sigma: float = DEFAULTS.membership_sigma,
    object_id: Optional[int] = None,
) -> FuzzyObject:
    """One synthetic fuzzy object: a circle with Gaussian membership decay."""
    center = np.asarray(center, dtype=float)
    points = _uniform_points_in_ball(center, object_radius, points_per_object, rng)
    squared = np.sum((points - center) ** 2, axis=1)
    memberships = np.exp(-squared / (2.0 * membership_sigma**2))
    memberships = normalize_memberships_to_unit(memberships)
    return FuzzyObject(points, memberships, object_id=object_id)


def generate_synthetic_dataset(
    config: Optional[SyntheticDatasetConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[FuzzyObject]:
    """The full synthetic dataset: ``n_objects`` circles in a square space."""
    config = (config or SyntheticDatasetConfig()).validated()
    if rng is None:
        rng = np.random.default_rng(config.seed)
    objects = []
    for object_id in range(config.n_objects):
        center = rng.random(config.dimensions) * config.space_size
        objects.append(
            generate_synthetic_object(
                center,
                rng,
                points_per_object=config.points_per_object,
                object_radius=config.object_radius,
                membership_sigma=config.membership_sigma,
                object_id=object_id,
            )
        )
    return objects
