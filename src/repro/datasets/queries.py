"""Query-object generators used by examples, tests and the benchmark harness.

The paper issues queries that are themselves fuzzy objects drawn from the same
generative process as the data (a query cell against a database of cells).
``generate_query_object`` produces such objects at a caller-chosen location so
experiment sweeps can control where in the space the query lands.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.cells import CellDatasetConfig, generate_cell_object
from repro.datasets.synthetic import generate_synthetic_object
from repro.fuzzy.fuzzy_object import FuzzyObject

QUERY_KINDS = ("synthetic", "cells", "point")


def generate_query_object(
    rng: np.random.Generator,
    kind: str = "synthetic",
    center: Optional[Sequence[float]] = None,
    space_size: float = 100.0,
    points_per_object: int = 100,
    dimensions: int = 2,
) -> FuzzyObject:
    """A query fuzzy object of the requested ``kind``.

    Parameters
    ----------
    kind:
        ``"synthetic"`` for a circle + Gaussian-membership object,
        ``"cells"`` for a simulated cell, ``"point"`` for a degenerate
        single-point crisp query.
    center:
        Location of the query; drawn uniformly from the space when omitted.
    """
    if kind not in QUERY_KINDS:
        raise ValueError(f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}")
    if center is None:
        center = rng.random(dimensions) * space_size
    center = np.asarray(center, dtype=float)
    if kind == "point":
        return FuzzyObject.single_point(center)
    if kind == "cells":
        config = CellDatasetConfig(points_per_object=points_per_object)
        return generate_cell_object(center, rng, config=config)
    return generate_synthetic_object(
        center, rng, points_per_object=points_per_object
    )
