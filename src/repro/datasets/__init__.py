"""Dataset generators reproducing the paper's experimental setup (Section 6.1).

* :mod:`~repro.datasets.synthetic` — the synthetic dataset: circular objects
  of radius 0.5 with uniformly distributed points whose memberships follow a
  two-dimensional Gaussian centred at the circle centre.
* :mod:`~repro.datasets.cells` — a simulator standing in for the paper's real
  dataset (horizontal cells identified by probabilistic segmentation of
  microscope images): irregular blob-shaped supports with noisy, centre-peaked
  membership masks.
* :mod:`~repro.datasets.queries` — query-object generators.
* :mod:`~repro.datasets.builder` — dataset -> store -> index pipeline that
  yields a ready-to-query :class:`~repro.core.database.FuzzyDatabase`.
"""

from repro.datasets.synthetic import (
    SyntheticDatasetConfig,
    generate_synthetic_dataset,
    generate_synthetic_object,
)
from repro.datasets.cells import (
    CellDatasetConfig,
    generate_cell_dataset,
    generate_cell_object,
)
from repro.datasets.queries import generate_query_object
from repro.datasets.builder import DatasetBundle, build_database, build_dataset

__all__ = [
    "SyntheticDatasetConfig",
    "generate_synthetic_dataset",
    "generate_synthetic_object",
    "CellDatasetConfig",
    "generate_cell_dataset",
    "generate_cell_object",
    "generate_query_object",
    "DatasetBundle",
    "build_database",
    "build_dataset",
]
