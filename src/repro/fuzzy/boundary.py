"""Boundary functions and optimal conservative lines (Section 3.2).

The improved lower bound approximates the MBR of an alpha-cut without storing
one rectangle per membership level.  For each dimension ``i`` and each side
(upper ``Mi+`` / lower ``Mi-``) the *boundary function*

``bf = { <alpha, delta(alpha)> | alpha in U_A }``,
``delta(alpha) = |Mi(alpha) - Mi(1)|``

records how far the alpha-cut boundary sits from the kernel boundary.  The
boundary function is non-increasing because alpha-cuts shrink.  It is then
approximated by the *optimal conservative line* (Definition 6): the straight
line ``y = m*alpha + t`` that stays on or above every ``delta(alpha)`` while
minimising the summed squared error.  Following Achtert et al. the optimum
interpolates an anchor point of the upper convex hull of the boundary
function and is located by bisection over the hull vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.config import CONSERVATIVE_SLACK
from repro.fuzzy.fuzzy_object import MEMBERSHIP_ATOL, FuzzyObject
from repro.geometry.convexhull import upper_convex_hull


@dataclass(frozen=True)
class ConservativeLine:
    """The line ``y = slope * alpha + intercept`` of Definition 6."""

    slope: float
    intercept: float

    def delta_at(self, alpha: float) -> float:
        """Conservative estimate of ``delta(alpha)`` (clamped at zero)."""
        return max(0.0, self.slope * alpha + self.intercept)

    def to_pair(self) -> Tuple[float, float]:
        """``(slope, intercept)`` for compact storage."""
        return (self.slope, self.intercept)

    @classmethod
    def from_pair(cls, pair: Sequence[float]) -> "ConservativeLine":
        """Inverse of :meth:`to_pair`."""
        return cls(float(pair[0]), float(pair[1]))


@dataclass(frozen=True)
class BoundaryFunction:
    """The sampled boundary function of one dimension/side of an object."""

    alphas: np.ndarray
    deltas: np.ndarray

    def __post_init__(self) -> None:
        if self.alphas.shape != self.deltas.shape or self.alphas.ndim != 1:
            raise ValueError("alphas and deltas must be aligned 1-d arrays")

    def pairs(self) -> List[Tuple[float, float]]:
        """``(alpha, delta)`` tuples sorted by alpha."""
        order = np.argsort(self.alphas)
        return [
            (float(self.alphas[i]), float(self.deltas[i])) for i in order
        ]

    @property
    def is_trivial(self) -> bool:
        """Whether the boundary never moves (all deltas are zero)."""
        return bool(np.all(self.deltas <= CONSERVATIVE_SLACK))


def alpha_mbr_table(obj: FuzzyObject) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-level alpha-cut bounding boxes.

    Returns ``(levels, lower, upper)`` where ``lower[j]`` / ``upper[j]`` are
    the per-dimension bounds of the alpha-cut at ``levels[j]``.  Computed with
    one sort and a pair of suffix scans, so the cost is ``O(n log n + n d)``.
    """
    levels = obj.distinct_memberships()
    order = np.argsort(obj.memberships, kind="stable")
    pts = obj.points[order]
    mus = obj.memberships[order]
    # Suffix aggregates: suffix_min[i] = min over points[i:], ditto for max.
    suffix_min = np.minimum.accumulate(pts[::-1], axis=0)[::-1]
    suffix_max = np.maximum.accumulate(pts[::-1], axis=0)[::-1]
    lower = np.empty((levels.size, obj.dimensions))
    upper = np.empty((levels.size, obj.dimensions))
    for j, level in enumerate(levels):
        start = int(np.searchsorted(mus, level - MEMBERSHIP_ATOL, side="left"))
        start = min(start, pts.shape[0] - 1)
        lower[j] = suffix_min[start]
        upper[j] = suffix_max[start]
    return levels, lower, upper


def boundary_function(
    obj: FuzzyObject, dimension: int, side: str
) -> BoundaryFunction:
    """Boundary function of one dimension/side of ``obj``.

    Parameters
    ----------
    dimension:
        Index of the spatial dimension.
    side:
        ``"upper"`` for ``Mi+`` or ``"lower"`` for ``Mi-``.
    """
    if side not in ("upper", "lower"):
        raise ValueError("side must be 'upper' or 'lower'")
    levels, lower, upper = alpha_mbr_table(obj)
    kernel_level_idx = levels.size - 1
    if side == "upper":
        deltas = np.abs(upper[:, dimension] - upper[kernel_level_idx, dimension])
    else:
        deltas = np.abs(lower[:, dimension] - lower[kernel_level_idx, dimension])
    return BoundaryFunction(levels.copy(), deltas)


def _anchor_optimal_line(
    alphas: np.ndarray, deltas: np.ndarray, anchor: Tuple[float, float]
) -> ConservativeLine:
    """Least-squares line constrained to pass through ``anchor``."""
    x0, y0 = anchor
    dx = alphas - x0
    dy = deltas - y0
    denom = float(np.dot(dx, dx))
    if denom <= 0.0:
        slope = 0.0
    else:
        slope = float(np.dot(dx, dy) / denom)
    intercept = y0 - slope * x0
    return ConservativeLine(slope, intercept)


def fit_conservative_line(bf: BoundaryFunction) -> ConservativeLine:
    """The optimal conservative approximation of a boundary function.

    Implements the anchor-point bisection of Achtert et al. over the upper
    convex hull of the boundary function, then lifts the intercept by the
    tiny amount needed to absorb floating-point rounding so conservativeness
    holds exactly for every sampled ``(alpha, delta)`` pair.
    """
    pairs = bf.pairs()
    alphas = np.asarray([p[0] for p in pairs])
    deltas = np.asarray([p[1] for p in pairs])
    if alphas.size == 1 or bf.is_trivial:
        # A flat object (or a single level): the constant line at the largest
        # delta is both conservative and optimal.
        return ConservativeLine(0.0, float(deltas.max(initial=0.0)))

    hull = upper_convex_hull(list(zip(alphas, deltas)))
    lo, hi = 0, len(hull) - 1
    best = _anchor_optimal_line(alphas, deltas, hull[lo])
    # Bisection over hull vertices: move towards the side whose neighbour
    # still violates the anchor-optimal line.
    while lo <= hi:
        mid = (lo + hi) // 2
        line = _anchor_optimal_line(alphas, deltas, hull[mid])
        best = line
        pred_above = (
            mid > 0
            and hull[mid - 1][1] > line.slope * hull[mid - 1][0] + line.intercept + CONSERVATIVE_SLACK
        )
        succ_above = (
            mid < len(hull) - 1
            and hull[mid + 1][1] > line.slope * hull[mid + 1][0] + line.intercept + CONSERVATIVE_SLACK
        )
        if not pred_above and not succ_above:
            break
        if succ_above:
            lo = mid + 1
        else:
            hi = mid - 1

    # A non-positive slope is required so the line also upper-bounds delta at
    # thresholds *between* sampled levels (where the effective delta is the
    # one of the next level up); with non-increasing data the fitted slope is
    # normally negative, but degenerate inputs are clamped to a flat line.
    if best.slope > 0.0:
        best = ConservativeLine(0.0, float(deltas.max()))

    # Guarantee conservativeness on every sampled point regardless of how the
    # bisection terminated (and regardless of rounding error).
    violation = float(np.max(deltas - (best.slope * alphas + best.intercept)))
    if violation > 0.0:
        best = ConservativeLine(best.slope, best.intercept + violation + CONSERVATIVE_SLACK)
    return best


@dataclass(frozen=True)
class ObjectLines:
    """Per-dimension conservative lines for both sides of an object's MBR."""

    upper: Tuple[ConservativeLine, ...]
    lower: Tuple[ConservativeLine, ...]

    @property
    def dimensions(self) -> int:
        return len(self.upper)


def fit_object_lines(obj: FuzzyObject) -> ObjectLines:
    """Fit conservative lines for every dimension and side of ``obj``.

    The result, together with the kernel and support MBRs, is all the
    information the improved lower bound (Equation 2) needs at query time.
    """
    levels, lower, upper = alpha_mbr_table(obj)
    kernel_idx = levels.size - 1
    upper_lines: List[ConservativeLine] = []
    lower_lines: List[ConservativeLine] = []
    for dim in range(obj.dimensions):
        up_bf = BoundaryFunction(
            levels.copy(), np.abs(upper[:, dim] - upper[kernel_idx, dim])
        )
        lo_bf = BoundaryFunction(
            levels.copy(), np.abs(lower[:, dim] - lower[kernel_idx, dim])
        )
        upper_lines.append(fit_conservative_line(up_bf))
        lower_lines.append(fit_conservative_line(lo_bf))
    return ObjectLines(tuple(upper_lines), tuple(lower_lines))
