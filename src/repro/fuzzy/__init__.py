"""The fuzzy object model of the paper (Section 2).

Public surface:

* :class:`~repro.fuzzy.fuzzy_object.FuzzyObject` — a discrete fuzzy object
  (Definition 1) with support, kernel and alpha-cuts (Definition 2).
* :func:`~repro.fuzzy.alpha_distance.alpha_distance` — the alpha-distance of
  Definition 3 (closest pair between alpha-cuts).
* :class:`~repro.fuzzy.profile.DistanceProfile` — the piecewise-constant map
  from alpha to alpha-distance, including the critical probability set of
  Definition 7.
* :mod:`~repro.fuzzy.boundary` — boundary functions and the optimal
  conservative line of Definition 6, used for the improved lower bound.
* :class:`~repro.fuzzy.summary.FuzzyObjectSummary` — the compact per-object
  record stored inside R-tree leaves.
* :mod:`~repro.fuzzy.intervals` — closed-interval algebra for RKNN
  qualifying ranges.
"""

from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.alpha_distance import (
    alpha_distance,
    alpha_distance_points,
    distance_profile,
)
from repro.fuzzy.profile import DistanceProfile
from repro.fuzzy.boundary import (
    BoundaryFunction,
    ConservativeLine,
    boundary_function,
    fit_conservative_line,
    fit_object_lines,
)
from repro.fuzzy.summary import FuzzyObjectSummary, build_summary
from repro.fuzzy.intervals import Interval, IntervalSet
from repro.fuzzy.operations import (
    alpha_cut_area,
    diameter,
    fuzzy_area,
    fuzzy_centroid,
    fuzzy_difference,
    fuzzy_intersection,
    fuzzy_union,
    overlap_degree,
    overlaps,
    scalar_cardinality,
)

__all__ = [
    "fuzzy_union",
    "fuzzy_intersection",
    "fuzzy_difference",
    "overlaps",
    "overlap_degree",
    "scalar_cardinality",
    "fuzzy_centroid",
    "fuzzy_area",
    "alpha_cut_area",
    "diameter",
    "FuzzyObject",
    "alpha_distance",
    "alpha_distance_points",
    "distance_profile",
    "DistanceProfile",
    "BoundaryFunction",
    "ConservativeLine",
    "boundary_function",
    "fit_conservative_line",
    "fit_object_lines",
    "FuzzyObjectSummary",
    "build_summary",
    "Interval",
    "IntervalSet",
]
