"""Closed-interval algebra for RKNN qualifying ranges.

An RKNN result (Definition 5) maps each qualifying object to the set of
probability thresholds at which it belongs to the k nearest neighbours.
Because alpha-distances are piecewise-constant step functions of alpha, those
sets are finite unions of intervals whose endpoints come from the membership
levels of the dataset.  This module provides a small, exact interval algebra
(closed intervals, unions, intersections, coverage tests) that all RKNN
variants share, so that their results can be compared for equality in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

# Two endpoints closer than this are considered equal when merging intervals.
_MERGE_EPS = 1e-12


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[start, end]`` of probability thresholds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start - _MERGE_EPS:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> float:
        """Length of the interval (zero for degenerate single points)."""
        return max(0.0, self.end - self.start)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.start - _MERGE_EPS <= value <= self.end + _MERGE_EPS

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one point."""
        return (
            self.start <= other.end + _MERGE_EPS
            and other.start <= self.end + _MERGE_EPS
        )

    def merge(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (assumes overlap or adjacency)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def intersect(self, other: "Interval") -> "Interval | None":
        """Overlapping part of the two intervals, or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo - _MERGE_EPS:
            return None
        return Interval(lo, max(lo, hi))

    def __repr__(self) -> str:
        return f"[{self.start:.6g}, {self.end:.6g}]"


class IntervalSet:
    """A normalised union of disjoint closed intervals, sorted by start."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] | None = None):
        self._intervals: List[Interval] = []
        if intervals:
            for interval in intervals:
                self.add(interval)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]]) -> "IntervalSet":
        """Build from ``(start, end)`` tuples."""
        return cls(Interval(s, e) for s, e in pairs)

    @classmethod
    def single(cls, start: float, end: float) -> "IntervalSet":
        """An interval set containing exactly one interval."""
        return cls([Interval(start, end)])

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty interval set."""
        return cls()

    def copy(self) -> "IntervalSet":
        """Shallow copy (intervals are immutable)."""
        clone = IntervalSet()
        clone._intervals = list(self._intervals)
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, interval: Interval) -> None:
        """Insert an interval, merging it with overlapping/adjacent ones."""
        merged = interval
        remaining: List[Interval] = []
        for existing in self._intervals:
            if existing.overlaps(merged) or self._adjacent(existing, merged):
                merged = merged.merge(existing)
            else:
                remaining.append(existing)
        remaining.append(merged)
        remaining.sort(key=lambda iv: iv.start)
        self._intervals = remaining

    def add_range(self, start: float, end: float) -> None:
        """Convenience wrapper around :meth:`add`."""
        self.add(Interval(start, end))

    @staticmethod
    def _adjacent(a: Interval, b: Interval) -> bool:
        return (
            abs(a.end - b.start) <= _MERGE_EPS or abs(b.end - a.start) <= _MERGE_EPS
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The disjoint intervals in increasing order."""
        return tuple(self._intervals)

    @property
    def is_empty(self) -> bool:
        """Whether the set contains no interval."""
        return not self._intervals

    @property
    def total_length(self) -> float:
        """Sum of interval lengths."""
        return sum(iv.length for iv in self._intervals)

    @property
    def span(self) -> Interval | None:
        """Smallest single interval covering the whole set (None if empty)."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside any interval of the set."""
        return any(iv.contains(value) for iv in self._intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise intersection of two interval sets."""
        result = IntervalSet()
        for a in self._intervals:
            for b in other._intervals:
                overlap = a.intersect(b)
                if overlap is not None:
                    result.add(overlap)
        return result

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Union of two interval sets."""
        result = self.copy()
        for iv in other._intervals:
            result.add(iv)
        return result

    def clipped(self, start: float, end: float) -> "IntervalSet":
        """The part of this set falling inside ``[start, end]``."""
        return self.intersect(IntervalSet.single(start, end))

    def approx_equal(self, other: "IntervalSet", tol: float = 1e-9) -> bool:
        """Structural equality up to endpoint tolerance ``tol``."""
        if len(self._intervals) != len(other._intervals):
            return False
        for a, b in zip(self._intervals, other._intervals):
            if abs(a.start - b.start) > tol or abs(a.end - b.end) > tol:
                return False
        return True

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __repr__(self) -> str:
        body = " U ".join(repr(iv) for iv in self._intervals) or "{}"
        return f"IntervalSet({body})"
