"""Piecewise-constant alpha-distance profiles.

For two fixed fuzzy objects the map ``alpha -> d_alpha(A, B)`` is a step
function: the alpha-cut of either object only changes when alpha crosses one
of its membership levels, so the distance stays constant on every interval
``(u_{i-1}, u_i]`` between consecutive combined levels and can only increase
from one interval to the next (monotonicity of the alpha-distance).

:class:`DistanceProfile` materialises this step function exactly and exposes
the operations the RKNN algorithms of Section 4 need:

* point evaluation (``d_alpha`` for an arbitrary alpha),
* the critical probability set of Definition 7,
* "safe range" computations used by Lemma 2 and Lemma 4.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidQueryError

# Tolerance when locating a threshold among the stored levels.
_LEVEL_ATOL = 1e-12


class DistanceProfile:
    """The exact step function ``alpha -> d_alpha(A, B)`` on ``(0, 1]``.

    Parameters
    ----------
    levels:
        Strictly increasing membership levels ``u_1 < ... < u_m`` with
        ``u_m`` normally equal to 1.  The distance equals ``distances[i]`` for
        every ``alpha`` in ``(u_{i-1}, u_i]`` (with ``u_0 = 0``).
    distances:
        Non-decreasing distances, one per level interval.
    """

    __slots__ = ("levels", "distances")

    def __init__(self, levels: Sequence[float], distances: Sequence[float]):
        lv = np.asarray(levels, dtype=float)
        ds = np.asarray(distances, dtype=float)
        if lv.ndim != 1 or ds.ndim != 1 or lv.size != ds.size or lv.size == 0:
            raise ValueError("levels and distances must be aligned non-empty arrays")
        if np.any(np.diff(lv) <= 0):
            raise ValueError("levels must be strictly increasing")
        if lv[0] <= 0 or lv[-1] > 1.0 + _LEVEL_ATOL:
            raise ValueError("levels must lie in (0, 1]")
        finite = ds[np.isfinite(ds)]
        if finite.size and np.any(np.diff(finite) < -1e-9):
            raise ValueError("distances must be non-decreasing in alpha")
        self.levels = lv
        self.distances = ds

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, distance: float) -> "DistanceProfile":
        """A profile that has the same distance at every threshold."""
        return cls(np.array([1.0]), np.array([float(distance)]))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "DistanceProfile":
        """Build a profile from ``(level, distance)`` pairs."""
        pairs = sorted(pairs)
        return cls([p[0] for p in pairs], [p[1] for p in pairs])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def value(self, alpha: float) -> float:
        """``d_alpha`` for an arbitrary threshold ``alpha`` in ``(0, levels[-1]]``."""
        if not 0.0 < alpha <= self.levels[-1] + _LEVEL_ATOL:
            raise InvalidQueryError(
                f"alpha={alpha} outside the profile domain (0, {self.levels[-1]}]"
            )
        # The distance for alpha is the one of the first level >= alpha.
        idx = int(np.searchsorted(self.levels, alpha - _LEVEL_ATOL, side="left"))
        idx = min(idx, self.levels.size - 1)
        return float(self.distances[idx])

    def values(self, alphas: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return np.asarray([self.value(a) for a in alphas], dtype=float)

    # ------------------------------------------------------------------
    # Critical probabilities (Definition 7)
    # ------------------------------------------------------------------
    def critical_set(self) -> np.ndarray:
        """``Omega_Q(A)``: thresholds beyond which the distance increases.

        A level ``u_i`` is critical when no larger threshold has the same
        distance — i.e. the distance strictly increases after ``u_i`` — plus
        the last level, whose distance trivially has no larger threshold.
        """
        critical: List[float] = []
        for i in range(self.levels.size - 1):
            if self.distances[i + 1] > self.distances[i] + 1e-15:
                critical.append(float(self.levels[i]))
        critical.append(float(self.levels[-1]))
        return np.asarray(critical, dtype=float)

    def next_critical(self, alpha: float) -> float:
        """Smallest critical probability ``>= alpha`` (Lemma 2's ``alpha'``)."""
        crit = self.critical_set()
        idx = int(np.searchsorted(crit, alpha - _LEVEL_ATOL, side="left"))
        if idx >= crit.size:
            return float(crit[-1])
        return float(crit[idx])

    def constant_until(self, alpha: float) -> float:
        """Largest threshold up to which ``d`` keeps the value ``d_alpha``.

        This is exactly :meth:`next_critical`; provided under the name used by
        the RKNN algorithms for readability.
        """
        return self.next_critical(alpha)

    # ------------------------------------------------------------------
    # Safe ranges (Lemma 4)
    # ------------------------------------------------------------------
    def max_level_with_distance_below(
        self, threshold: float, start: float
    ) -> float | None:
        """Largest level ``>= start`` whose distance is strictly below ``threshold``.

        Used by the improved candidate refinement (Algorithm 5): if ``A`` is a
        kNN at ``start`` and the (k+1)-th distance there is ``threshold``,
        then ``A`` stays a kNN up to the returned level (Lemma 4).  Returns
        ``None`` when even ``d_start`` is not below the threshold.
        """
        if self.value(start) >= threshold:
            return None
        # Scan the stored levels directly instead of hopping to
        # next_critical(start) first: the critical set's increase tolerance
        # can classify a genuine (tiny) distance increase as "constant", and
        # the hop would then land on a level whose distance already meets the
        # threshold — returning an unsafe range.  The scan only ever extends
        # through levels whose distance is verifiably below the threshold.
        idx = int(np.searchsorted(self.levels, start - _LEVEL_ATOL, side="left"))
        idx = min(idx, self.levels.size - 1)
        result = float(start)
        for j in range(idx, self.levels.size):
            if self.distances[j] < threshold:
                result = float(self.levels[j])
            else:
                break
        return max(result, float(start))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def max_distance(self) -> float:
        """Distance between the kernels (the largest value of the profile)."""
        return float(self.distances[-1])

    @property
    def min_distance(self) -> float:
        """Distance between the supports (the smallest value of the profile)."""
        return float(self.distances[0])

    def restricted(self, low: float, high: float) -> "DistanceProfile":
        """Profile truncated to levels relevant for ``alpha`` in ``[low, high]``."""
        if high < low:
            raise InvalidQueryError("restricted() expects low <= high")
        keep = (self.levels >= low - _LEVEL_ATOL) & (self.levels <= high + _LEVEL_ATOL)
        levels = list(self.levels[keep])
        distances = list(self.distances[keep])
        # The first level >= high (if any beyond the range) is needed so that
        # value(high) still resolves; likewise evaluation below the first kept
        # level must resolve, so prepend the covering level when necessary.
        if not levels or levels[-1] < high - _LEVEL_ATOL:
            idx = int(np.searchsorted(self.levels, high - _LEVEL_ATOL, side="left"))
            if idx < self.levels.size:
                levels.append(float(self.levels[idx]))
                distances.append(float(self.distances[idx]))
        return DistanceProfile(levels, distances)

    def steps(self) -> List[Tuple[float, float, float]]:
        """The constant pieces as ``(interval_start, interval_end, distance)``.

        Interval boundaries follow the half-open convention
        ``(start, end]`` with the first piece starting at 0.
        """
        pieces = []
        previous = 0.0
        for level, distance in zip(self.levels, self.distances):
            pieces.append((previous, float(level), float(distance)))
            previous = float(level)
        return pieces

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceProfile):
            return NotImplemented
        return np.array_equal(self.levels, other.levels) and np.allclose(
            self.distances, other.distances, equal_nan=True
        )

    def __repr__(self) -> str:
        return (
            f"DistanceProfile(levels={self.levels.size}, "
            f"d_min={self.min_distance:.4g}, d_max={self.max_distance:.4g})"
        )
