"""The discrete fuzzy object of Definition 1.

A fuzzy object is a finite set of d-dimensional points, each carrying a
membership value in ``(0, 1]`` that expresses the probability of the point
belonging to the object.  Following the paper we assume (and by default
enforce) a non-empty kernel: at least one point has membership exactly 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_ALPHA_CUT_CACHE_CAPACITY
from repro.exceptions import EmptyAlphaCutError, InvalidFuzzyObjectError
from repro.geometry.mbr import MBR

# Tolerance used when comparing membership values against a threshold so that
# values like 0.7000000000000001 produced by normalisation still count as 0.7.
MEMBERSHIP_ATOL = 1e-12

#: Library-wide alpha-cut cache counters (aggregated over every object, since
#: the per-object caches are short-lived); surfaced by the CLI ``--stats``
#: output and resettable through :func:`reset_cut_cache_statistics`.
CUT_CACHE_STATS = {"hits": 0, "misses": 0}


def reset_cut_cache_statistics() -> None:
    """Zero the global alpha-cut cache hit/miss counters."""
    CUT_CACHE_STATS["hits"] = 0
    CUT_CACHE_STATS["misses"] = 0


class FuzzyObject:
    """A fuzzy object ``A = {<a, mu_A(a)> | mu_A(a) > 0}``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` with the point coordinates.
    memberships:
        Array of shape ``(n,)`` with membership values in ``(0, 1]``.
    object_id:
        Optional integer identity used by the object store and index.
    require_kernel:
        When true (the default, matching the paper's assumption) the object
        must contain at least one point with membership 1.
    """

    __slots__ = (
        "points",
        "memberships",
        "object_id",
        "_levels",
        "_order",
        "_cut_cache",
        "_cut_cache_capacity",
    )

    def __init__(
        self,
        points: np.ndarray,
        memberships: np.ndarray,
        object_id: Optional[int] = None,
        require_kernel: bool = True,
    ):
        pts = np.asarray(points, dtype=float)
        mus = np.asarray(memberships, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise InvalidFuzzyObjectError("points must be a non-empty (n, d) array")
        if mus.ndim != 1 or mus.shape[0] != pts.shape[0]:
            raise InvalidFuzzyObjectError(
                "memberships must be a 1-d array aligned with points"
            )
        if not np.all(np.isfinite(pts)):
            raise InvalidFuzzyObjectError("points must be finite")
        if np.any(mus <= 0.0) or np.any(mus > 1.0 + MEMBERSHIP_ATOL):
            raise InvalidFuzzyObjectError("memberships must lie in (0, 1]")
        mus = np.minimum(mus, 1.0)
        if require_kernel and not np.any(np.isclose(mus, 1.0, atol=MEMBERSHIP_ATOL)):
            raise InvalidFuzzyObjectError(
                "fuzzy object has an empty kernel; the paper assumes at least "
                "one point with membership 1 (use normalize_memberships or "
                "require_kernel=False)"
            )
        self.points = pts
        self.memberships = mus
        self.object_id = object_id
        self._levels: Optional[np.ndarray] = None
        # Points sorted by decreasing membership; lets alpha-cuts be taken as
        # prefixes which keeps repeated cuts cheap.
        self._order: Optional[np.ndarray] = None
        # Materialised alpha-cuts keyed by threshold (built lazily; see
        # set_cut_cache_capacity).
        self._cut_cache = None
        self._cut_cache_capacity = DEFAULT_ALPHA_CUT_CACHE_CAPACITY

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Sequence[float], float]],
        object_id: Optional[int] = None,
        require_kernel: bool = True,
    ) -> "FuzzyObject":
        """Build an object from ``(point, membership)`` pairs."""
        pairs = list(pairs)
        if not pairs:
            raise InvalidFuzzyObjectError("cannot build a fuzzy object from no pairs")
        points = np.asarray([p for p, _ in pairs], dtype=float)
        memberships = np.asarray([m for _, m in pairs], dtype=float)
        return cls(points, memberships, object_id=object_id, require_kernel=require_kernel)

    @classmethod
    def crisp(
        cls, points: np.ndarray, object_id: Optional[int] = None
    ) -> "FuzzyObject":
        """A crisp (non-fuzzy) object: every point has membership 1."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        return cls(pts, np.ones(pts.shape[0]), object_id=object_id)

    @classmethod
    def single_point(
        cls, point: Sequence[float], object_id: Optional[int] = None
    ) -> "FuzzyObject":
        """Degenerate object consisting of one fully-certain point."""
        return cls.crisp(np.asarray(point, dtype=float).reshape(1, -1), object_id)

    def require_finite(self) -> "FuzzyObject":
        """Re-assert point finiteness; returns ``self`` for chaining.

        Construction already rejects non-finite points, so this only guards
        against post-construction mutation of :attr:`points` — the insert
        paths call it before any index or owner-map state is touched, since
        a NaN coordinate would otherwise poison MBRs, placement routing and
        distance evaluations.
        """
        if not np.all(np.isfinite(self.points)):
            raise InvalidFuzzyObjectError(
                f"object {self.object_id!r} has non-finite points"
            )
        return self

    def with_id(self, object_id: int) -> "FuzzyObject":
        """Copy of this object carrying ``object_id``."""
        clone = FuzzyObject(
            self.points.copy(),
            self.memberships.copy(),
            object_id=object_id,
            require_kernel=False,
        )
        return clone

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of probabilistic points in the object."""
        return int(self.points.shape[0])

    @property
    def dimensions(self) -> int:
        """Spatial dimensionality."""
        return int(self.points.shape[1])

    @property
    def has_kernel(self) -> bool:
        """Whether any point has membership exactly 1."""
        return bool(np.any(np.isclose(self.memberships, 1.0, atol=MEMBERSHIP_ATOL)))

    def distinct_memberships(self) -> np.ndarray:
        """``U_A``: sorted distinct membership values of the object."""
        if self._levels is None:
            self._levels = np.unique(self.memberships)
        return self._levels

    def _sorted_order(self) -> np.ndarray:
        if self._order is None:
            self._order = np.argsort(-self.memberships, kind="stable")
        return self._order

    # ------------------------------------------------------------------
    # Fuzzy set operations (Definition 2)
    # ------------------------------------------------------------------
    def support(self) -> np.ndarray:
        """The support set ``A_s`` (all points, since memberships are > 0)."""
        return self.points

    def kernel(self) -> np.ndarray:
        """The kernel set ``A_k`` (points with membership 1)."""
        mask = np.isclose(self.memberships, 1.0, atol=MEMBERSHIP_ATOL)
        return self.points[mask]

    def alpha_cut(self, alpha: float) -> np.ndarray:
        """The alpha-cut ``A_alpha`` (points with membership >= alpha).

        Materialised cuts are memoised in a small per-object LRU cache (see
        :meth:`set_cut_cache_capacity`); callers treat the returned array as
        read-only.
        """
        self._check_alpha(alpha)
        key = float(alpha)
        cache = self._ensure_cut_cache()
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                CUT_CACHE_STATS["hits"] += 1
                return cached
            CUT_CACHE_STATS["misses"] += 1
        mask = self.memberships >= alpha - MEMBERSHIP_ATOL
        cut = self.points[mask]
        if cut.shape[0] == 0:
            raise EmptyAlphaCutError(
                f"alpha-cut at alpha={alpha} is empty for object {self.object_id}"
            )
        if cache is not None:
            cache.put(key, cut)
        return cut

    def _ensure_cut_cache(self):
        """The per-object LRU cut cache, or ``None`` when disabled."""
        if self._cut_cache is None and self._cut_cache_capacity > 0:
            # Imported lazily: the storage package depends on this module.
            from repro.storage.cache import LRUCache

            self._cut_cache = LRUCache(self._cut_cache_capacity)
        return self._cut_cache

    def set_cut_cache_capacity(self, capacity: int) -> None:
        """Resize (or, with 0, disable) the per-object alpha-cut cache."""
        if capacity < 0:
            raise InvalidFuzzyObjectError("cut cache capacity must be >= 0")
        self._cut_cache_capacity = int(capacity)
        self._cut_cache = None

    def alpha_cut_size(self, alpha: float) -> int:
        """Number of points with membership >= alpha."""
        self._check_alpha(alpha)
        return int(np.count_nonzero(self.memberships >= alpha - MEMBERSHIP_ATOL))

    def membership_at(self, index: int) -> float:
        """Membership value of the point at ``index``."""
        return float(self.memberships[index])

    # ------------------------------------------------------------------
    # Bounding rectangles
    # ------------------------------------------------------------------
    def support_mbr(self) -> MBR:
        """MBR of the support set, ``M_A`` in the paper."""
        return MBR.from_points(self.points)

    def kernel_mbr(self) -> MBR:
        """MBR of the kernel set, ``M_A(1)``."""
        kernel = self.kernel()
        if kernel.shape[0] == 0:
            raise EmptyAlphaCutError(
                f"object {self.object_id} has no kernel; kernel MBR undefined"
            )
        return MBR.from_points(kernel)

    def alpha_mbr(self, alpha: float) -> MBR:
        """Exact MBR of the alpha-cut, ``M_A(alpha)``."""
        return MBR.from_points(self.alpha_cut(alpha))

    # ------------------------------------------------------------------
    # Sampling helpers used by the search optimisations
    # ------------------------------------------------------------------
    def representative_point(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """A point of the kernel, ``rep(A)`` (Section 3.4).

        The paper chooses the representative point at random from the kernel;
        a deterministic generator may be supplied for reproducibility.
        """
        kernel = self.kernel()
        if kernel.shape[0] == 0:
            raise EmptyAlphaCutError(
                f"object {self.object_id} has no kernel; representative undefined"
            )
        if rng is None:
            return kernel[0].copy()
        return kernel[int(rng.integers(0, kernel.shape[0]))].copy()

    def sample_alpha_cut(
        self,
        alpha: float,
        n_samples: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample ``n_samples`` points (without replacement) from the alpha-cut.

        Used to form ``Q'_alpha`` for the improved upper bound (Lemma 1).
        When the cut has fewer points than requested, all of them are
        returned.
        """
        cut = self.alpha_cut(alpha)
        if n_samples >= cut.shape[0]:
            return cut.copy()
        if rng is None:
            # Deterministic spread across the cut.
            idx = np.linspace(0, cut.shape[0] - 1, n_samples).astype(int)
        else:
            idx = rng.choice(cut.shape[0], size=n_samples, replace=False)
        return cut[idx]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalize_memberships(self) -> "FuzzyObject":
        """Rescale memberships so the maximum becomes exactly 1.

        The paper normalises probability values "across 0 to 1" for both
        datasets, guaranteeing a non-empty kernel.
        """
        maximum = float(self.memberships.max())
        scaled = self.memberships / maximum
        return FuzzyObject(self.points.copy(), scaled, object_id=self.object_id)

    def translated(self, offset: Sequence[float]) -> "FuzzyObject":
        """Copy of the object shifted by ``offset``."""
        off = np.asarray(offset, dtype=float)
        if off.shape != (self.dimensions,):
            raise InvalidFuzzyObjectError("offset dimensionality mismatch")
        return FuzzyObject(
            self.points + off,
            self.memberships.copy(),
            object_id=self.object_id,
            require_kernel=False,
        )

    def scaled(self, factor: float) -> "FuzzyObject":
        """Copy of the object scaled about the origin by ``factor``."""
        if factor <= 0:
            raise InvalidFuzzyObjectError("scale factor must be positive")
        return FuzzyObject(
            self.points * factor,
            self.memberships.copy(),
            object_id=self.object_id,
            require_kernel=False,
        )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-Python representation (JSON friendly)."""
        return {
            "object_id": self.object_id,
            "points": self.points.tolist(),
            "memberships": self.memberships.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzyObject":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(payload["points"], dtype=float),
            np.asarray(payload["memberships"], dtype=float),
            object_id=payload.get("object_id"),
            require_kernel=False,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FuzzyObject):
            return NotImplemented
        return (
            self.object_id == other.object_id
            and np.array_equal(self.points, other.points)
            and np.array_equal(self.memberships, other.memberships)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is enough
        return id(self)

    def __repr__(self) -> str:
        return (
            f"FuzzyObject(id={self.object_id}, points={self.size}, "
            f"dims={self.dimensions}, levels={self.distinct_memberships().size})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_alpha(alpha: float) -> None:
        if not 0.0 < alpha <= 1.0 + MEMBERSHIP_ATOL:
            raise InvalidFuzzyObjectError(
                f"probability threshold must be in (0, 1], got {alpha}"
            )
