"""Compact per-object summaries stored in R-tree leaf entries.

The optimised AKNN search (Section 3.2–3.4) avoids probing a fuzzy object
from disk by keeping a small amount of extra information in its leaf entry:

* the MBR of the support (``M_A(0)``) — also used by the basic algorithm,
* the MBR of the kernel (``M_A(1)``),
* one optimal conservative line per dimension and side, which together allow
  the approximated alpha-cut MBR ``M_A(alpha)*`` of Equation (2) to be
  reconstructed for any threshold,
* a representative kernel point ``rep(A)`` used by the improved upper bound
  (Lemma 1).

:class:`FuzzyObjectSummary` bundles exactly this information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.fuzzy.boundary import ConservativeLine, ObjectLines, fit_object_lines
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.geometry.mbr import MBR


@dataclass(frozen=True)
class FuzzyObjectSummary:
    """Everything the index keeps in memory about one fuzzy object."""

    object_id: int
    n_points: int
    support_mbr: MBR
    kernel_mbr: MBR
    upper_lines: Tuple[ConservativeLine, ...]
    lower_lines: Tuple[ConservativeLine, ...]
    representative: np.ndarray

    @property
    def dimensions(self) -> int:
        """Spatial dimensionality of the summarised object."""
        return self.support_mbr.dimensions

    # ------------------------------------------------------------------
    # Equation (2): the approximated alpha-cut MBR
    # ------------------------------------------------------------------
    def approx_alpha_mbr(self, alpha: float) -> MBR:
        """``M_A(alpha)*``: a conservative approximation of the alpha-cut MBR.

        Per dimension the upper bound is
        ``min(M_A(1)+ + line_up(alpha), M_A(0)+)`` and the lower bound is
        ``max(M_A(1)- - line_lo(alpha), M_A(0)-)``.  Conservativeness of the
        lines guarantees the true ``M_A(alpha)`` is always enclosed.
        """
        dims = self.dimensions
        upper = np.empty(dims)
        lower = np.empty(dims)
        for i in range(dims):
            upper[i] = min(
                self.kernel_mbr.upper[i] + self.upper_lines[i].delta_at(alpha),
                self.support_mbr.upper[i],
            )
            lower[i] = max(
                self.kernel_mbr.lower[i] - self.lower_lines[i].delta_at(alpha),
                self.support_mbr.lower[i],
            )
            # Numerical safety: the approximation must remain a valid box.
            if lower[i] > upper[i]:
                lower[i] = upper[i] = (lower[i] + upper[i]) / 2.0
        return MBR(lower, upper)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-Python representation used by the on-disk index catalogue."""
        return {
            "object_id": self.object_id,
            "n_points": self.n_points,
            "support_mbr": self.support_mbr.to_array().tolist(),
            "kernel_mbr": self.kernel_mbr.to_array().tolist(),
            "upper_lines": [line.to_pair() for line in self.upper_lines],
            "lower_lines": [line.to_pair() for line in self.lower_lines],
            "representative": self.representative.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzyObjectSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            object_id=int(payload["object_id"]),
            n_points=int(payload["n_points"]),
            support_mbr=MBR.from_array(payload["support_mbr"]),
            kernel_mbr=MBR.from_array(payload["kernel_mbr"]),
            upper_lines=tuple(
                ConservativeLine.from_pair(p) for p in payload["upper_lines"]
            ),
            lower_lines=tuple(
                ConservativeLine.from_pair(p) for p in payload["lower_lines"]
            ),
            representative=np.asarray(payload["representative"], dtype=float),
        )


def build_summary(
    obj: FuzzyObject,
    rng: Optional[np.random.Generator] = None,
    lines: Optional[ObjectLines] = None,
) -> FuzzyObjectSummary:
    """Build the leaf-entry summary for ``obj``.

    Parameters
    ----------
    rng:
        Source of randomness for picking the representative kernel point; a
        deterministic choice (the first kernel point) is used when omitted.
    lines:
        Pre-fitted conservative lines, if the caller already computed them.
    """
    if obj.object_id is None:
        raise ValueError("cannot summarise a fuzzy object without an object_id")
    if lines is None:
        lines = fit_object_lines(obj)
    return FuzzyObjectSummary(
        object_id=int(obj.object_id),
        n_points=obj.size,
        support_mbr=obj.support_mbr(),
        kernel_mbr=obj.kernel_mbr(),
        upper_lines=lines.upper,
        lower_lines=lines.lower,
        representative=obj.representative_point(rng),
    )
