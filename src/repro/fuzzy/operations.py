"""Set-theoretic and metric operations on fuzzy objects.

The paper builds on the fuzzy spatial data types of the GIS literature
(Altman; Schneider's fuzzy points/lines/regions and their metric operations)
but only needs the alpha-cut machinery for its queries.  This module fills in
the standard operations of that substrate for the discrete model of
Definition 1, so downstream users can manipulate fuzzy objects — not just
search them:

* **Set operations** (Zadeh):  union (pointwise max of memberships),
  intersection (pointwise min) and difference (min with the complement).
  Points are matched by coordinates; unmatched points carry membership 0 in
  the other operand.
* **Metric operations** (Schneider, "Metric operations on fuzzy spatial
  objects"): scalar cardinality, fuzzy area of the alpha-cut family, centroid
  (membership-weighted), diameter, and the degree-of-overlap between two
  objects.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidFuzzyObjectError
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.geometry.distance import closest_pair_distance

# Coordinates are matched exactly after rounding to this many decimals, which
# absorbs representation noise without conflating distinct pixels.
_COORD_DECIMALS = 12


def _as_point_map(obj: FuzzyObject) -> Dict[Tuple[float, ...], float]:
    """Map from (rounded) point coordinates to membership value."""
    rounded = np.round(obj.points, _COORD_DECIMALS)
    mapping: Dict[Tuple[float, ...], float] = {}
    for point, membership in zip(rounded, obj.memberships):
        key = tuple(point.tolist())
        # Duplicate coordinates keep the larger membership (set semantics).
        mapping[key] = max(mapping.get(key, 0.0), float(membership))
    return mapping


def _check_compatible(a: FuzzyObject, b: FuzzyObject) -> None:
    if a.dimensions != b.dimensions:
        raise InvalidFuzzyObjectError(
            "set operations require objects of the same dimensionality"
        )


def _from_point_map(
    mapping: Dict[Tuple[float, ...], float], object_id: Optional[int]
) -> FuzzyObject:
    points = np.asarray(list(mapping.keys()), dtype=float)
    memberships = np.asarray(list(mapping.values()), dtype=float)
    keep = memberships > 0.0
    if not np.any(keep):
        raise InvalidFuzzyObjectError("the resulting fuzzy object is empty")
    return FuzzyObject(
        points[keep], memberships[keep], object_id=object_id, require_kernel=False
    )


# ----------------------------------------------------------------------
# Set operations
# ----------------------------------------------------------------------
def fuzzy_union(a: FuzzyObject, b: FuzzyObject, object_id: Optional[int] = None) -> FuzzyObject:
    """Pointwise-maximum union of two fuzzy objects (Zadeh union)."""
    _check_compatible(a, b)
    merged = _as_point_map(a)
    for key, membership in _as_point_map(b).items():
        merged[key] = max(merged.get(key, 0.0), membership)
    return _from_point_map(merged, object_id)


def fuzzy_intersection(
    a: FuzzyObject, b: FuzzyObject, object_id: Optional[int] = None
) -> FuzzyObject:
    """Pointwise-minimum intersection of two fuzzy objects (Zadeh intersection).

    Raises :class:`InvalidFuzzyObjectError` when the objects share no points.
    """
    _check_compatible(a, b)
    map_a = _as_point_map(a)
    map_b = _as_point_map(b)
    common = {
        key: min(map_a[key], map_b[key]) for key in map_a.keys() & map_b.keys()
    }
    return _from_point_map(common, object_id)


def fuzzy_difference(
    a: FuzzyObject, b: FuzzyObject, object_id: Optional[int] = None
) -> FuzzyObject:
    """Fuzzy difference ``A \\ B``: ``min(mu_A(x), 1 - mu_B(x))`` per point of A."""
    _check_compatible(a, b)
    map_b = _as_point_map(b)
    result: Dict[Tuple[float, ...], float] = {}
    for key, membership in _as_point_map(a).items():
        result[key] = min(membership, 1.0 - map_b.get(key, 0.0))
    return _from_point_map(result, object_id)


def overlaps(a: FuzzyObject, b: FuzzyObject) -> bool:
    """Whether the two objects share at least one point with positive minimum."""
    map_a = _as_point_map(a)
    map_b = _as_point_map(b)
    return any(min(map_a[key], map_b[key]) > 0.0 for key in map_a.keys() & map_b.keys())


# ----------------------------------------------------------------------
# Metric operations
# ----------------------------------------------------------------------
def scalar_cardinality(obj: FuzzyObject) -> float:
    """Sum of membership values (the sigma-count of the fuzzy set)."""
    return float(np.sum(obj.memberships))


def fuzzy_centroid(obj: FuzzyObject) -> np.ndarray:
    """Membership-weighted centroid of the object."""
    weights = obj.memberships / np.sum(obj.memberships)
    return np.asarray(weights @ obj.points, dtype=float)


def fuzzy_area(obj: FuzzyObject, pixel_area: float = 1.0) -> float:
    """Expected area of a discrete fuzzy region.

    Treating every point as a pixel of area ``pixel_area`` that belongs to the
    region with its membership probability, the expected area is the
    sigma-count times the pixel area — the discrete counterpart of Schneider's
    fuzzy-area integral.
    """
    if pixel_area <= 0:
        raise InvalidFuzzyObjectError("pixel_area must be positive")
    return scalar_cardinality(obj) * pixel_area


def alpha_cut_area(obj: FuzzyObject, alpha: float, pixel_area: float = 1.0) -> float:
    """Crisp area of one alpha-cut (number of qualifying pixels times pixel area)."""
    if pixel_area <= 0:
        raise InvalidFuzzyObjectError("pixel_area must be positive")
    return obj.alpha_cut_size(alpha) * pixel_area


def diameter(obj: FuzzyObject, alpha: float = 0.0) -> float:
    """Largest pairwise distance inside the alpha-cut (support when alpha=0)."""
    cut = obj.support() if alpha <= 0.0 else obj.alpha_cut(alpha)
    if cut.shape[0] == 1:
        return 0.0
    diffs = cut[:, None, :] - cut[None, :, :]
    return float(np.sqrt(np.max(np.einsum("ijk,ijk->ij", diffs, diffs))))


def overlap_degree(a: FuzzyObject, b: FuzzyObject) -> float:
    """Degree of overlap in [0, 1]: |A ∩ B| / min(|A|, |B|) by sigma-count."""
    _check_compatible(a, b)
    map_a = _as_point_map(a)
    map_b = _as_point_map(b)
    shared = sum(min(map_a[key], map_b[key]) for key in map_a.keys() & map_b.keys())
    smallest = min(scalar_cardinality(a), scalar_cardinality(b))
    if smallest <= 0.0:
        return 0.0
    return float(min(1.0, shared / smallest))


def gap_distance(a: FuzzyObject, b: FuzzyObject, alpha: float) -> float:
    """Alias of the alpha-distance expressed through this module for symmetry."""
    return closest_pair_distance(a.alpha_cut(alpha), b.alpha_cut(alpha))
