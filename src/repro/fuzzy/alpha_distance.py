"""The alpha-distance of Definition 3 and distance profiles.

``d_alpha(A, B) = min_{a in A_alpha, b in B_alpha} ||a - b||``

The alpha-distance is evaluated by solving a closest-pair problem between the
two alpha-cuts.  Because alpha-cuts only change when alpha crosses a
membership level, the full map ``alpha -> d_alpha(A, B)`` is a
piecewise-constant, monotonically non-decreasing step function; the
:func:`distance_profile` helper materialises it exactly, which is the basis of
exact RKNN processing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EmptyAlphaCutError, InvalidFuzzyObjectError
from repro.fuzzy.fuzzy_object import MEMBERSHIP_ATOL, FuzzyObject
from repro.fuzzy.profile import DistanceProfile
from repro.geometry.distance import closest_pair_distance


def alpha_distance_points(
    cut_a: np.ndarray,
    cut_b: np.ndarray,
    use_kdtree: bool = True,
) -> float:
    """Alpha-distance between two already-materialised alpha-cuts."""
    if cut_a.shape[0] == 0 or cut_b.shape[0] == 0:
        raise EmptyAlphaCutError("cannot evaluate a distance against an empty cut")
    return closest_pair_distance(cut_a, cut_b, use_kdtree=use_kdtree)


def alpha_distance(
    obj_a: FuzzyObject,
    obj_b: FuzzyObject,
    alpha: float,
    use_kdtree: bool = True,
) -> float:
    """``d_alpha(A, B)``: minimum distance between the two alpha-cuts."""
    if obj_a.dimensions != obj_b.dimensions:
        raise InvalidFuzzyObjectError(
            "alpha-distance requires objects of the same dimensionality"
        )
    cut_a = obj_a.alpha_cut(alpha)
    cut_b = obj_b.alpha_cut(alpha)
    return alpha_distance_points(cut_a, cut_b, use_kdtree=use_kdtree)


def distance_profile(
    obj_a: FuzzyObject,
    obj_b: FuzzyObject,
    use_kdtree: bool = True,
    max_level: Optional[float] = None,
) -> DistanceProfile:
    """Exact profile of ``alpha -> d_alpha(A, B)`` over ``(0, 1]``.

    The alpha-cut of either object only changes when alpha crosses one of its
    distinct membership values, so the distance is constant on every interval
    ``(u_{i-1}, u_i]`` where ``u_1 < ... < u_m`` are the combined distinct
    membership levels of ``A`` and ``B``.  The profile stores one distance per
    such interval.

    Parameters
    ----------
    max_level:
        When given, levels above this value are not evaluated (the profile is
        truncated at the smallest level >= ``max_level``).  Used by RKNN
        processing to avoid computing distances beyond the query range.
    """
    if obj_a.dimensions != obj_b.dimensions:
        raise InvalidFuzzyObjectError(
            "distance profile requires objects of the same dimensionality"
        )
    levels = np.union1d(obj_a.distinct_memberships(), obj_b.distinct_memberships())
    # Membership values are in (0, 1]; make sure 1.0 is always present so the
    # profile covers the full domain up to the kernel-vs-kernel distance.
    if levels[-1] < 1.0 - MEMBERSHIP_ATOL:
        levels = np.append(levels, 1.0)
    if max_level is not None:
        keep = levels <= max_level + MEMBERSHIP_ATOL
        # Retain the first level >= max_level so evaluation at max_level works.
        above = levels[levels > max_level + MEMBERSHIP_ATOL]
        levels = levels[keep]
        if above.size:
            levels = np.append(levels, above[0])

    # Sort both objects by decreasing membership once; every alpha-cut is then
    # a prefix of the sorted arrays, so the sweep reuses the same buffers.
    order_a = np.argsort(-obj_a.memberships, kind="stable")
    order_b = np.argsort(-obj_b.memberships, kind="stable")
    pts_a = obj_a.points[order_a]
    mus_a = obj_a.memberships[order_a]
    pts_b = obj_b.points[order_b]
    mus_b = obj_b.memberships[order_b]

    distances = np.empty(levels.size, dtype=float)
    for i, level in enumerate(levels):
        count_a = int(np.count_nonzero(mus_a >= level - MEMBERSHIP_ATOL))
        count_b = int(np.count_nonzero(mus_b >= level - MEMBERSHIP_ATOL))
        if count_a == 0 or count_b == 0:
            distances[i] = np.inf
            continue
        distances[i] = closest_pair_distance(
            pts_a[:count_a], pts_b[:count_b], use_kdtree=use_kdtree
        )
    return DistanceProfile(levels, distances)
