"""The alpha-distance of Definition 3 and distance profiles.

``d_alpha(A, B) = min_{a in A_alpha, b in B_alpha} ||a - b||``

The alpha-distance is evaluated by solving a closest-pair problem between the
two alpha-cuts.  Because alpha-cuts only change when alpha crosses a
membership level, the full map ``alpha -> d_alpha(A, B)`` is a
piecewise-constant, monotonically non-decreasing step function; the
:func:`distance_profile` helper materialises it exactly, which is the basis of
exact RKNN processing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import EmptyAlphaCutError, InvalidFuzzyObjectError
from repro.fuzzy.fuzzy_object import MEMBERSHIP_ATOL, FuzzyObject
from repro.fuzzy.profile import DistanceProfile
from repro.geometry.distance import closest_pair_distance
from repro.storage.cache import LRUCache


def alpha_distance_points(
    cut_a: np.ndarray,
    cut_b: np.ndarray,
    use_kdtree: bool = True,
) -> float:
    """Alpha-distance between two already-materialised alpha-cuts."""
    if cut_a.shape[0] == 0 or cut_b.shape[0] == 0:
        raise EmptyAlphaCutError("cannot evaluate a distance against an empty cut")
    return closest_pair_distance(cut_a, cut_b, use_kdtree=use_kdtree)


def alpha_distance(
    obj_a: FuzzyObject,
    obj_b: FuzzyObject,
    alpha: float,
    use_kdtree: bool = True,
) -> float:
    """``d_alpha(A, B)``: minimum distance between the two alpha-cuts."""
    if obj_a.dimensions != obj_b.dimensions:
        raise InvalidFuzzyObjectError(
            "alpha-distance requires objects of the same dimensionality"
        )
    cut_a = obj_a.alpha_cut(alpha)
    cut_b = obj_b.alpha_cut(alpha)
    return alpha_distance_points(cut_a, cut_b, use_kdtree=use_kdtree)


def distance_profile(
    obj_a: FuzzyObject,
    obj_b: FuzzyObject,
    use_kdtree: bool = True,
    max_level: Optional[float] = None,
) -> DistanceProfile:
    """Exact profile of ``alpha -> d_alpha(A, B)`` over ``(0, 1]``.

    The alpha-cut of either object only changes when alpha crosses one of its
    distinct membership values, so the distance is constant on every interval
    ``(u_{i-1}, u_i]`` where ``u_1 < ... < u_m`` are the combined distinct
    membership levels of ``A`` and ``B``.  The profile stores one distance per
    such interval.

    Parameters
    ----------
    max_level:
        When given, levels above this value are not evaluated (the profile is
        truncated at the smallest level >= ``max_level``).  Used by RKNN
        processing to avoid computing distances beyond the query range.
    """
    if obj_a.dimensions != obj_b.dimensions:
        raise InvalidFuzzyObjectError(
            "distance profile requires objects of the same dimensionality"
        )
    levels = np.union1d(obj_a.distinct_memberships(), obj_b.distinct_memberships())
    # Membership values are in (0, 1]; make sure 1.0 is always present so the
    # profile covers the full domain up to the kernel-vs-kernel distance.
    if levels[-1] < 1.0 - MEMBERSHIP_ATOL:
        levels = np.append(levels, 1.0)
    if max_level is not None:
        keep = levels <= max_level + MEMBERSHIP_ATOL
        # Retain the first level >= max_level so evaluation at max_level works.
        above = levels[levels > max_level + MEMBERSHIP_ATOL]
        levels = levels[keep]
        if above.size:
            levels = np.append(levels, above[0])

    # Sort both objects by decreasing membership once; every alpha-cut is then
    # a prefix of the sorted arrays, so the sweep reuses the same buffers.
    order_a = np.argsort(-obj_a.memberships, kind="stable")
    order_b = np.argsort(-obj_b.memberships, kind="stable")
    pts_a = obj_a.points[order_a]
    mus_a = obj_a.memberships[order_a]
    pts_b = obj_b.points[order_b]
    mus_b = obj_b.memberships[order_b]

    distances = np.empty(levels.size, dtype=float)
    for i, level in enumerate(levels):
        count_a = int(np.count_nonzero(mus_a >= level - MEMBERSHIP_ATOL))
        count_b = int(np.count_nonzero(mus_b >= level - MEMBERSHIP_ATOL))
        if count_a == 0 or count_b == 0:
            distances[i] = np.inf
            continue
        distances[i] = closest_pair_distance(
            pts_a[:count_a], pts_b[:count_b], use_kdtree=use_kdtree
        )
    return DistanceProfile(levels, distances)


class DistanceProfileStore:
    """Memoised distance profiles keyed by ``(query, stored object)`` pairs.

    The RKNN algorithms recompute the profile of the same (query, candidate)
    pair across sweep steps and across repeated calls with the same query
    object; this store bounds that work with an LRU of
    :class:`~repro.storage.cache.LRUCache`.

    The query side of the key is the *instance identity* of the query object
    (queries typically carry no object id); to keep ``id()`` keys valid, every
    cached value pins a strong reference to its query object, and a hit is
    only served when the pinned instance is the caller's instance.  The stored
    side is keyed by object id, which is stable within one database.
    """

    def __init__(self, capacity: int):
        self._cache: LRUCache[
            Tuple[int, int, Optional[float]], Tuple[FuzzyObject, DistanceProfile]
        ] = LRUCache(capacity)
        # Scalar d_alpha memo for callers that never need a full profile (the
        # reverse engine), plus a per-pair pointer to the widest cached
        # profile, so a profile computed by the sweep searcher serves point
        # evaluations for free (and vice versa callers pay each (query,
        # object) distance once).  The pointer table is itself an LRU of the
        # same capacity: query instances die with their requests, so a plain
        # dict would leak one entry per (query, candidate) pair forever on a
        # long-running service.
        self._distances: LRUCache[
            Tuple[int, int, float], Tuple[FuzzyObject, float]
        ] = LRUCache(capacity)
        self._widest: LRUCache[
            Tuple[int, int], Tuple[int, int, Optional[float]]
        ] = LRUCache(capacity)
        # Query instances that currently have entries, so hot-path callers
        # can skip per-pair lookups for queries the store has never seen
        # (the common case: a fresh query object per request).
        self._queries: LRUCache[int, FuzzyObject] = LRUCache(capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of memoised profiles (0 disables the store)."""
        return self._cache.capacity

    @property
    def hits(self) -> int:
        """Number of lookups served from the store."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of lookups that had to recompute."""
        return self._cache.misses

    def __len__(self) -> int:
        return len(self._cache)

    @staticmethod
    def _key(
        query: FuzzyObject, object_id: int, max_level: Optional[float]
    ) -> Tuple[int, int, Optional[float]]:
        return (id(query), int(object_id), None if max_level is None else float(max_level))

    def lookup(
        self, query: FuzzyObject, object_id: int, max_level: Optional[float] = None
    ) -> Optional[DistanceProfile]:
        """The memoised profile for the pair, or ``None`` on a miss."""
        value = self._cache.get(self._key(query, object_id, max_level))
        if value is None:
            return None
        pinned_query, profile = value
        if pinned_query is not query:  # pragma: no cover - id() reuse guard
            return None
        return profile

    def insert(
        self,
        query: FuzzyObject,
        object_id: int,
        profile: DistanceProfile,
        max_level: Optional[float] = None,
    ) -> None:
        """Memoise one computed profile."""
        key = self._key(query, object_id, max_level)
        self._cache.put(key, (query, profile))
        self._queries.put(key[0], query)
        pair = (key[0], key[1])
        widest = self._widest.get(pair)
        if widest is None or self._covers(key[2], widest[2]):
            self._widest.put(pair, key)

    @staticmethod
    def _covers(new_level: Optional[float], old_level: Optional[float]) -> bool:
        """Whether a profile truncated at ``new_level`` covers at least as
        much of the threshold axis as one truncated at ``old_level``."""
        if new_level is None:
            return True
        if old_level is None:
            return False
        return new_level >= old_level

    # ------------------------------------------------------------------
    # Scalar d_alpha memo (shared with the reverse engine)
    # ------------------------------------------------------------------
    def distance_at(
        self, query: FuzzyObject, object_id: int, alpha: float
    ) -> Optional[float]:
        """Memoised ``d_alpha(A, Q)`` for one threshold, or ``None``.

        Served first from the scalar memo, then by point-evaluating the
        widest cached profile of the pair when its domain covers ``alpha`` —
        so a profile materialised by the sweep searcher answers the reverse
        engine's distance evaluations for free.
        """
        alpha = float(alpha)
        value = self._distances.get((id(query), int(object_id), alpha))
        if value is not None and value[0] is query:
            return value[1]
        pair = (id(query), int(object_id))
        widest = self._widest.get(pair)
        if widest is None:
            return None
        cached = self._cache.get(widest)
        if cached is None:  # evicted since the pointer was written
            self._widest.invalidate(pair)
            return None
        pinned_query, profile = cached
        if pinned_query is not query:  # pragma: no cover - id() reuse guard
            self._widest.invalidate(pair)
            return None
        if alpha > float(profile.levels[-1]) + 1e-12:
            return None
        return profile.value(alpha)

    def insert_distance(
        self, query: FuzzyObject, object_id: int, alpha: float, distance: float
    ) -> None:
        """Memoise one exact point evaluation ``d_alpha(A, Q)``."""
        self._distances.put(
            (id(query), int(object_id), float(alpha)), (query, float(distance))
        )
        self._queries.put(id(query), query)

    def has_query(self, query: FuzzyObject) -> bool:
        """Whether this exact query instance has any memoised entry.

        Hot-path callers gate per-pair lookups on this: a fresh query object
        (the common serving case) can never hit, so the vectorized one-shot
        evaluation path is kept regardless of what other queries have
        cached.
        """
        if self.capacity == 0:
            return False
        return self._queries.get(id(query)) is query

    def clear(self) -> None:
        """Drop every memoised profile and distance (statistics preserved)."""
        self._cache.clear()
        self._distances.clear()
        self._widest.clear()
        self._queries.clear()

    def reset_statistics(self) -> None:
        """Zero the hit/miss counters."""
        self._cache.reset_statistics()
        self._distances.reset_statistics()
