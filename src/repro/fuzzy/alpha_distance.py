"""The alpha-distance of Definition 3 and distance profiles.

``d_alpha(A, B) = min_{a in A_alpha, b in B_alpha} ||a - b||``

The alpha-distance is evaluated by solving a closest-pair problem between the
two alpha-cuts.  Because alpha-cuts only change when alpha crosses a
membership level, the full map ``alpha -> d_alpha(A, B)`` is a
piecewise-constant, monotonically non-decreasing step function; the
:func:`distance_profile` helper materialises it exactly, which is the basis of
exact RKNN processing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import EmptyAlphaCutError, InvalidFuzzyObjectError
from repro.fuzzy.fuzzy_object import MEMBERSHIP_ATOL, FuzzyObject
from repro.fuzzy.profile import DistanceProfile
from repro.geometry.distance import closest_pair_distance
from repro.storage.cache import LRUCache


def alpha_distance_points(
    cut_a: np.ndarray,
    cut_b: np.ndarray,
    use_kdtree: bool = True,
) -> float:
    """Alpha-distance between two already-materialised alpha-cuts."""
    if cut_a.shape[0] == 0 or cut_b.shape[0] == 0:
        raise EmptyAlphaCutError("cannot evaluate a distance against an empty cut")
    return closest_pair_distance(cut_a, cut_b, use_kdtree=use_kdtree)


def alpha_distance(
    obj_a: FuzzyObject,
    obj_b: FuzzyObject,
    alpha: float,
    use_kdtree: bool = True,
) -> float:
    """``d_alpha(A, B)``: minimum distance between the two alpha-cuts."""
    if obj_a.dimensions != obj_b.dimensions:
        raise InvalidFuzzyObjectError(
            "alpha-distance requires objects of the same dimensionality"
        )
    cut_a = obj_a.alpha_cut(alpha)
    cut_b = obj_b.alpha_cut(alpha)
    return alpha_distance_points(cut_a, cut_b, use_kdtree=use_kdtree)


def distance_profile(
    obj_a: FuzzyObject,
    obj_b: FuzzyObject,
    use_kdtree: bool = True,
    max_level: Optional[float] = None,
) -> DistanceProfile:
    """Exact profile of ``alpha -> d_alpha(A, B)`` over ``(0, 1]``.

    The alpha-cut of either object only changes when alpha crosses one of its
    distinct membership values, so the distance is constant on every interval
    ``(u_{i-1}, u_i]`` where ``u_1 < ... < u_m`` are the combined distinct
    membership levels of ``A`` and ``B``.  The profile stores one distance per
    such interval.

    Parameters
    ----------
    max_level:
        When given, levels above this value are not evaluated (the profile is
        truncated at the smallest level >= ``max_level``).  Used by RKNN
        processing to avoid computing distances beyond the query range.
    """
    if obj_a.dimensions != obj_b.dimensions:
        raise InvalidFuzzyObjectError(
            "distance profile requires objects of the same dimensionality"
        )
    levels = np.union1d(obj_a.distinct_memberships(), obj_b.distinct_memberships())
    # Membership values are in (0, 1]; make sure 1.0 is always present so the
    # profile covers the full domain up to the kernel-vs-kernel distance.
    if levels[-1] < 1.0 - MEMBERSHIP_ATOL:
        levels = np.append(levels, 1.0)
    if max_level is not None:
        keep = levels <= max_level + MEMBERSHIP_ATOL
        # Retain the first level >= max_level so evaluation at max_level works.
        above = levels[levels > max_level + MEMBERSHIP_ATOL]
        levels = levels[keep]
        if above.size:
            levels = np.append(levels, above[0])

    # Sort both objects by decreasing membership once; every alpha-cut is then
    # a prefix of the sorted arrays, so the sweep reuses the same buffers.
    order_a = np.argsort(-obj_a.memberships, kind="stable")
    order_b = np.argsort(-obj_b.memberships, kind="stable")
    pts_a = obj_a.points[order_a]
    mus_a = obj_a.memberships[order_a]
    pts_b = obj_b.points[order_b]
    mus_b = obj_b.memberships[order_b]

    distances = np.empty(levels.size, dtype=float)
    for i, level in enumerate(levels):
        count_a = int(np.count_nonzero(mus_a >= level - MEMBERSHIP_ATOL))
        count_b = int(np.count_nonzero(mus_b >= level - MEMBERSHIP_ATOL))
        if count_a == 0 or count_b == 0:
            distances[i] = np.inf
            continue
        distances[i] = closest_pair_distance(
            pts_a[:count_a], pts_b[:count_b], use_kdtree=use_kdtree
        )
    return DistanceProfile(levels, distances)


class DistanceProfileStore:
    """Memoised distance profiles keyed by ``(query, stored object)`` pairs.

    The RKNN algorithms recompute the profile of the same (query, candidate)
    pair across sweep steps and across repeated calls with the same query
    object; this store bounds that work with an LRU of
    :class:`~repro.storage.cache.LRUCache`.

    The query side of the key is the *instance identity* of the query object
    (queries typically carry no object id); to keep ``id()`` keys valid, every
    cached value pins a strong reference to its query object, and a hit is
    only served when the pinned instance is the caller's instance.  The stored
    side is keyed by object id, which is stable within one database.
    """

    def __init__(self, capacity: int):
        self._cache: LRUCache[
            Tuple[int, int, Optional[float]], Tuple[FuzzyObject, DistanceProfile]
        ] = LRUCache(capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of memoised profiles (0 disables the store)."""
        return self._cache.capacity

    @property
    def hits(self) -> int:
        """Number of lookups served from the store."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of lookups that had to recompute."""
        return self._cache.misses

    def __len__(self) -> int:
        return len(self._cache)

    @staticmethod
    def _key(
        query: FuzzyObject, object_id: int, max_level: Optional[float]
    ) -> Tuple[int, int, Optional[float]]:
        return (id(query), int(object_id), None if max_level is None else float(max_level))

    def lookup(
        self, query: FuzzyObject, object_id: int, max_level: Optional[float] = None
    ) -> Optional[DistanceProfile]:
        """The memoised profile for the pair, or ``None`` on a miss."""
        value = self._cache.get(self._key(query, object_id, max_level))
        if value is None:
            return None
        pinned_query, profile = value
        if pinned_query is not query:  # pragma: no cover - id() reuse guard
            return None
        return profile

    def insert(
        self,
        query: FuzzyObject,
        object_id: int,
        profile: DistanceProfile,
        max_level: Optional[float] = None,
    ) -> None:
        """Memoise one computed profile."""
        self._cache.put(self._key(query, object_id, max_level), (query, profile))

    def clear(self) -> None:
        """Drop every memoised profile (statistics are preserved)."""
        self._cache.clear()

    def reset_statistics(self) -> None:
        """Zero the hit/miss counters."""
        self._cache.reset_statistics()
