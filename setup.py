"""Legacy setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that editable installs keep working in offline environments where the
``wheel`` package (required by PEP 517 editable builds) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
