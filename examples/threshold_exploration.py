"""Exploring how the kNN set changes across probability thresholds (RKNN).

The AKNN query answers "who are the k nearest at confidence alpha?".  When an
analyst does not know which confidence level matters, the range kNN query
(Definition 5) answers the whole family of questions at once: every object
that is a k nearest neighbour at *some* threshold in a range is returned with
its qualifying range.

The script runs an RKNN query over a wide range, prints the qualifying ranges
(the analogue of Figure 3 in the paper), cross-checks the answer against
repeated AKNN queries, and compares the cost of the three RKNN processing
strategies (basic sweep, RSS, RSS-ICR).

Run with::

    python examples/threshold_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import AknnRequest, FuzzyDatabase, SweepRequest
from repro.datasets import build_dataset
from repro.datasets.queries import generate_query_object

K = 3
ALPHA_RANGE = (0.2, 0.9)


def main() -> None:
    print("Building a synthetic dataset of 250 fuzzy objects ...")
    objects = build_dataset(
        kind="synthetic", n_objects=250, points_per_object=80, seed=11, space_size=11.0
    )
    db = FuzzyDatabase.build(objects)
    rng = np.random.default_rng(5)
    query = generate_query_object(rng, kind="synthetic", space_size=11.0, points_per_object=80)

    # ------------------------------------------------------------------
    # 1. One RKNN query answers every threshold in [0.2, 0.9] at once.
    # ------------------------------------------------------------------
    print(f"\nRKNN query: k = {K}, alpha range = {ALPHA_RANGE}")
    result = db.execute(
        SweepRequest(query, k=K, alpha_range=ALPHA_RANGE, method="rss_icr")
    )
    print(f"  {len(result)} objects qualify somewhere in the range:")
    for object_id in result.object_ids:
        print(f"    object {object_id:>4}: {result.assignments[object_id]}")

    # ------------------------------------------------------------------
    # 2. Cross-check: an AKNN query at a few thresholds agrees.
    # ------------------------------------------------------------------
    print("\n  cross-check against AKNN at selected thresholds:")
    for alpha in (0.25, 0.5, 0.75):
        aknn_ids = sorted(
            db.execute(AknnRequest(query, k=K, alpha=alpha)).object_ids
        )
        rknn_ids = result.qualifying_at(alpha)
        status = "ok" if aknn_ids == rknn_ids else "MISMATCH"
        print(f"    alpha = {alpha:.2f}: AKNN {aknn_ids} vs RKNN {rknn_ids}  [{status}]")

    # ------------------------------------------------------------------
    # 3. Cost of the three RKNN strategies (the paper's Figures 13 / 14).
    # ------------------------------------------------------------------
    print("\n  cost comparison of the RKNN strategies:")
    print(f"    {'method':<10} {'object accesses':>16} {'AKNN calls':>12} "
          f"{'refinement steps':>18} {'time [ms]':>10}")
    for method in ("basic", "rss", "rss_icr"):
        db.reset_statistics()
        stats = db.execute(
            SweepRequest(query, k=K, alpha_range=ALPHA_RANGE, method=method)
        ).stats
        print(
            f"    {method:<10} {stats.object_accesses:>16} {stats.aknn_calls:>12} "
            f"{stats.refinement_steps:>18} {stats.elapsed_seconds * 1000:>10.1f}"
        )

    db.close()


if __name__ == "__main__":
    main()
