"""Quickstart: build a fuzzy-object database and run AKNN / RKNN queries.

Run with::

    python examples/quickstart.py

The script builds a small synthetic dataset (circular fuzzy objects with
Gaussian membership decay, as in Section 6.1 of the paper), indexes it, and
answers one ad-hoc kNN query and one range kNN query, printing the results
together with the cost counters that the paper's evaluation reports.
"""

from __future__ import annotations

import numpy as np

from repro import AknnRequest, FuzzyDatabase, SweepRequest
from repro.datasets import build_dataset
from repro.datasets.queries import generate_query_object


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Generate and index a dataset.
    # ------------------------------------------------------------------
    print("Building a synthetic dataset of 300 fuzzy objects ...")
    objects = build_dataset(
        kind="synthetic",
        n_objects=300,
        points_per_object=80,
        seed=7,
        space_size=12.0,  # dense space: supports overlap, as in the paper
    )
    db = FuzzyDatabase.build(objects)
    db.validate()
    print(f"  -> database with {len(db)} objects, R-tree height {db.tree.height}")

    # ------------------------------------------------------------------
    # 2. Ad-hoc kNN query (Definition 4).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(42)
    query = generate_query_object(rng, kind="synthetic", space_size=12.0, points_per_object=80)

    print("\nAKNN query: 5 nearest objects at probability threshold alpha = 0.5")
    db.reset_statistics()
    result = db.execute(AknnRequest(query, k=5, alpha=0.5, method="lb_lp_ub"))
    for neighbor in result.sorted_by_distance():
        label = (
            f"{neighbor.distance:.4f}"
            if neighbor.distance is not None
            else f"<= {neighbor.upper_bound:.4f} (confirmed without probing)"
        )
        print(f"  object {neighbor.object_id:>4}   alpha-distance {label}")
    print(
        f"  cost: {result.stats.object_accesses} object accesses, "
        f"{result.stats.node_accesses} node accesses, "
        f"{result.stats.elapsed_seconds * 1000:.1f} ms"
    )

    # Compare the optimisation levels on the same query.
    print("\nObject accesses per AKNN method (same query):")
    for method in ("basic", "lb", "lb_lp", "lb_lp_ub"):
        stats = db.execute(AknnRequest(query, k=5, alpha=0.5, method=method)).stats
        print(f"  {method:<9} {stats.object_accesses:>4} object accesses")

    # ------------------------------------------------------------------
    # 3. Range kNN query (Definition 5).
    # ------------------------------------------------------------------
    print("\nRKNN query: 3 nearest objects anywhere in alpha = [0.3, 0.7]")
    rknn = db.execute(
        SweepRequest(query, k=3, alpha_range=(0.3, 0.7), method="rss_icr")
    )
    for object_id in rknn.object_ids:
        print(f"  object {object_id:>4}   qualifying range {rknn.assignments[object_id]}")
    print(
        f"  cost: {rknn.stats.object_accesses} object accesses, "
        f"{rknn.stats.refinement_steps} refinement steps"
    )

    db.close()


if __name__ == "__main__":
    main()
