"""GIS scenario: k nearest fuzzy regions with indeterminate boundaries.

Fuzzy objects are a classic tool in GIS for phenomena without crisp borders —
wetlands, pollution plumes, flood-risk zones, urban heat islands.  A pixel in
the core of a wetland certainly belongs to it; pixels towards the surrounding
grassland belong to it only with decreasing confidence.

This example models a region of interest (a planned facility site, as a crisp
point) and a collection of fuzzy environmental zones, then asks:

* which k zones are nearest when only their *certain cores* are considered
  (high alpha), and
* which are nearest when their *possible extent* is considered (low alpha),
* and, via an RKNN query, at which confidence levels each zone enters the
  top-k at all — the complete sensitivity picture a planner would want.

Run with::

    python examples/gis_fuzzy_regions.py
"""

from __future__ import annotations

import numpy as np

from repro import AknnRequest, FuzzyDatabase, FuzzyObject, SweepRequest
from repro.datasets.cells import CellDatasetConfig, generate_cell_object

N_ZONES = 120
SPACE = 18.0  # kilometres; dense enough that zone extents matter
K = 4


def make_environmental_zones(rng: np.random.Generator) -> list:
    """Irregular fuzzy zones (wetlands / flood areas) scattered over the map."""
    config = CellDatasetConfig(
        n_objects=N_ZONES,
        points_per_object=150,
        space_size=SPACE,
        cell_extent=4.0,       # zones a few kilometres across
        irregularity=0.6,
        membership_noise=0.15,
        membership_decay=1.5,
        seed=31,
    )
    zones = []
    for zone_id in range(N_ZONES):
        center = rng.random(2) * SPACE
        zones.append(generate_cell_object(center, rng, config=config, object_id=zone_id))
    return zones


def main() -> None:
    rng = np.random.default_rng(31)
    print(f"Generating {N_ZONES} fuzzy environmental zones over a "
          f"{SPACE:.0f} x {SPACE:.0f} km map ...")
    zones = make_environmental_zones(rng)
    db = FuzzyDatabase.build(zones)

    site = FuzzyObject.single_point([SPACE / 2, SPACE / 2])
    print(f"Site of interest: ({SPACE / 2:.1f}, {SPACE / 2:.1f}) km\n")

    # ------------------------------------------------------------------
    # AKNN at two confidence levels.
    # ------------------------------------------------------------------
    for alpha, label in ((0.9, "certain core only"), (0.1, "possible extent")):
        result = db.execute(AknnRequest(site, k=K, alpha=alpha, method="lb_lp_ub"))
        print(f"{K} nearest zones at alpha = {alpha:.1f} ({label}):")
        for neighbor in result.sorted_by_distance():
            distance = (
                neighbor.distance if neighbor.distance is not None else neighbor.upper_bound
            )
            print(f"  zone {neighbor.object_id:>4}   distance {distance:6.2f} km")
        print()

    # ------------------------------------------------------------------
    # RKNN: the full sensitivity picture over alpha in [0.1, 0.9].
    # ------------------------------------------------------------------
    print("Qualifying confidence ranges (RKNN, alpha in [0.1, 0.9]):")
    rknn = db.execute(
        SweepRequest(site, k=K, alpha_range=(0.1, 0.9), method="rss_icr")
    )
    for zone_id in rknn.object_ids:
        print(f"  zone {zone_id:>4}: {rknn.assignments[zone_id]}")
    if len(rknn) > K:
        print(
            f"\n{len(rknn)} distinct zones are a top-{K} answer somewhere in the "
            f"range; a single-threshold query would have reported only {K} of "
            "them and hidden the rest."
        )
    else:
        print(
            f"\nThe same {K} zones stay nearest across the whole confidence range "
            "— the RKNN query certifies that the choice is insensitive to alpha."
        )
    db.close()


if __name__ == "__main__":
    main()
