"""Biomedical scenario: nearest-neighbour analysis of probabilistically segmented cells.

This is the application the paper motivates in its introduction: microscope
images are segmented automatically, each cell becomes a cloud of pixels with
membership probabilities (a *probabilistic mask*), and downstream analyses —
e.g. the nearest-neighbour distance distributions used in brain-aging and
Alzheimer's studies — need kNN queries that respect that uncertainty.

The script:

1. simulates a slide of segmented cells (irregular supports, noisy masks),
2. finds the nearest cells to a chosen cell at a *high* confidence threshold
   (only the clearly segmented cell bodies count) and at a *low* threshold
   (the fuzzy halos count too), showing how the answer changes, and
3. computes the nearest-neighbour distance distribution of the whole slide at
   both thresholds — the kind of statistic a stereological study would report.

Run with::

    python examples/biomedical_cells.py
"""

from __future__ import annotations

import statistics

import numpy as np

from repro import AknnRequest, FuzzyDatabase
from repro.config import RuntimeConfig
from repro.datasets.cells import CellDatasetConfig, generate_cell_dataset

HIGH_CONFIDENCE = 0.8  # only the clearly identified cell body
LOW_CONFIDENCE = 0.2   # include the fuzzy halo around each cell


def build_slide(n_cells: int = 200) -> FuzzyDatabase:
    """Simulate one microscope slide and index its cells."""
    config = CellDatasetConfig(
        n_objects=n_cells,
        points_per_object=120,
        space_size=10.0,       # a dense field of view
        irregularity=0.5,
        membership_noise=0.3,
        seed=2024,
    )
    cells = generate_cell_dataset(config)
    return FuzzyDatabase.build(cells, config=RuntimeConfig(rtree_max_entries=16))


def nearest_cells_at_two_confidence_levels(db: FuzzyDatabase) -> None:
    """Show how the 5 nearest cells change with the confidence threshold."""
    query_cell = db.get_object(0)
    print(f"Query: cell 0 ({query_cell.size} pixels, "
          f"{query_cell.distinct_memberships().size} distinct probabilities)")

    for alpha, label in ((HIGH_CONFIDENCE, "cell bodies only"), (LOW_CONFIDENCE, "including halos")):
        result = db.execute(AknnRequest(query_cell, k=6, alpha=alpha, method="lb_lp_ub"))
        # The query object itself is stored in the database, so it appears at
        # distance zero; drop it from the report.
        neighbors = [n for n in result.sorted_by_distance() if n.object_id != 0][:5]
        ids = ", ".join(str(n.object_id) for n in neighbors)
        print(f"  alpha = {alpha:.1f} ({label:>18}): nearest cells -> {ids}")
    print()


def nn_distance_distribution(db: FuzzyDatabase, alpha: float, sample: int = 40) -> list:
    """Nearest-neighbour distance of a sample of cells at one threshold."""
    distances = []
    for object_id in db.object_ids()[:sample]:
        cell = db.get_object(object_id)
        result = db.execute(AknnRequest(cell, k=2, alpha=alpha, method="lb_lp_ub"))
        # k=2 because the nearest neighbour of a stored cell is itself.
        others = [n for n in result.sorted_by_distance() if n.object_id != object_id]
        if others:
            neighbor = others[0]
            distance = (
                neighbor.distance
                if neighbor.distance is not None
                else neighbor.upper_bound
            )
            distances.append(distance)
    return distances


def main() -> None:
    print("Simulating a slide of probabilistically segmented cells ...")
    db = build_slide()
    print(f"  -> {len(db)} cells indexed\n")

    nearest_cells_at_two_confidence_levels(db)

    print("Nearest-neighbour distance distribution (40 sampled cells):")
    for alpha in (HIGH_CONFIDENCE, LOW_CONFIDENCE):
        distances = nn_distance_distribution(db, alpha)
        print(
            f"  alpha = {alpha:.1f}: mean {statistics.mean(distances):.4f}, "
            f"median {statistics.median(distances):.4f}, "
            f"min {min(distances):.4f}, max {max(distances):.4f}"
        )
    print(
        "\nLower thresholds include the uncertain halo of every cell, so the\n"
        "distances shrink — exactly the sensitivity a fixed-threshold pipeline\n"
        "would hide and an AKNN query exposes as an explicit parameter."
    )
    db.close()


if __name__ == "__main__":
    main()
