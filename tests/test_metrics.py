"""Unit tests for counters and timers."""

import time

import pytest

from repro.metrics.counters import MetricsCollector
from repro.metrics.timer import Timer


class TestMetricsCollector:
    def test_increment_and_get(self):
        metrics = MetricsCollector()
        metrics.increment("x")
        metrics.increment("x", 4)
        assert metrics.get("x") == 5
        assert metrics.get("unknown") == 0

    def test_reset(self):
        metrics = MetricsCollector()
        metrics.increment(MetricsCollector.NODE_ACCESSES)
        metrics.reset()
        assert metrics.get(MetricsCollector.NODE_ACCESSES) == 0

    def test_as_dict_is_copy(self):
        metrics = MetricsCollector()
        metrics.increment("a", 2)
        snapshot = metrics.as_dict()
        snapshot["a"] = 100
        assert metrics.get("a") == 2

    def test_merge(self):
        a = MetricsCollector()
        b = MetricsCollector()
        a.increment("x", 1)
        b.increment("x", 2)
        b.increment("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_iter_and_repr(self):
        metrics = MetricsCollector()
        metrics.increment("a")
        assert list(metrics) == ["a"]
        assert "a=1" in repr(metrics)


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_accumulates_over_multiple_runs(self):
        timer = Timer()
        timer.start()
        time.sleep(0.005)
        first = timer.stop()
        timer.start()
        time.sleep(0.005)
        second = timer.stop()
        assert second > first

    def test_reset(self):
        timer = Timer()
        timer.start()
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0
