"""Property-based tests (hypothesis) for the fuzzy object model and bounds.

These check the invariants of DESIGN.md on randomly generated fuzzy objects:

* alpha-cut nesting and membership in the support,
* monotonicity and symmetry of the alpha-distance,
* the sandwich property of the MBR-based bounds,
* conservativeness of the fitted lines / approximated alpha-cut MBRs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzy.alpha_distance import alpha_distance, distance_profile
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.summary import build_summary
from repro.geometry.mbr import max_dist, min_dist

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def fuzzy_objects(draw, max_points=24, dimensions=2):
    """Strategy producing valid fuzzy objects with a non-empty kernel."""
    n_points = draw(st.integers(min_value=1, max_value=max_points))
    coords = draw(
        st.lists(
            st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False),
            min_size=n_points * dimensions,
            max_size=n_points * dimensions,
        )
    )
    memberships = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=n_points,
            max_size=n_points,
        )
    )
    points = np.asarray(coords, dtype=float).reshape(n_points, dimensions)
    mus = np.asarray(memberships, dtype=float)
    mus[draw(st.integers(min_value=0, max_value=n_points - 1))] = 1.0
    return FuzzyObject(points, mus, object_id=draw(st.integers(min_value=0, max_value=10**6)))


alphas = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


class TestAlphaCutProperties:
    @given(obj=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_cut_is_subset_of_support(self, obj, alpha):
        cut = {tuple(p) for p in obj.alpha_cut(alpha)}
        support = {tuple(p) for p in obj.support()}
        assert cut <= support

    @given(obj=fuzzy_objects(), a=alphas, b=alphas)
    @settings(**SETTINGS)
    def test_cuts_are_nested(self, obj, a, b):
        low, high = min(a, b), max(a, b)
        low_cut = {tuple(p) for p in obj.alpha_cut(low)}
        high_cut = {tuple(p) for p in obj.alpha_cut(high)}
        assert high_cut <= low_cut

    @given(obj=fuzzy_objects())
    @settings(**SETTINGS)
    def test_kernel_inside_every_cut(self, obj):
        kernel = {tuple(p) for p in obj.kernel()}
        for alpha in (0.1, 0.5, 0.99):
            cut = {tuple(p) for p in obj.alpha_cut(alpha)}
            assert kernel <= cut

    @given(obj=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_alpha_mbr_contained_in_support_mbr(self, obj, alpha):
        assert obj.support_mbr().contains(obj.alpha_mbr(alpha))


class TestAlphaDistanceProperties:
    @given(a=fuzzy_objects(), b=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_symmetry_and_nonnegativity(self, a, b, alpha):
        d_ab = alpha_distance(a, b, alpha)
        d_ba = alpha_distance(b, a, alpha)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(d_ba)

    @given(a=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_identity(self, a, alpha):
        assert alpha_distance(a, a, alpha) == 0.0

    @given(a=fuzzy_objects(), b=fuzzy_objects(), x=alphas, y=alphas)
    @settings(**SETTINGS)
    def test_monotone_in_alpha(self, a, b, x, y):
        low, high = min(x, y), max(x, y)
        assert alpha_distance(a, b, low) <= alpha_distance(a, b, high) + 1e-9

    @given(a=fuzzy_objects(max_points=12), b=fuzzy_objects(max_points=12), alpha=alphas)
    @settings(**SETTINGS)
    def test_profile_agrees_with_direct_evaluation(self, a, b, alpha):
        profile = distance_profile(a, b)
        assert profile.value(alpha) == pytest.approx(alpha_distance(a, b, alpha))


class TestBoundProperties:
    @given(a=fuzzy_objects(), b=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_mbr_bounds_sandwich_distance(self, a, b, alpha):
        exact = alpha_distance(a, b, alpha)
        mbr_a = a.alpha_mbr(alpha)
        mbr_b = b.alpha_mbr(alpha)
        assert min_dist(mbr_a, mbr_b) <= exact + 1e-9
        assert exact <= max_dist(mbr_a, mbr_b) + 1e-9

    @given(obj=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_approx_alpha_mbr_is_conservative(self, obj, alpha):
        summary = build_summary(obj)
        approx = summary.approx_alpha_mbr(alpha)
        true = obj.alpha_mbr(alpha)
        assert np.all(approx.lower <= true.lower + 1e-7)
        assert np.all(approx.upper >= true.upper - 1e-7)

    @given(a=fuzzy_objects(), q=fuzzy_objects(), alpha=alphas)
    @settings(**SETTINGS)
    def test_prepared_query_bounds(self, a, q, alpha):
        from repro.core.query import PreparedQuery

        prepared = PreparedQuery(q, alpha)
        summary = build_summary(a)
        exact = alpha_distance(a, q, alpha)
        assert prepared.simple_lower_bound(summary) <= exact + 1e-9
        assert prepared.improved_lower_bound(summary) <= exact + 1e-9
        assert prepared.representative_upper_bound(summary) >= exact - 1e-9
        assert prepared.maxdist_upper_bound(summary) >= exact - 1e-9


class TestSerializationProperties:
    @given(obj=fuzzy_objects())
    @settings(**SETTINGS)
    def test_codec_roundtrip(self, obj):
        from repro.storage.serialization import decode_object, encode_object

        clone = decode_object(encode_object(obj))
        np.testing.assert_allclose(clone.points, obj.points)
        np.testing.assert_allclose(clone.memberships, obj.memberships)
        assert clone.object_id == obj.object_id
