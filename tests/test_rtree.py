"""Unit tests for the R-tree (insertion, bulk loading, range queries, validation)."""

import numpy as np
import pytest

from repro.exceptions import IndexError_
from repro.fuzzy.summary import build_summary
from repro.geometry.mbr import MBR
from repro.index.entry import InternalEntry, LeafEntry
from repro.index.node import RTreeNode
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector
from tests.conftest import make_fuzzy_object


def make_summaries(rng, count, spread=20.0):
    summaries = []
    for i in range(count):
        obj = make_fuzzy_object(rng, n_points=10, center=rng.random(2) * spread, object_id=i)
        summaries.append(build_summary(obj))
    return summaries


def brute_force_range(summaries, region):
    return sorted(s.object_id for s in summaries if s.support_mbr.intersects(region))


class TestNodeAndEntries:
    def test_leaf_entry_exposes_summary_fields(self, rng):
        summary = make_summaries(rng, 1)[0]
        entry = LeafEntry(summary)
        assert entry.object_id == summary.object_id
        assert entry.mbr == summary.support_mbr
        assert "LeafEntry" in repr(entry)

    def test_leaf_node_rejects_internal_entries(self, rng):
        node = RTreeNode(level=0)
        child = RTreeNode(level=0)
        with pytest.raises(IndexError_):
            node.add(InternalEntry(MBR([0, 0], [1, 1]), child))

    def test_internal_node_rejects_leaf_entries(self, rng):
        summary = make_summaries(rng, 1)[0]
        node = RTreeNode(level=1)
        with pytest.raises(IndexError_):
            node.add(LeafEntry(summary))

    def test_compute_mbr_of_empty_node_raises(self):
        with pytest.raises(IndexError_):
            RTreeNode(level=0).compute_mbr()

    def test_internal_entry_refresh(self, rng):
        summary = make_summaries(rng, 1)[0]
        child = RTreeNode(level=0, entries=[LeafEntry(summary)])
        entry = InternalEntry(MBR([0, 0], [0.1, 0.1]), child)
        entry.refresh_mbr()
        assert entry.mbr == summary.support_mbr


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=3)
        with pytest.raises(IndexError_):
            RTree(min_fill=0.8)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert list(tree.leaf_entries()) == []
        assert tree.range_query(MBR([0, 0], [1, 1])) == []

    def test_bulk_load_small(self, rng):
        summaries = make_summaries(rng, 3)
        tree = RTree.bulk_load(summaries, max_entries=4)
        assert len(tree) == 3
        tree.validate()

    def test_bulk_load_multi_level(self, rng):
        summaries = make_summaries(rng, 120)
        tree = RTree.bulk_load(summaries, max_entries=8)
        assert len(tree) == 120
        assert tree.height >= 2
        tree.validate()
        assert {e.object_id for e in tree.leaf_entries()} == set(range(120))

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_insert_one_by_one_with_splits(self, rng):
        summaries = make_summaries(rng, 60)
        tree = RTree(max_entries=5)
        for summary in summaries:
            tree.insert(summary)
        assert len(tree) == 60
        assert tree.height >= 2
        tree.validate()
        assert {e.object_id for e in tree.leaf_entries()} == set(range(60))

    def test_node_count_positive(self, rng):
        tree = RTree.bulk_load(make_summaries(rng, 40), max_entries=6)
        assert tree.node_count() >= len(tree) / 6


class TestRangeQuery:
    @pytest.mark.parametrize("builder", ["bulk", "insert"])
    def test_matches_brute_force(self, rng, builder):
        summaries = make_summaries(rng, 80)
        if builder == "bulk":
            tree = RTree.bulk_load(summaries, max_entries=8)
        else:
            tree = RTree(max_entries=8)
            for summary in summaries:
                tree.insert(summary)
        for _ in range(15):
            low = rng.random(2) * 15
            high = low + rng.random(2) * 6
            region = MBR(low, high)
            found = sorted(e.object_id for e in tree.range_query(region))
            assert found == brute_force_range(summaries, region)

    def test_counts_node_accesses(self, rng):
        summaries = make_summaries(rng, 50)
        tree = RTree.bulk_load(summaries, max_entries=8)
        metrics = MetricsCollector()
        tree.range_query(MBR([0, 0], [30, 30]), metrics)
        assert metrics.get(MetricsCollector.NODE_ACCESSES) >= 1

    def test_whole_space_returns_everything(self, rng):
        summaries = make_summaries(rng, 30)
        tree = RTree.bulk_load(summaries, max_entries=8)
        found = tree.range_query(MBR([-100, -100], [100, 100]))
        assert len(found) == 30


class TestValidation:
    def test_validate_detects_size_mismatch(self, rng):
        tree = RTree.bulk_load(make_summaries(rng, 10), max_entries=8)
        tree._size = 11
        with pytest.raises(IndexError_):
            tree.validate()

    def test_validate_detects_bad_child_mbr(self, rng):
        tree = RTree.bulk_load(make_summaries(rng, 60), max_entries=6)
        # Corrupt the first internal entry's MBR.
        assert not tree.root.is_leaf
        tree.root.entries[0].mbr = MBR([0, 0], [1e-6, 1e-6])
        with pytest.raises(IndexError_):
            tree.validate()

    def test_validate_detects_duplicate_object(self, rng):
        summaries = make_summaries(rng, 5)
        summaries.append(summaries[0])
        tree = RTree.bulk_load(summaries, max_entries=8)
        with pytest.raises(IndexError_):
            tree.validate()
