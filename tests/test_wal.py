"""Unit tests for the durability substrate.

Covers the write-ahead log (record round-trips, torn-tail self-repair, the
repairable-vs-fatal corruption distinction), the snapshot manifest cycle, and
the STR bulk-load / deferred-compaction helpers the recovery path is built
from.  End-to-end crash recovery lives in ``test_durability.py``.
"""

import struct

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.exceptions import StorageCorruptionError
from repro.fuzzy.summary import build_summary
from repro.index.bulk import CompactionManager, bulk_load_tree
from repro.index.rtree import RTree
from repro.metrics.counters import MetricsCollector
from repro.storage.snapshot import (
    MANIFEST_FILE,
    Manifest,
    SnapshotManager,
    read_manifest,
    write_manifest,
)
from repro.storage.wal import (
    OP_DELETE,
    OP_INSERT,
    WAL_MAGIC,
    WriteAheadLog,
)

from tests.conftest import make_fuzzy_object


HEADER_SIZE = struct.calcsize("<4sI")


class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append_insert(7, b"payload-7")
        wal.append_delete(3)
        wal.append_insert(8, b"payload-8")
        records = list(wal.replay())
        assert [(r.op, r.object_id) for r in records] == [
            (OP_INSERT, 7),
            (OP_DELETE, 3),
            (OP_INSERT, 8),
        ]
        assert records[0].blob == b"payload-7"
        assert records[1].blob == b""
        assert [r.seq for r in records] == [0, 1, 2]
        wal.close()

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_insert(1, b"a")
            wal.append_insert(2, b"b")
        with WriteAheadLog(path) as wal:
            assert wal.next_seq == 2
            wal.append_delete(1)
            assert [(r.op, r.seq) for r in wal.replay()] == [
                (OP_INSERT, 0),
                (OP_INSERT, 1),
                (OP_DELETE, 2),
            ]

    @pytest.mark.parametrize("garbage", [b"\x01", b"\x00" * 7, b"\xff" * 64])
    def test_torn_tail_is_truncated_and_counted(self, tmp_path, garbage):
        path = tmp_path / "wal.log"
        metrics = MetricsCollector()
        with WriteAheadLog(path, metrics=metrics) as wal:
            wal.append_insert(1, b"a")
            wal.append_insert(2, b"b")
        with open(path, "ab") as f:
            f.write(garbage)
        with WriteAheadLog(path, metrics=metrics) as wal:
            records = list(wal.replay())
            assert [r.object_id for r in records] == [1, 2]
            # The repaired log keeps accepting appends.
            wal.append_insert(3, b"c")
            assert [r.object_id for r in wal.replay()] == [1, 2, 3]
        assert metrics.get(MetricsCollector.WAL_TORN_TAILS) >= 1

    def test_every_cut_point_recovers_a_record_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(6):
                wal.append_insert(i, bytes([i]) * (5 + i))
        data = path.read_bytes()
        rng = np.random.default_rng(11)
        cuts = sorted(set(rng.integers(HEADER_SIZE, len(data), size=20).tolist()))
        for cut in cuts:
            short = tmp_path / f"cut-{cut}.log"
            short.write_bytes(data[:cut])
            with WriteAheadLog(short) as wal:
                records = list(wal.replay())
            # Always a strict prefix, never a reordering or an invention.
            assert [r.object_id for r in records] == list(range(len(records)))
            assert all(r.blob == bytes([r.object_id]) * (5 + r.object_id) for r in records)

    def test_corruption_inside_committed_prefix_is_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_insert(1, b"aaaaaaaa")
            wal.append_insert(2, b"bbbbbbbb")
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE + 10] ^= 0xFF  # flip a byte in the FIRST record
        path.write_bytes(bytes(data))
        with pytest.raises(StorageCorruptionError) as excinfo:
            with WriteAheadLog(path) as wal:
                list(wal.replay())
        assert excinfo.value.path is not None
        assert excinfo.value.offset is not None

    def test_bad_magic_is_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(StorageCorruptionError):
            WriteAheadLog(path)

    def test_truncate_resets_to_bare_header(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_insert(1, b"a")
            wal.truncate()
            assert list(wal.replay()) == []
            wal.append_insert(2, b"b")
            assert [r.object_id for r in wal.replay()] == [2]
        assert path.read_bytes()[:4] == WAL_MAGIC

    def test_sync_policy_is_validated(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", sync="wrong")

    def test_fault_hook_fires_before_the_append(self, tmp_path):
        class Boom(Exception):
            pass

        calls = []

        def hook():
            calls.append(1)
            if len(calls) == 2:
                raise Boom()

        with WriteAheadLog(tmp_path / "wal.log", fault_hook=hook) as wal:
            wal.append_insert(1, b"a")
            with pytest.raises(Boom):
                wal.append_insert(2, b"b")
            # The failed append wrote nothing: the log holds only record 1.
            assert [r.object_id for r in wal.replay()] == [1]


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = Manifest(kind="sharded", n_shards=4, last_seq=17, snapshots=2)
        write_manifest(tmp_path, manifest)
        loaded = read_manifest(tmp_path)
        assert loaded.kind == "sharded"
        assert loaded.n_shards == 4
        assert loaded.last_seq == 17
        assert loaded.snapshots == 2

    def test_missing_manifest_is_corruption(self, tmp_path):
        with pytest.raises(StorageCorruptionError):
            read_manifest(tmp_path)

    def test_unreadable_manifest_is_corruption(self, tmp_path):
        (tmp_path / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(StorageCorruptionError):
            read_manifest(tmp_path)


class TestSnapshotManager:
    def test_snapshot_every_n_appends(self, tmp_path):
        saves = []
        wal = WriteAheadLog(tmp_path / "wal.log")
        manager = SnapshotManager(
            directory=tmp_path,
            wal=wal,
            save=lambda: saves.append(wal.appends),
            every=3,
        )
        fired = []
        for i in range(7):
            wal.append_insert(i, b"x")
            fired.append(manager.record_append())
        assert fired.count(True) == 2  # at appends 3 and 6
        assert len(saves) == 2
        # Each snapshot truncated the log; only the post-snapshot tail remains.
        assert len(list(wal.replay())) == 1
        assert read_manifest(tmp_path).snapshots == 2
        wal.close()

    def test_snapshot_records_last_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        manager = SnapshotManager(directory=tmp_path, wal=wal, save=lambda: None)
        wal.append_insert(1, b"a")
        wal.append_insert(2, b"b")
        manager.snapshot()
        assert read_manifest(tmp_path).last_seq == 2
        assert list(wal.replay()) == []
        wal.close()


class TestBulkLoadAndCompaction:
    def _summaries(self, rng, n):
        return {
            i: build_summary(make_fuzzy_object(rng, object_id=i), rng=rng)
            for i in range(n)
        }

    def test_bulk_load_counts_and_validates(self, rng):
        metrics = MetricsCollector()
        summaries = self._summaries(rng, 40)
        tree = bulk_load_tree(summaries.values(), metrics=metrics)
        tree.validate()
        assert len(tree) == 40
        assert metrics.get(MetricsCollector.BULK_LOADS) == 1

    def test_delete_lazy_keeps_the_tree_valid(self, rng):
        summaries = self._summaries(rng, 60)
        tree = bulk_load_tree(summaries.values(), config=RuntimeConfig())
        order = list(summaries)
        rng.shuffle(order)
        for count, object_id in enumerate(order[:45], start=1):
            tree.delete_lazy(object_id, mbr=summaries[object_id].support_mbr)
            tree.validate()
            assert len(tree) == 60 - count
        remaining = {entry.object_id for entry in tree.leaf_entries()}
        assert remaining == set(order[45:])

    def test_compaction_triggers_at_debt_ratio(self, rng):
        metrics = MetricsCollector()
        summaries = self._summaries(rng, 30)
        tree = bulk_load_tree(summaries.values(), metrics=metrics)
        manager = CompactionManager(debt_ratio=0.5, metrics=metrics)
        deleted = list(summaries)[:12]
        for object_id in deleted:
            tree.delete_lazy(object_id, mbr=summaries[object_id].support_mbr)
            manager.note_lazy_delete()
            del summaries[object_id]
        assert not manager.due(30)  # 12 < 0.5 * 30: not due yet at that size
        # 12 lazy deletes vs 18 live entries crosses the 0.5 ratio.
        assert manager.due(len(tree))
        rebuilt = manager.maybe_compact(tree, summaries.values())
        assert rebuilt is not None
        rebuilt.validate()
        assert len(rebuilt) == 18
        assert manager.debt == 0
        assert metrics.get(MetricsCollector.COMPACTIONS) == 1
        assert metrics.get(MetricsCollector.LAZY_DELETES) == 12

    def test_adopt_swaps_contents_in_place(self, rng):
        summaries = self._summaries(rng, 20)
        tree = bulk_load_tree(summaries.values())
        alias = tree  # searchers hold references like this
        rebuilt = RTree.bulk_load(list(summaries.values())[:5])
        mutations = tree.mutations
        tree.adopt(rebuilt)
        assert len(alias) == 5
        assert alias.mutations > mutations
