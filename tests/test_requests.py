"""The unified query surface: typed requests, mixed-type batch plans, shims.

Covers the acceptance criteria of the request-API redesign:

* ``execute`` / ``execute_batch`` return results identical to the legacy
  per-type methods on every layer (single database, sharded database with
  live churn, coalescing service);
* a mixed-type submission shares traversals within each ``bucket_key()``
  group (verified through the ``plan_groups`` / ``plan_requests`` /
  ``batch_queries`` counters);
* the legacy per-type methods warn with :class:`LegacyQueryAPIWarning`, and
  no in-repo caller (CLI included) goes through them;
* the planner registry accepts new request families in one place;
* the satellite changes: lazy ``PreparedQuery.query_samples`` and the
  ``DistanceProfileStore`` memo shared between the sweep and reverse engines.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.core.query import PreparedQuery
from repro.core.requests import (
    AknnMethod,
    AknnRequest,
    LegacyQueryAPIWarning,
    QueryEngine,
    QueryRequest,
    RangeRequest,
    ReverseMethod,
    ReverseRequest,
    SweepMethod,
    SweepRequest,
    execute_plan,
    register_planner,
    registered_request_types,
)
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import DistanceProfileStore
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.profile import DistanceProfile
from repro.service.query_service import QueryService
from repro.service.sharded import ShardedDatabase
from tests.conftest import (
    assert_same_assignments,
    make_fuzzy_object,
    sorted_exact_distances,
)


def _legacy(call, *args, **kwargs):
    """Run a deprecated shim with its warning silenced (parity baselines)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", LegacyQueryAPIWarning)
        return call(*args, **kwargs)


# ----------------------------------------------------------------------
# Request dataclasses
# ----------------------------------------------------------------------
class TestRequestValidation:
    def query(self):
        return make_fuzzy_object(np.random.default_rng(0))

    def test_parameters_are_normalised(self):
        request = AknnRequest(self.query(), k=np.int64(7), alpha=np.float64(0.5))
        assert isinstance(request.k, int) and request.k == 7
        assert isinstance(request.alpha, float)
        assert request.method is AknnMethod.LB_LP_UB

    def test_method_strings_coerce_to_enums(self):
        query = self.query()
        assert AknnRequest(query, k=1, method="basic").method is AknnMethod.BASIC
        assert (
            ReverseRequest(query, k=1, method="pruned").method
            is ReverseMethod.PRUNED
        )
        assert SweepRequest(query, k=1, method="rss").method is SweepMethod.RSS

    def test_invalid_parameters_raise(self):
        query = self.query()
        with pytest.raises(InvalidQueryError):
            AknnRequest(query, k=0, alpha=0.5)
        with pytest.raises(InvalidQueryError):
            AknnRequest(query, k=1, alpha=1.5)
        with pytest.raises(InvalidQueryError):
            AknnRequest(query, k=1, alpha=0.5, method="no_such_method")
        with pytest.raises(InvalidQueryError):
            RangeRequest(query, alpha=0.5, radius=-1.0)
        with pytest.raises(InvalidQueryError):
            RangeRequest(query, alpha=0.5, radius=float("nan"))
        with pytest.raises(InvalidQueryError):
            SweepRequest(query, k=2, alpha_range=(0.7, 0.3))
        with pytest.raises(InvalidQueryError):
            ReverseRequest(query, k=-1, alpha=0.5)

    def test_bucket_keys_group_compatible_requests(self):
        q1, q2 = self.query(), self.query()
        assert (
            AknnRequest(q1, k=5, alpha=0.5).bucket_key()
            == AknnRequest(q2, k=5, alpha=0.5, method="lb_lp_ub").bucket_key()
        )
        assert (
            AknnRequest(q1, k=5, alpha=0.5).bucket_key()
            != AknnRequest(q1, k=5, alpha=0.6).bucket_key()
        )
        # The method is part of the key: a per-request override lands in its
        # own bucket instead of silently riding the default engine.
        assert (
            ReverseRequest(q1, k=3, alpha=0.5).bucket_key()
            != ReverseRequest(q1, k=3, alpha=0.5, method="linear").bucket_key()
        )
        # Keys never contain the query object itself.
        assert all(
            not isinstance(part, FuzzyObject)
            for part in SweepRequest(q1, k=2, alpha_range=(0.4, 0.6)).bucket_key()
        )

    def test_requests_are_frozen(self):
        request = AknnRequest(self.query(), k=5, alpha=0.5)
        with pytest.raises(AttributeError):
            request.k = 9

    def test_engines_satisfy_the_protocol(self, dense_database):
        assert isinstance(dense_database, QueryEngine)


# ----------------------------------------------------------------------
# Mixed-type plans on the single database
# ----------------------------------------------------------------------
class TestMixedBatchSingleDatabase:
    def test_mixed_submission_matches_per_type_paths(
        self, dense_database, dense_queries
    ):
        db = dense_database
        q0, q1, q2 = dense_queries
        requests = [
            AknnRequest(q0, k=5, alpha=0.5),
            ReverseRequest(q1, k=4, alpha=0.5),
            AknnRequest(q1, k=5, alpha=0.5),        # same bucket as request 0
            RangeRequest(q2, alpha=0.5, radius=2.0),
            SweepRequest(q0, k=3, alpha_range=(0.4, 0.6)),
            AknnRequest(q2, k=3, alpha=0.7),        # its own bucket
            ReverseRequest(q2, k=4, alpha=0.5, method="pruned"),
        ]
        results = db.execute_batch(requests)

        # AKNN: compare exact-distance multisets (robust to k-th-rank ties
        # between the batch and single-query engines).
        for index, query in ((0, q0), (2, q1), (5, q2)):
            request = requests[index]
            legacy = _legacy(
                db.aknn, query, k=request.k, alpha=request.alpha,
                method=request.method.value,
            )
            assert sorted_exact_distances(
                db, results[index], query, request.alpha
            ) == pytest.approx(
                sorted_exact_distances(db, legacy, query, request.alpha)
            )

        reverse_legacy = _legacy(
            db.reverse_aknn, q1, k=4, alpha=0.5, method="batch"
        )
        assert results[1].object_ids == reverse_legacy.object_ids
        assert results[1].distances == pytest.approx(reverse_legacy.distances)

        range_legacy = _legacy(db.range_search, q2, alpha=0.5, radius=2.0)
        assert results[3].object_ids == range_legacy.object_ids

        sweep_legacy = _legacy(db.rknn, q0, k=3, alpha_range=(0.4, 0.6))
        assert_same_assignments(
            results[4].assignments, sweep_legacy.assignments
        )

        pruned_legacy = _legacy(
            db.reverse_aknn, q2, k=4, alpha=0.5, method="pruned"
        )
        assert results[6].object_ids == pruned_legacy.object_ids
        assert results[6].method == "pruned"

    def test_single_execute_matches_single_query_path_exactly(
        self, dense_database, dense_queries
    ):
        db = dense_database
        query = dense_queries[0]
        result = db.execute(AknnRequest(query, k=6, alpha=0.5))
        legacy = _legacy(db.aknn, query, k=6, alpha=0.5)
        # A bucket of one runs the very same single-query searcher, so the
        # neighbour lists are identical, not merely tie-equivalent.
        assert [n.object_id for n in result.neighbors] == [
            n.object_id for n in legacy.neighbors
        ]

    def test_bucket_sharing_is_visible_in_the_counters(
        self, dense_database, dense_queries
    ):
        db = dense_database
        db.metrics.reset()
        requests = [
            AknnRequest(query, k=4, alpha=0.5) for query in dense_queries
        ] + [
            ReverseRequest(dense_queries[0], k=3, alpha=0.5),
            RangeRequest(dense_queries[1], alpha=0.5, radius=1.5),
        ]
        db.execute_batch(requests)
        counters = db.metrics.as_dict()
        # 5 requests collapsed into 3 per-type/per-bucket sub-batches, and
        # the whole AKNN bucket went through the shared batch engine.
        assert counters["plan_requests"] == 5
        assert counters["plan_groups"] == 3
        assert counters["batch_queries"] == len(dense_queries)
        assert counters["reverse_queries"] == 1

    def test_empty_submission(self, dense_database):
        assert dense_database.execute_batch([]) == []

    def test_non_request_input_raises(self, dense_database, dense_queries):
        with pytest.raises(InvalidQueryError):
            dense_database.execute_batch([dense_queries[0]])


# ----------------------------------------------------------------------
# Planner registry
# ----------------------------------------------------------------------
class TestPlannerRegistry:
    def test_new_request_family_registers_in_one_place(self, dense_database):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class CountRequest(QueryRequest):
            def bucket_key(self):
                return ("count",)

        calls = []

        def plan_count(engine, bucket, rng):
            calls.append(len(bucket))
            return [len(engine.store) for _ in bucket]

        register_planner(CountRequest, plan_count)
        try:
            query = make_fuzzy_object(np.random.default_rng(1))
            results = dense_database.execute_batch(
                [CountRequest(query), CountRequest(query)]
            )
            assert results == [len(dense_database), len(dense_database)]
            assert calls == [2]  # one shared bucket, not two
        finally:
            from repro.core.requests import _PLANNERS

            _PLANNERS.pop(CountRequest, None)

    def test_unregistered_request_type_raises(self, dense_database):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class OrphanRequest(QueryRequest):
            def bucket_key(self):
                return ("orphan",)

        query = make_fuzzy_object(np.random.default_rng(2))
        assert OrphanRequest not in registered_request_types()
        with pytest.raises(InvalidQueryError):
            execute_plan(dense_database, [OrphanRequest(query)])

    def test_planner_result_arity_is_checked(self, dense_database):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ShortRequest(QueryRequest):
            def bucket_key(self):
                return ("short",)

        register_planner(ShortRequest, lambda engine, bucket, rng: [])
        try:
            query = make_fuzzy_object(np.random.default_rng(3))
            with pytest.raises(InvalidQueryError):
                dense_database.execute(ShortRequest(query))
        finally:
            from repro.core.requests import _PLANNERS

            _PLANNERS.pop(ShortRequest, None)


# ----------------------------------------------------------------------
# Sharded database: mixed plans under live churn
# ----------------------------------------------------------------------
class TestShardedMixedBatch:
    @pytest.mark.parametrize("placement", ["hash", "space"])
    def test_mixed_batch_parity_under_churn(self, placement):
        rng = np.random.default_rng(77)
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(30)]
        config = RuntimeConfig(rtree_max_entries=8)
        sharded = ShardedDatabase.build(
            objects, n_shards=3, placement=placement, config=config
        )

        # Live churn: a few inserts and deletes before the mixed submission.
        for i in range(6):
            sharded.insert(make_fuzzy_object(rng, object_id=100 + i))
        for object_id in (2, 7, 102):
            sharded.delete(object_id)

        # Reference: an unsharded database over the surviving objects.
        survivors = [
            sharded.get_object(object_id) for object_id in sharded.object_ids()
        ]
        single = FuzzyDatabase.build(survivors, config=config)

        queries = [make_fuzzy_object(rng, center=[5.0, 5.0]) for _ in range(3)]
        requests = [
            AknnRequest(queries[0], k=5, alpha=0.5),
            AknnRequest(queries[1], k=5, alpha=0.5),
            ReverseRequest(queries[2], k=4, alpha=0.5),
            RangeRequest(queries[0], alpha=0.5, radius=3.0),
            SweepRequest(queries[1], k=3, alpha_range=(0.4, 0.6)),
        ]
        sharded_results = sharded.execute_batch(requests)
        single_results = single.execute_batch(requests)

        for index in (0, 1):
            assert sorted_exact_distances(
                single, sharded_results[index], requests[index].query, 0.5
            ) == pytest.approx(
                sorted_exact_distances(
                    single, single_results[index], requests[index].query, 0.5
                )
            )
        assert sharded_results[2].object_ids == single_results[2].object_ids
        assert sharded_results[3].object_ids == single_results[3].object_ids
        assert_same_assignments(
            sharded_results[4].assignments, single_results[4].assignments
        )
        sharded.close()
        single.close()


# ----------------------------------------------------------------------
# Query service: one generic coalescer over bucket keys
# ----------------------------------------------------------------------
class TestServiceMixedCoalescing:
    def _build(self, n_objects=24, n_shards=2):
        rng = np.random.default_rng(11)
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(n_objects)]
        return ShardedDatabase.build(
            objects, n_shards=n_shards, config=RuntimeConfig(rtree_max_entries=8)
        )

    def test_mixed_submission_coalesces_and_matches_direct_execution(self):
        database = self._build()
        rng = np.random.default_rng(5)
        queries = [make_fuzzy_object(rng, center=[5.0, 5.0]) for _ in range(4)]
        requests = (
            [AknnRequest(query, k=4, alpha=0.5) for query in queries]
            + [ReverseRequest(query, k=3, alpha=0.5) for query in queries[:2]]
            + [RangeRequest(queries[0], alpha=0.5, radius=3.0)]
        )
        direct = database.execute_batch(requests)
        database.metrics.reset()
        with QueryService(database, window_ms=60.0, max_batch=64) as service:
            results = service.execute_batch(requests)
            stats = service.stats()

        for got, expected, request in zip(results, direct, requests):
            if isinstance(request, AknnRequest):
                assert sorted(got.object_ids) == sorted(expected.object_ids)
            else:
                assert got.object_ids == expected.object_ids
        # 7 requests flushed as 3 buckets (aknn / reverse / range): the
        # coalescer grouped them by bucket_key and each bucket shared its
        # engine pass, visible in both service and planner counters.
        assert stats.requests_completed == len(requests)
        assert stats.batches_flushed == 3
        counters = database.metrics.as_dict()
        assert counters["plan_groups"] == 3
        assert counters["plan_requests"] == len(requests)
        assert counters["batch_queries"] == 4
        database.close()

    def test_per_request_method_override_gets_its_own_bucket(self):
        database = self._build(n_objects=16, n_shards=1)
        rng = np.random.default_rng(6)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        with QueryService(database, window_ms=40.0) as service:
            batch_future = service.submit_request(
                ReverseRequest(query, k=3, alpha=0.5)
            )
            linear_future = service.submit_request(
                ReverseRequest(query, k=3, alpha=0.5, method="linear")
            )
            assert (
                batch_future.result(timeout=30).object_ids
                == linear_future.result(timeout=30).object_ids
            )
            stats = service.stats()
        assert stats.batches_flushed == 2  # distinct bucket keys
        database.close()

    def test_partial_shed_withdraws_enqueued_requests(self):
        from repro.exceptions import ServiceOverloadedError

        database = self._build(n_objects=10, n_shards=1)
        rng = np.random.default_rng(7)
        requests = [
            AknnRequest(make_fuzzy_object(rng, center=[5.0, 5.0]), k=2, alpha=0.5)
            for _ in range(4)
        ]
        # A window long enough that nothing flushes during submission.
        service = QueryService(
            database, window_ms=5000.0, max_batch=64, queue_depth=2
        ).start()
        try:
            with pytest.raises(ServiceOverloadedError):
                service.execute_batch(requests)
            # The two admitted requests were withdrawn with the failed
            # submission: nothing stays queued for answers nobody can read.
            assert service.pending == 0
            assert service.stats().requests_shed == 3  # 1 rejected + 2 withdrawn
        finally:
            service.stop(drain=True)
            database.close()

    def test_submit_request_rejects_non_requests(self):
        database = self._build(n_objects=8, n_shards=1)
        with QueryService(database) as service:
            with pytest.raises(TypeError):
                service.submit_request("not a request")
        database.close()


# ----------------------------------------------------------------------
# Deprecated shims
# ----------------------------------------------------------------------
class TestLegacyShims:
    def test_every_per_type_method_warns(self, dense_database, dense_queries):
        db = dense_database
        query = dense_queries[0]
        with pytest.warns(LegacyQueryAPIWarning):
            db.aknn(query, k=3, alpha=0.5)
        with pytest.warns(LegacyQueryAPIWarning):
            db.aknn_batch([query], k=3, alpha=0.5)
        with pytest.warns(LegacyQueryAPIWarning):
            db.rknn(query, k=2, alpha_range=(0.4, 0.6))
        with pytest.warns(LegacyQueryAPIWarning):
            db.range_search(query, alpha=0.5, radius=1.0)
        with pytest.warns(LegacyQueryAPIWarning):
            db.reverse_aknn(query, k=2, alpha=0.5)
        with pytest.warns(LegacyQueryAPIWarning):
            db.reverse_aknn_batch([query], k=2, alpha=0.5)

    def test_sharded_and_service_shims_warn(self):
        rng = np.random.default_rng(21)
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(10)]
        sharded = ShardedDatabase.build(objects, n_shards=2)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        with pytest.warns(LegacyQueryAPIWarning):
            sharded.aknn(query, k=3, alpha=0.5)
        with pytest.warns(LegacyQueryAPIWarning):
            sharded.reverse_aknn(query, k=2, alpha=0.5)
        with pytest.warns(LegacyQueryAPIWarning):
            sharded.range_search(query, alpha=0.5, radius=1.0)
        with QueryService(sharded, window_ms=10.0) as service:
            with pytest.warns(LegacyQueryAPIWarning):
                service.submit(query, k=3, alpha=0.5).result(timeout=30)
            with pytest.warns(LegacyQueryAPIWarning):
                service.submit_reverse(query, k=2, alpha=0.5).result(timeout=30)
        sharded.close()

    def test_cli_paths_are_shim_free(self, capsys):
        """The in-repo gate behind CI's warnings-as-error job: no CLI code
        path may route through the deprecated per-type methods."""
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", LegacyQueryAPIWarning)
            assert main(
                ["aknn", "--n-objects", "20", "--points-per-object", "10",
                 "--k", "2", "--space-size", "5"]
            ) == 0
            assert main(
                ["batch", "--n-objects", "20", "--points-per-object", "10",
                 "--k", "2", "--n-queries", "4", "--space-size", "5"]
            ) == 0
            assert main(
                ["reverse", "--n-objects", "20", "--points-per-object", "10",
                 "--k", "2", "--space-size", "5"]
            ) == 0
            assert main(
                ["serve", "--n-objects", "24", "--points-per-object", "10",
                 "--k", "2", "--space-size", "5", "--shards", "2",
                 "--n-requests", "6", "--clients", "2", "--query-pool", "4",
                 "--mix", "aknn,reverse,range"]
            ) == 0
        capsys.readouterr()


# ----------------------------------------------------------------------
# Satellite: lazy query samples
# ----------------------------------------------------------------------
class TestLazyQuerySamples:
    def test_sampling_is_deferred_until_first_access(self, monkeypatch):
        rng = np.random.default_rng(9)
        query = make_fuzzy_object(rng)
        calls = []
        original = FuzzyObject.sample_alpha_cut

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FuzzyObject, "sample_alpha_cut", counting)
        prepared = PreparedQuery(query, 0.5, rng=rng)
        assert calls == []  # construction draws nothing
        first = prepared.query_samples
        assert calls == [1]
        again = prepared.query_samples
        assert calls == [1]  # cached after the first draw
        assert np.array_equal(first, again)

    def test_repr_does_not_force_sampling(self):
        prepared = PreparedQuery(make_fuzzy_object(np.random.default_rng(8)), 0.5)
        assert "unsampled" in repr(prepared)
        _ = prepared.query_samples
        assert "unsampled" not in repr(prepared)


# ----------------------------------------------------------------------
# Satellite: shared distance-profile memo
# ----------------------------------------------------------------------
class TestSharedProfileStore:
    def test_profile_serves_point_evaluations(self):
        store = DistanceProfileStore(8)
        query = make_fuzzy_object(np.random.default_rng(30))
        profile = DistanceProfile([0.5, 1.0], [1.25, 2.5])
        store.insert(query, 3, profile, max_level=1.0)
        assert store.distance_at(query, 3, 0.4) == pytest.approx(1.25)
        assert store.distance_at(query, 3, 0.8) == pytest.approx(2.5)
        # Unknown pair or a truncated domain miss both fall through.
        assert store.distance_at(query, 4, 0.5) is None
        truncated = DistanceProfile([0.6], [1.0])
        store.insert(query, 5, truncated, max_level=0.6)
        assert store.distance_at(query, 5, 0.9) is None

    def test_scalar_memo_round_trips(self):
        store = DistanceProfileStore(8)
        query = make_fuzzy_object(np.random.default_rng(31))
        assert store.distance_at(query, 1, 0.5) is None
        store.insert_distance(query, 1, 0.5, 3.75)
        assert store.distance_at(query, 1, 0.5) == pytest.approx(3.75)
        other = make_fuzzy_object(np.random.default_rng(32))
        assert store.distance_at(other, 1, 0.5) is None

    def test_database_shares_one_store_between_sweep_and_reverse(
        self, dense_database, dense_queries
    ):
        db = dense_database
        assert db._rknn.profile_store is db.profile_store
        assert db._reverse.profile_store is db.profile_store
        query = dense_queries[0]
        # The sweep materialises profiles for its candidates; a reverse
        # request with the same query instance at a threshold inside the
        # sweep range then reuses those evaluations (and stays exact).
        sweep = db.execute(SweepRequest(query, k=3, alpha_range=(0.4, 0.7)))
        assert len(sweep) > 0
        baseline = db.execute(
            ReverseRequest(query, k=3, alpha=0.5, method="linear")
        )
        shared = db.execute(ReverseRequest(query, k=3, alpha=0.5))
        assert shared.object_ids == baseline.object_ids
        # Repeating the same reverse request is now served from the memo:
        # no new exact candidate evaluations are charged.
        repeat = db.execute(ReverseRequest(query, k=3, alpha=0.5))
        assert repeat.object_ids == shared.object_ids
        assert (
            repeat.stats.extra["bucket_distance_evaluations"]
            <= shared.stats.extra["bucket_distance_evaluations"]
        )
