"""Tests for the alpha-distance join (extension query)."""

import numpy as np
import pytest

from repro.core.database import FuzzyDatabase
from repro.core.join import AlphaDistanceJoin
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance
from tests.conftest import make_fuzzy_object


def brute_force_join(left_objects, right_objects, alpha, epsilon, self_join):
    pairs = set()
    for a in left_objects:
        for b in right_objects:
            if self_join and b.object_id <= a.object_id:
                continue
            if alpha_distance(a, b, alpha) <= epsilon:
                pairs.add((a.object_id, b.object_id))
    return pairs


@pytest.fixture
def two_databases(rng):
    left_objects = [
        make_fuzzy_object(rng, n_points=15, center=rng.random(2) * 8, object_id=i)
        for i in range(18)
    ]
    right_objects = [
        make_fuzzy_object(rng, n_points=15, center=rng.random(2) * 8, object_id=i)
        for i in range(14)
    ]
    left = FuzzyDatabase.build(left_objects)
    right = FuzzyDatabase.build(right_objects)
    yield left, left_objects, right, right_objects
    left.close()
    right.close()


class TestBinaryJoin:
    @pytest.mark.parametrize("alpha", [0.3, 0.7, 1.0])
    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 2.0])
    def test_index_matches_nested_loop_and_brute_force(self, two_databases, alpha, epsilon):
        left, left_objects, right, right_objects = two_databases
        join = AlphaDistanceJoin(left.store, left.tree, right.store, right.tree)
        expected = brute_force_join(left_objects, right_objects, alpha, epsilon, self_join=False)
        nested = join.join(alpha, epsilon, method="nested_loop")
        indexed = join.join(alpha, epsilon, method="index")
        assert set(nested.pair_ids) == expected
        assert set(indexed.pair_ids) == expected

    def test_reported_distances_within_epsilon(self, two_databases):
        left, _, right, _ = two_databases
        join = AlphaDistanceJoin(left.store, left.tree, right.store, right.tree)
        result = join.join(0.5, 1.5, method="index")
        for _, _, distance in result.pairs:
            assert distance <= 1.5 + 1e-9

    def test_index_join_probes_fewer_objects(self, two_databases):
        """With a selective epsilon the dual-tree join should not probe more
        objects than the exhaustive nested loop."""
        left, _, right, _ = two_databases
        join = AlphaDistanceJoin(left.store, left.tree, right.store, right.tree)
        left.reset_statistics()
        right.reset_statistics()
        nested = join.join(0.5, 0.2, method="nested_loop")
        left.reset_statistics()
        right.reset_statistics()
        indexed = join.join(0.5, 0.2, method="index")
        assert indexed.stats.object_accesses <= nested.stats.object_accesses

    def test_validation(self, two_databases):
        left, _, right, _ = two_databases
        join = AlphaDistanceJoin(left.store, left.tree, right.store, right.tree)
        with pytest.raises(InvalidQueryError):
            join.join(0.0, 1.0)
        with pytest.raises(InvalidQueryError):
            join.join(0.5, -1.0)
        with pytest.raises(InvalidQueryError):
            join.join(0.5, 1.0, method="hash")


class TestSelfJoin:
    @pytest.mark.parametrize("epsilon", [0.0, 0.8, 3.0])
    def test_self_join_matches_brute_force(self, rng, epsilon):
        objects = [
            make_fuzzy_object(rng, n_points=12, center=rng.random(2) * 7, object_id=i)
            for i in range(20)
        ]
        database = FuzzyDatabase.build(objects)
        expected = brute_force_join(objects, objects, 0.6, epsilon, self_join=True)
        result = database.distance_join(alpha=0.6, epsilon=epsilon, method="index")
        assert set(result.pair_ids) == expected
        nested = database.distance_join(alpha=0.6, epsilon=epsilon, method="nested_loop")
        assert set(nested.pair_ids) == expected
        database.close()

    def test_self_join_excludes_identity_pairs(self, rng):
        objects = [
            make_fuzzy_object(rng, n_points=10, center=rng.random(2) * 5, object_id=i)
            for i in range(10)
        ]
        database = FuzzyDatabase.build(objects)
        result = database.distance_join(alpha=0.5, epsilon=100.0)
        assert all(left != right for left, right in result.pair_ids)
        # every unordered pair of 10 objects qualifies with a huge epsilon
        assert len(result) == 45
        database.close()

    def test_empty_database_join(self):
        database = FuzzyDatabase.build([])
        result = database.distance_join(alpha=0.5, epsilon=1.0)
        assert len(result) == 0
        database.close()


class TestDatabaseFacade:
    def test_binary_join_through_database(self, two_databases):
        left, left_objects, right, right_objects = two_databases
        expected = brute_force_join(left_objects, right_objects, 0.5, 1.0, self_join=False)
        result = left.distance_join(alpha=0.5, epsilon=1.0, other=right)
        assert set(result.pair_ids) == expected
        assert result.method == "index"
        assert result.stats.node_accesses >= 1
