"""Unit tests for :class:`FuzzyObjectSummary` (the R-tree leaf payload)."""

import numpy as np
import pytest

from repro.fuzzy.summary import FuzzyObjectSummary, build_summary
from tests.conftest import make_fuzzy_object


class TestBuildSummary:
    def test_fields(self, rng):
        obj = make_fuzzy_object(rng, object_id=7)
        summary = build_summary(obj)
        assert summary.object_id == 7
        assert summary.n_points == obj.size
        assert summary.dimensions == obj.dimensions
        assert summary.support_mbr == obj.support_mbr()
        assert summary.kernel_mbr == obj.kernel_mbr()
        assert len(summary.upper_lines) == 2
        assert len(summary.lower_lines) == 2

    def test_representative_in_kernel(self, rng):
        obj = make_fuzzy_object(rng, object_id=1)
        summary = build_summary(obj, rng=rng)
        kernel = {tuple(p) for p in obj.kernel()}
        assert tuple(summary.representative) in kernel

    def test_requires_object_id(self, rng):
        obj = make_fuzzy_object(rng)
        with pytest.raises(ValueError):
            build_summary(obj)

    def test_kernel_mbr_inside_support_mbr(self, rng):
        obj = make_fuzzy_object(rng, object_id=2)
        summary = build_summary(obj)
        assert summary.support_mbr.contains(summary.kernel_mbr)


class TestApproxAlphaMbr:
    def test_contained_in_support(self, rng):
        obj = make_fuzzy_object(rng, object_id=3)
        summary = build_summary(obj)
        for alpha in (0.1, 0.5, 0.9, 1.0):
            approx = summary.approx_alpha_mbr(alpha)
            assert summary.support_mbr.contains(approx)

    def test_contains_true_cut(self, rng):
        obj = make_fuzzy_object(rng, object_id=4, n_points=40)
        summary = build_summary(obj)
        for alpha in np.linspace(0.05, 1.0, 9):
            approx = summary.approx_alpha_mbr(float(alpha))
            true = obj.alpha_mbr(float(alpha))
            assert np.all(approx.lower <= true.lower + 1e-9)
            assert np.all(approx.upper >= true.upper - 1e-9)

    def test_shrinks_with_alpha(self, rng):
        obj = make_fuzzy_object(rng, object_id=5, n_points=40)
        summary = build_summary(obj)
        low = summary.approx_alpha_mbr(0.1)
        high = summary.approx_alpha_mbr(0.95)
        assert low.area() >= high.area() - 1e-12


class TestSerialisation:
    def test_roundtrip(self, rng):
        obj = make_fuzzy_object(rng, object_id=11)
        summary = build_summary(obj)
        clone = FuzzyObjectSummary.from_dict(summary.to_dict())
        assert clone.object_id == summary.object_id
        assert clone.n_points == summary.n_points
        assert clone.support_mbr == summary.support_mbr
        assert clone.kernel_mbr == summary.kernel_mbr
        assert np.allclose(clone.representative, summary.representative)
        for a, b in zip(clone.upper_lines, summary.upper_lines):
            assert a == b
        for a, b in zip(clone.lower_lines, summary.lower_lines):
            assert a == b

    def test_roundtrip_preserves_approx_mbr(self, rng):
        obj = make_fuzzy_object(rng, object_id=12)
        summary = build_summary(obj)
        clone = FuzzyObjectSummary.from_dict(summary.to_dict())
        for alpha in (0.2, 0.6, 1.0):
            assert clone.approx_alpha_mbr(alpha) == summary.approx_alpha_mbr(alpha)
