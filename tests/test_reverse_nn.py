"""Tests for the reverse AKNN extension query."""

import numpy as np
import pytest

from repro.core.database import FuzzyDatabase
from repro.core.reverse_nn import ReverseAKNNSearcher
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance
from tests.conftest import make_fuzzy_object


def brute_force_reverse_knn(objects, query, k, alpha):
    """A is a reverse kNN of Q iff fewer than k objects are strictly closer to A."""
    result = []
    for a in objects:
        distance_to_query = alpha_distance(a, query, alpha)
        closer = sum(
            1
            for b in objects
            if b.object_id != a.object_id
            and alpha_distance(a, b, alpha) < distance_to_query
        )
        if closer < k:
            result.append(a.object_id)
    return sorted(result)


@pytest.fixture
def reverse_setup(rng):
    objects = [
        make_fuzzy_object(rng, n_points=12, center=rng.random(2) * 8, object_id=i)
        for i in range(22)
    ]
    database = FuzzyDatabase.build(objects)
    query = make_fuzzy_object(rng, n_points=12, center=[4.0, 4.0])
    yield database, objects, query
    database.close()


class TestCorrectness:
    @pytest.mark.parametrize("method", ["linear", "pruned"])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_brute_force(self, reverse_setup, method, k):
        database, objects, query = reverse_setup
        expected = brute_force_reverse_knn(objects, query, k, alpha=0.5)
        result = database.reverse_aknn(query, k=k, alpha=0.5, method=method)
        assert result.object_ids == expected

    @pytest.mark.parametrize("alpha", [0.2, 0.8, 1.0])
    def test_matches_brute_force_across_alphas(self, reverse_setup, alpha):
        database, objects, query = reverse_setup
        expected = brute_force_reverse_knn(objects, query, 2, alpha=alpha)
        result = database.reverse_aknn(query, k=2, alpha=alpha, method="pruned")
        assert result.object_ids == expected

    def test_distances_reported_for_results(self, reverse_setup):
        database, objects, query = reverse_setup
        result = database.reverse_aknn(query, k=2, alpha=0.5)
        by_id = {obj.object_id: obj for obj in objects}
        for object_id in result.object_ids:
            assert result.distances[object_id] == pytest.approx(
                alpha_distance(by_id[object_id], query, 0.5)
            )

    def test_far_away_query_has_no_reverse_neighbors(self, reverse_setup):
        database, objects, query = reverse_setup
        far_query = make_fuzzy_object(np.random.default_rng(1), center=[500.0, 500.0])
        result = database.reverse_aknn(far_query, k=1, alpha=0.5)
        assert len(result) == 0

    def test_large_k_returns_everything(self, reverse_setup):
        database, objects, _ = reverse_setup
        query = make_fuzzy_object(np.random.default_rng(2), center=[4.0, 4.0])
        result = database.reverse_aknn(query, k=len(objects) + 5, alpha=0.5)
        assert len(result) == len(objects)


class TestCostAndValidation:
    def test_pruned_filters_candidates(self, reverse_setup):
        database, objects, query = reverse_setup
        linear = database.reverse_aknn(query, k=2, alpha=0.5, method="linear")
        pruned = database.reverse_aknn(query, k=2, alpha=0.5, method="pruned")
        assert pruned.object_ids == linear.object_ids
        assert pruned.stats.extra["candidates"] <= linear.stats.extra["candidates"]

    def test_validation(self, reverse_setup):
        database, _, query = reverse_setup
        with pytest.raises(InvalidQueryError):
            database.reverse_aknn(query, k=0, alpha=0.5)
        with pytest.raises(InvalidQueryError):
            database.reverse_aknn(query, k=2, alpha=0.0)
        with pytest.raises(InvalidQueryError):
            database.reverse_aknn(query, k=2, alpha=0.5, method="bogus")

    def test_searcher_direct_use(self, reverse_setup):
        database, objects, query = reverse_setup
        searcher = ReverseAKNNSearcher(database.store, database.tree)
        result = searcher.search(query, k=3, alpha=0.6)
        expected = brute_force_reverse_knn(objects, query, 3, alpha=0.6)
        assert result.object_ids == expected
        assert result.stats.object_accesses > 0
        assert result.k == 3 and result.alpha == 0.6
