"""Tests for the reverse AKNN extension query."""

import numpy as np
import pytest

from repro.core.database import FuzzyDatabase
from repro.core.reverse_nn import ReverseAKNNSearcher
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance
from repro.fuzzy.fuzzy_object import FuzzyObject
from tests.conftest import make_fuzzy_object


def brute_force_reverse_knn(objects, query, k, alpha):
    """A is a reverse kNN of Q iff fewer than k objects are strictly closer to A."""
    result = []
    for a in objects:
        distance_to_query = alpha_distance(a, query, alpha)
        closer = sum(
            1
            for b in objects
            if b.object_id != a.object_id
            and alpha_distance(a, b, alpha) < distance_to_query
        )
        if closer < k:
            result.append(a.object_id)
    return sorted(result)


@pytest.fixture
def reverse_setup(rng):
    objects = [
        make_fuzzy_object(rng, n_points=12, center=rng.random(2) * 8, object_id=i)
        for i in range(22)
    ]
    database = FuzzyDatabase.build(objects)
    query = make_fuzzy_object(rng, n_points=12, center=[4.0, 4.0])
    yield database, objects, query
    database.close()


class TestCorrectness:
    @pytest.mark.parametrize("method", ["linear", "pruned", "batch"])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_brute_force(self, reverse_setup, method, k):
        database, objects, query = reverse_setup
        expected = brute_force_reverse_knn(objects, query, k, alpha=0.5)
        result = database.reverse_aknn(query, k=k, alpha=0.5, method=method)
        assert result.object_ids == expected

    @pytest.mark.parametrize("method", ["pruned", "batch"])
    @pytest.mark.parametrize("alpha", [0.2, 0.8, 1.0])
    def test_matches_brute_force_across_alphas(self, reverse_setup, alpha, method):
        database, objects, query = reverse_setup
        expected = brute_force_reverse_knn(objects, query, 2, alpha=alpha)
        result = database.reverse_aknn(query, k=2, alpha=alpha, method=method)
        assert result.object_ids == expected

    def test_distances_reported_for_results(self, reverse_setup):
        database, objects, query = reverse_setup
        result = database.reverse_aknn(query, k=2, alpha=0.5)
        by_id = {obj.object_id: obj for obj in objects}
        for object_id in result.object_ids:
            assert result.distances[object_id] == pytest.approx(
                alpha_distance(by_id[object_id], query, 0.5)
            )

    def test_far_away_query_has_no_reverse_neighbors(self, reverse_setup):
        database, objects, query = reverse_setup
        far_query = make_fuzzy_object(np.random.default_rng(1), center=[500.0, 500.0])
        result = database.reverse_aknn(far_query, k=1, alpha=0.5)
        assert len(result) == 0

    def test_large_k_returns_everything(self, reverse_setup):
        database, objects, _ = reverse_setup
        query = make_fuzzy_object(np.random.default_rng(2), center=[4.0, 4.0])
        result = database.reverse_aknn(query, k=len(objects) + 5, alpha=0.5)
        assert len(result) == len(objects)


THREE_WAY = ("linear", "pruned", "batch")


def assert_three_way_parity(database, objects, query, k, alpha):
    """Pin ``linear == pruned == batch`` against the brute-force oracle."""
    expected = brute_force_reverse_knn(objects, query, k, alpha)
    for method in THREE_WAY:
        result = database.reverse_aknn(query, k=k, alpha=alpha, method=method)
        assert result.object_ids == expected, (
            f"method {method} diverged at k={k}, alpha={alpha}: "
            f"{result.object_ids} != {expected}"
        )


class TestEdgeCaseParity:
    """Regression pins for the degenerate configurations of the RKNN engine."""

    def test_duplicate_objects_zero_distance_ties(self, rng):
        """Identical objects sit at distance zero from each other: the
        strictly-closer count must treat the tie consistently in all methods."""
        base = make_fuzzy_object(rng, n_points=10, center=[2.0, 2.0])
        objects = [
            FuzzyObject(base.points.copy(), base.memberships.copy(), object_id=i)
            for i in range(3)
        ] + [
            make_fuzzy_object(rng, n_points=10, center=rng.random(2) * 6, object_id=i)
            for i in range(3, 12)
        ]
        database = FuzzyDatabase.build(list(objects))
        try:
            query = make_fuzzy_object(rng, n_points=10, center=[2.5, 2.5])
            for k in (1, 2, 3, 5):
                assert_three_way_parity(database, objects, query, k, alpha=0.5)
            # A query coincident with the duplicates (distance-zero to them).
            coincident = FuzzyObject(base.points.copy(), base.memberships.copy())
            for k in (1, 3):
                assert_three_way_parity(database, objects, coincident, k, alpha=0.5)
        finally:
            database.close()

    @pytest.mark.parametrize("k_extra", [0, 1, 10])
    def test_k_at_least_n_returns_everything(self, rng, k_extra):
        objects = [
            make_fuzzy_object(rng, n_points=8, center=rng.random(2) * 5, object_id=i)
            for i in range(7)
        ]
        database = FuzzyDatabase.build(list(objects))
        try:
            query = make_fuzzy_object(rng, n_points=8, center=[2.0, 2.0])
            assert_three_way_parity(
                database, objects, query, k=len(objects) + k_extra, alpha=0.5
            )
            result = database.reverse_aknn(
                query, k=len(objects) + k_extra, alpha=0.5, method="batch"
            )
            assert len(result) == len(objects)
        finally:
            database.close()

    def test_single_object_store(self, rng):
        objects = [make_fuzzy_object(rng, n_points=8, center=[1.0, 1.0], object_id=0)]
        database = FuzzyDatabase.build(list(objects))
        try:
            query = make_fuzzy_object(rng, n_points=8, center=[4.0, 4.0])
            for k in (1, 2):
                assert_three_way_parity(database, objects, query, k, alpha=0.5)
        finally:
            database.close()

    def test_alpha_one_kernel_cuts(self, reverse_setup):
        database, objects, query = reverse_setup
        for k in (1, 3):
            assert_three_way_parity(database, objects, query, k, alpha=1.0)

    def test_empty_database(self):
        database = FuzzyDatabase.build([])
        try:
            query = make_fuzzy_object(np.random.default_rng(4), center=[1.0, 1.0])
            for method in THREE_WAY:
                result = database.reverse_aknn(query, k=2, alpha=0.5, method=method)
                assert len(result) == 0
        finally:
            database.close()


class TestBatchEngine:
    def test_search_batch_matches_per_query(self, reverse_setup, rng):
        """A coalesced bucket returns exactly the per-query answers."""
        database, objects, _ = reverse_setup
        bucket = [
            make_fuzzy_object(rng, n_points=12, center=rng.random(2) * 8)
            for _ in range(5)
        ]
        results = database.reverse_aknn_batch(bucket, k=2, alpha=0.5)
        assert len(results) == len(bucket)
        for query, result in zip(bucket, results):
            expected = brute_force_reverse_knn(objects, query, 2, 0.5)
            assert result.object_ids == expected
            single = database.reverse_aknn(query, k=2, alpha=0.5, method="batch")
            assert single.object_ids == result.object_ids
            for object_id in result.object_ids:
                assert result.distances[object_id] == pytest.approx(
                    single.distances[object_id]
                )

    def test_empty_bucket(self, reverse_setup):
        database, _, _ = reverse_setup
        assert database.reverse_aknn_batch([], k=2, alpha=0.5) == []

    def test_batch_filter_is_effective(self, reverse_setup):
        """The vectorized filter keeps no more candidates than linear scans."""
        database, objects, query = reverse_setup
        linear = database.reverse_aknn(query, k=2, alpha=0.5, method="linear")
        batch = database.reverse_aknn(query, k=2, alpha=0.5, method="batch")
        assert batch.object_ids == linear.object_ids
        assert batch.stats.extra["candidates"] <= linear.stats.extra["candidates"]

    def test_batch_reports_exact_distances(self, reverse_setup):
        database, objects, query = reverse_setup
        result = database.reverse_aknn(query, k=2, alpha=0.5, method="batch")
        by_id = {obj.object_id: obj for obj in objects}
        for object_id in result.object_ids:
            assert result.distances[object_id] == pytest.approx(
                alpha_distance(by_id[object_id], query, 0.5)
            )


class TestCostAndValidation:
    def test_pruned_filters_candidates(self, reverse_setup):
        database, objects, query = reverse_setup
        linear = database.reverse_aknn(query, k=2, alpha=0.5, method="linear")
        pruned = database.reverse_aknn(query, k=2, alpha=0.5, method="pruned")
        assert pruned.object_ids == linear.object_ids
        assert pruned.stats.extra["candidates"] <= linear.stats.extra["candidates"]

    def test_validation(self, reverse_setup):
        database, _, query = reverse_setup
        with pytest.raises(InvalidQueryError):
            database.reverse_aknn(query, k=0, alpha=0.5)
        with pytest.raises(InvalidQueryError):
            database.reverse_aknn(query, k=2, alpha=0.0)
        with pytest.raises(InvalidQueryError):
            database.reverse_aknn(query, k=2, alpha=0.5, method="bogus")

    def test_searcher_direct_use(self, reverse_setup):
        database, objects, query = reverse_setup
        searcher = ReverseAKNNSearcher(database.store, database.tree)
        result = searcher.search(query, k=3, alpha=0.6)
        expected = brute_force_reverse_knn(objects, query, 3, alpha=0.6)
        assert result.object_ids == expected
        assert result.stats.object_accesses > 0
        assert result.k == 3 and result.alpha == 0.6
