"""Tests for the query-time caching layers added with the batch engine.

Covers the per-object alpha-cut LRU cache on :class:`FuzzyObject` and the
memoised :class:`DistanceProfileStore` wired into the RKNN searcher.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.datasets.builder import DatasetBundle
from repro.fuzzy.alpha_distance import DistanceProfileStore, distance_profile
from repro.fuzzy.fuzzy_object import (
    CUT_CACHE_STATS,
    FuzzyObject,
    reset_cut_cache_statistics,
)


def make_object(seed=0, n=20):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2))
    memberships = rng.uniform(0.05, 1.0, size=n)
    memberships[0] = 1.0
    return FuzzyObject(points, memberships, object_id=seed)


class TestAlphaCutCache:
    def test_repeated_cuts_share_one_materialisation(self):
        obj = make_object(1)
        reset_cut_cache_statistics()
        first = obj.alpha_cut(0.5)
        second = obj.alpha_cut(0.5)
        assert first is second
        assert CUT_CACHE_STATS["hits"] == 1
        assert CUT_CACHE_STATS["misses"] == 1

    def test_different_alphas_are_distinct_entries(self):
        obj = make_object(2)
        cut_low = obj.alpha_cut(0.3)
        cut_high = obj.alpha_cut(0.9)
        assert cut_high.shape[0] <= cut_low.shape[0]
        assert obj.alpha_cut(0.3) is cut_low
        assert obj.alpha_cut(0.9) is cut_high

    def test_lru_eviction_respects_capacity(self):
        obj = make_object(3)
        obj.set_cut_cache_capacity(2)
        first = obj.alpha_cut(0.2)
        obj.alpha_cut(0.4)
        obj.alpha_cut(0.6)  # evicts 0.2
        assert obj.alpha_cut(0.2) is not first

    def test_capacity_zero_disables_caching(self):
        obj = make_object(4)
        obj.set_cut_cache_capacity(0)
        assert obj.alpha_cut(0.5) is not obj.alpha_cut(0.5)

    def test_cached_cut_values_are_correct(self):
        obj = make_object(5)
        for alpha in (0.25, 0.5, 0.25, 0.75, 0.5):
            cut = obj.alpha_cut(alpha)
            mask = obj.memberships >= alpha - 1e-12
            np.testing.assert_array_equal(cut, obj.points[mask])

    def test_store_applies_configured_capacity(self):
        bundle = DatasetBundle.create(
            n_objects=20,
            points_per_object=10,
            seed=5,
            config=RuntimeConfig(alpha_cut_cache_capacity=0, cache_capacity=4),
        )
        obj = bundle.database.get_object(bundle.database.object_ids()[0])
        assert obj.alpha_cut(0.5) is not obj.alpha_cut(0.5)


class TestDistanceProfileStore:
    def test_lookup_miss_then_hit(self):
        store = DistanceProfileStore(capacity=8)
        query, other = make_object(10), make_object(11)
        assert store.lookup(query, 11, 0.8) is None
        profile = distance_profile(other, query, max_level=0.8)
        store.insert(query, 11, profile, 0.8)
        assert store.lookup(query, 11, 0.8) is profile
        assert store.hits == 1 and store.misses == 1

    def test_max_level_is_part_of_the_key(self):
        store = DistanceProfileStore(capacity=8)
        query, other = make_object(12), make_object(13)
        profile = distance_profile(other, query, max_level=0.5)
        store.insert(query, 13, profile, 0.5)
        assert store.lookup(query, 13, 0.9) is None

    def test_capacity_zero_disables_memoisation(self):
        store = DistanceProfileStore(capacity=0)
        query, other = make_object(14), make_object(15)
        profile = distance_profile(other, query)
        store.insert(query, 15, profile)
        assert store.lookup(query, 15) is None

    def test_distinct_query_instances_do_not_collide(self):
        store = DistanceProfileStore(capacity=8)
        query_a, query_b, other = make_object(16), make_object(17), make_object(18)
        profile_a = distance_profile(other, query_a)
        store.insert(query_a, 18, profile_a)
        assert store.lookup(query_b, 18) is None


class TestProfileStoreInRKNN:
    def test_repeated_rknn_reuses_profiles(self):
        bundle = DatasetBundle.create(
            n_objects=60,
            points_per_object=12,
            seed=23,
            config=RuntimeConfig(rtree_max_entries=8),
        )
        database = bundle.database
        query = bundle.queries(1)[0]
        first = database.rknn(query, k=4, alpha_range=(0.3, 0.7))
        second = database.rknn(query, k=4, alpha_range=(0.3, 0.7))
        assert first.assignments.keys() == second.assignments.keys()
        for object_id in first.assignments:
            assert first.assignments[object_id] == second.assignments[object_id]
        assert second.stats.extra["profile_cache_hits"] > 0
        # A hit replaces both the probe and the profile computation.
        assert second.stats.object_accesses <= first.stats.object_accesses

    def test_profile_store_disabled_still_correct(self):
        bundle = DatasetBundle.create(
            n_objects=60,
            points_per_object=12,
            seed=23,
            config=RuntimeConfig(rtree_max_entries=8, profile_cache_capacity=0),
        )
        database = bundle.database
        query = bundle.queries(1)[0]
        result = database.rknn(query, k=4, alpha_range=(0.3, 0.7))
        truth = database.linear_scan().rknn(query, k=4, alpha_range=(0.3, 0.7))
        assert result.assignments.keys() == truth.assignments.keys()
