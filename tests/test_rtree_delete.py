"""Tests for R-tree deletion (condense-tree + reinsert) and live updates.

Deletion is the substrate of the service's live-update path, so beyond the
structural invariants the load-bearing property is that query answers after
any mixed insert/delete workload match the exhaustive linear scan over the
surviving objects.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.exceptions import IndexError_, ObjectNotFoundError
from repro.fuzzy.summary import build_summary
from repro.geometry.mbr import MBR
from repro.index.rtree import RTree

from tests.conftest import make_fuzzy_object


def _summaries(rng, count, **kwargs):
    objects = [make_fuzzy_object(rng, object_id=i, **kwargs) for i in range(count)]
    return [build_summary(obj) for obj in objects]


class TestTreeDeletion:
    def test_delete_reduces_size_and_keeps_invariants(self, rng):
        summaries = _summaries(rng, 40)
        tree = RTree.bulk_load(summaries, max_entries=5)
        order = list(range(40))
        rng.shuffle(order)
        remaining = set(range(40))
        for object_id in order:
            tree.delete(object_id, mbr=summaries[object_id].support_mbr)
            remaining.discard(object_id)
            assert len(tree) == len(remaining)
            tree.validate()
            assert {e.object_id for e in tree.leaf_entries()} == remaining

    def test_delete_without_mbr_hint(self, rng):
        summaries = _summaries(rng, 12)
        tree = RTree.bulk_load(summaries, max_entries=4)
        tree.delete(7)
        tree.validate()
        assert 7 not in {e.object_id for e in tree.leaf_entries()}

    def test_delete_unknown_id_raises(self, rng):
        tree = RTree.bulk_load(_summaries(rng, 6), max_entries=4)
        with pytest.raises(IndexError_):
            tree.delete(999)

    def test_root_shrinks_after_mass_deletion(self, rng):
        summaries = _summaries(rng, 60)
        tree = RTree.bulk_load(summaries, max_entries=4)
        tall = tree.height
        assert tall >= 3
        for object_id in range(55):
            tree.delete(object_id, mbr=summaries[object_id].support_mbr)
            tree.validate()
        assert tree.height < tall
        assert len(tree) == 5

    def test_delete_to_empty_and_rebuild(self, rng):
        summaries = _summaries(rng, 10)
        tree = RTree.bulk_load(summaries, max_entries=4)
        for object_id in range(10):
            tree.delete(object_id)
        assert len(tree) == 0
        assert tree.root.is_leaf
        tree.validate()
        for summary in summaries:
            tree.insert(summary)
        tree.validate()
        assert len(tree) == 10

    def test_interleaved_insert_delete(self, rng):
        summaries = _summaries(rng, 30)
        tree = RTree.bulk_load(summaries[:15], max_entries=4)
        alive = set(range(15))
        for step, summary in enumerate(summaries[15:]):
            tree.insert(summary)
            alive.add(summary.object_id)
            victim = sorted(alive)[step % len(alive)]
            tree.delete(victim, mbr=summaries[victim].support_mbr)
            alive.discard(victim)
            tree.validate()
        assert {e.object_id for e in tree.leaf_entries()} == alive

    def test_mutation_counter_advances(self, rng):
        summaries = _summaries(rng, 8)
        tree = RTree.bulk_load(summaries, max_entries=4)
        before = tree.mutations
        tree.delete(0)
        tree.insert(summaries[0])
        assert tree.mutations == before + 2

    def test_range_query_correct_after_deletes(self, rng):
        summaries = _summaries(rng, 50)
        tree = RTree.bulk_load(summaries, max_entries=5)
        for object_id in range(0, 50, 2):
            tree.delete(object_id, mbr=summaries[object_id].support_mbr)
        region = MBR(np.array([2.0, 2.0]), np.array([9.0, 9.0]))
        got = {e.object_id for e in tree.range_query(region)}
        want = {
            s.object_id
            for s in summaries
            if s.object_id % 2 == 1 and s.support_mbr.intersects(region)
        }
        assert got == want


class TestDatabaseLiveUpdates:
    @pytest.fixture
    def database(self, rng):
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(30)]
        return FuzzyDatabase.build(
            objects, config=RuntimeConfig(rtree_max_entries=5)
        )

    def test_query_parity_after_deletes(self, database, rng, query_object):
        order = list(database.object_ids())
        rng.shuffle(order)
        for object_id in order[:20]:
            database.delete(object_id)
            database.validate()
        result = database.aknn(query_object, k=5, alpha=0.5)
        truth = database.linear_scan().aknn(query_object, k=5, alpha=0.5)
        assert set(result.object_ids) == set(truth.object_ids)

    def test_insert_visible_to_queries(self, database, query_object, rng):
        # An object dropped on the query's own centre must become the 1-NN.
        clone = make_fuzzy_object(rng, center=[5.0, 5.0], spread=0.05)
        object_id = database.insert(clone)
        result = database.aknn(query_object, k=1, alpha=0.5)
        truth = database.linear_scan().aknn(query_object, k=1, alpha=0.5)
        assert set(result.object_ids) == set(truth.object_ids)
        assert object_id in database.object_ids()

    def test_deleted_object_never_returned(self, database, query_object):
        top = database.aknn(query_object, k=1, alpha=0.5).object_ids[0]
        database.delete(top)
        result = database.aknn(query_object, k=5, alpha=0.5)
        assert top not in result.object_ids

    def test_delete_unknown_raises(self, database):
        with pytest.raises(ObjectNotFoundError):
            database.delete(10_000)

    def test_ids_never_recycled(self, database, rng):
        highest = max(database.object_ids())
        database.delete(highest)
        new_id = database.insert(make_fuzzy_object(rng))
        assert new_id > highest

    def test_batch_parity_after_equal_size_churn(self, database, rng, query_object):
        """Insert+delete keeping the size constant must refresh the rep index."""
        database.aknn_batch([query_object], k=4, alpha=0.5)  # prime the KD-tree
        victim = database.object_ids()[0]
        database.delete(victim)
        database.insert(make_fuzzy_object(rng, center=[5.0, 5.0], spread=0.1))
        batch = database.aknn_batch([query_object], k=4, alpha=0.5)
        truth = database.linear_scan().aknn(query_object, k=4, alpha=0.5)
        assert set(batch.results[0].object_ids) == set(truth.object_ids)
