"""Tests for the fractal-dimension estimators used by the cost model."""

import numpy as np
import pytest

from repro.analysis.fractal import (
    box_counting_dimension,
    correlation_dimension,
    dataset_center_dimension,
    estimate_dimensions,
    sample_centers,
    uniform_reference_dimension,
)


class TestBoxCounting:
    def test_uniform_2d_close_to_two(self, rng):
        points = rng.random((5000, 2))
        d0 = box_counting_dimension(points)
        assert 1.6 <= d0 <= 2.2

    def test_points_on_a_line_close_to_one(self, rng):
        t = rng.random(4000)
        points = np.column_stack([t, 0.5 * t + 0.1])
        d0 = box_counting_dimension(points)
        assert 0.7 <= d0 <= 1.3

    def test_finite_point_set_has_dimension_near_zero(self):
        # A large sample drawn from only three distinct locations occupies a
        # constant number of boxes at every scale, so D0 is (close to) zero.
        distinct = np.array([[0.0, 0.0], [0.3, 0.7], [1.0, 1.0]])
        points = np.repeat(distinct, 400, axis=0)
        d0 = box_counting_dimension(points)
        assert d0 <= 0.5

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            box_counting_dimension(np.zeros((1, 2)))


class TestCorrelation:
    def test_uniform_2d_close_to_two(self, rng):
        points = rng.random((5000, 2))
        d2 = correlation_dimension(points)
        assert 1.6 <= d2 <= 2.2

    def test_line_close_to_one(self, rng):
        t = rng.random(4000)
        points = np.column_stack([t, t])
        d2 = correlation_dimension(points)
        assert 0.7 <= d2 <= 1.3

    def test_clipped_to_embedding_dimension(self, rng):
        points = rng.random((500, 2))
        assert correlation_dimension(points) <= 2.0


class TestHelpers:
    def test_uniform_reference(self):
        assert uniform_reference_dimension(2) == 2.0
        assert uniform_reference_dimension(3) == 3.0

    def test_dataset_center_dimension_dispatch(self, rng):
        points = rng.random((1000, 2))
        assert dataset_center_dimension(points, "correlation") > 0
        assert dataset_center_dimension(points, "hausdorff") > 0
        with pytest.raises(ValueError):
            dataset_center_dimension(points, "other")

    def test_estimate_dimensions_returns_pair(self, rng):
        d0, d2 = estimate_dimensions(rng.random((2000, 2)))
        assert 0 < d0 <= 2
        assert 0 < d2 <= 2

    def test_sample_centers(self, rng):
        points = rng.random((1000, 2))
        sampled = sample_centers(points, 100, rng)
        assert sampled.shape == (100, 2)
        small = rng.random((10, 2))
        assert sample_centers(small, 100).shape == (10, 2)
