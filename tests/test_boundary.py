"""Unit tests for boundary functions and optimal conservative lines (Definition 6)."""

import numpy as np
import pytest

from repro.fuzzy.boundary import (
    BoundaryFunction,
    ConservativeLine,
    alpha_mbr_table,
    boundary_function,
    fit_conservative_line,
    fit_object_lines,
)
from repro.fuzzy.fuzzy_object import FuzzyObject
from tests.conftest import make_fuzzy_object


def staircase_object():
    """Points spreading outwards as membership decreases (1-d staircase in x)."""
    points = np.array(
        [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [4.0, 0.0], [8.0, 0.0]]
    )
    memberships = np.array([1.0, 0.8, 0.6, 0.4, 0.2])
    return FuzzyObject(points, memberships)


class TestAlphaMbrTable:
    def test_levels_match_distinct_memberships(self):
        obj = staircase_object()
        levels, lower, upper = alpha_mbr_table(obj)
        np.testing.assert_allclose(levels, [0.2, 0.4, 0.6, 0.8, 1.0])
        assert lower.shape == (5, 2)
        assert upper.shape == (5, 2)

    def test_table_matches_direct_alpha_mbr(self):
        obj = staircase_object()
        levels, lower, upper = alpha_mbr_table(obj)
        for j, level in enumerate(levels):
            direct = obj.alpha_mbr(float(level))
            np.testing.assert_allclose(lower[j], direct.lower)
            np.testing.assert_allclose(upper[j], direct.upper)

    def test_table_matches_direct_on_random_objects(self, rng):
        obj = make_fuzzy_object(rng, n_points=40)
        levels, lower, upper = alpha_mbr_table(obj)
        for j in (0, len(levels) // 2, len(levels) - 1):
            direct = obj.alpha_mbr(float(levels[j]))
            np.testing.assert_allclose(lower[j], direct.lower)
            np.testing.assert_allclose(upper[j], direct.upper)


class TestBoundaryFunction:
    def test_deltas_non_increasing(self):
        obj = staircase_object()
        bf = boundary_function(obj, dimension=0, side="upper")
        pairs = bf.pairs()
        deltas = [d for _, d in pairs]
        assert all(d1 >= d2 - 1e-12 for d1, d2 in zip(deltas, deltas[1:]))
        # Delta at the kernel level is zero by construction.
        assert deltas[-1] == pytest.approx(0.0)

    def test_expected_values_for_staircase(self):
        obj = staircase_object()
        bf = boundary_function(obj, dimension=0, side="upper")
        values = dict(bf.pairs())
        assert values[1.0] == pytest.approx(0.0)
        assert values[0.8] == pytest.approx(1.0)
        assert values[0.2] == pytest.approx(8.0)

    def test_lower_side_of_symmetric_object_is_trivial(self):
        obj = staircase_object()
        bf = boundary_function(obj, dimension=0, side="lower")
        assert bf.is_trivial

    def test_invalid_side_raises(self):
        with pytest.raises(ValueError):
            boundary_function(staircase_object(), 0, "middle")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BoundaryFunction(np.array([0.5, 1.0]), np.array([1.0]))


class TestConservativeLine:
    def test_delta_at_clamped_at_zero(self):
        line = ConservativeLine(slope=-2.0, intercept=1.0)
        assert line.delta_at(0.2) == pytest.approx(0.6)
        assert line.delta_at(0.9) == 0.0

    def test_pair_roundtrip(self):
        line = ConservativeLine(-1.5, 2.5)
        assert ConservativeLine.from_pair(line.to_pair()) == line

    def test_fit_is_conservative_on_samples(self, rng):
        for _ in range(20):
            obj = make_fuzzy_object(rng, n_points=25)
            for dim in range(obj.dimensions):
                for side in ("upper", "lower"):
                    bf = boundary_function(obj, dim, side)
                    line = fit_conservative_line(bf)
                    for alpha, delta in bf.pairs():
                        assert line.delta_at(alpha) >= delta - 1e-9

    def test_fit_trivial_boundary_gives_flat_zero_line(self):
        bf = BoundaryFunction(np.array([0.5, 1.0]), np.array([0.0, 0.0]))
        line = fit_conservative_line(bf)
        assert line.delta_at(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_fit_single_level(self):
        bf = BoundaryFunction(np.array([1.0]), np.array([0.0]))
        line = fit_conservative_line(bf)
        assert line.delta_at(1.0) >= 0.0

    def test_fit_slope_non_positive(self, rng):
        obj = make_fuzzy_object(rng, n_points=30)
        for dim in range(2):
            bf = boundary_function(obj, dim, "upper")
            line = fit_conservative_line(bf)
            assert line.slope <= 1e-12

    def test_fit_not_absurdly_loose(self):
        """The fitted line should be at most the constant max-delta line."""
        obj = staircase_object()
        bf = boundary_function(obj, 0, "upper")
        line = fit_conservative_line(bf)
        max_delta = max(d for _, d in bf.pairs())
        # At alpha=1 (the kernel) the line should be well below the max delta.
        assert line.delta_at(1.0) < max_delta


class TestObjectLines:
    def test_dimensions(self, rng):
        obj = make_fuzzy_object(rng)
        lines = fit_object_lines(obj)
        assert lines.dimensions == obj.dimensions
        assert len(lines.upper) == obj.dimensions
        assert len(lines.lower) == obj.dimensions

    def test_equation2_encloses_true_alpha_mbr(self, rng):
        """The approximated MBR of Equation 2 always contains the true one."""
        from repro.fuzzy.summary import build_summary

        for seed in range(5):
            obj = make_fuzzy_object(np.random.default_rng(seed), n_points=35, object_id=seed)
            summary = build_summary(obj)
            for alpha in (0.1, 0.3, 0.55, 0.75, 0.95, 1.0):
                approx = summary.approx_alpha_mbr(alpha)
                true = obj.alpha_mbr(alpha)
                assert np.all(approx.lower <= true.lower + 1e-9)
                assert np.all(approx.upper >= true.upper - 1e-9)
