"""Tests for fuzzy set-theoretic and metric operations."""

import numpy as np
import pytest

from repro.exceptions import InvalidFuzzyObjectError
from repro.fuzzy.fuzzy_object import FuzzyObject
from repro.fuzzy.operations import (
    alpha_cut_area,
    diameter,
    fuzzy_area,
    fuzzy_centroid,
    fuzzy_difference,
    fuzzy_intersection,
    fuzzy_union,
    gap_distance,
    overlap_degree,
    overlaps,
    scalar_cardinality,
)


def grid_object(memberships_by_point, object_id=None):
    points = np.asarray(list(memberships_by_point.keys()), dtype=float)
    memberships = np.asarray(list(memberships_by_point.values()), dtype=float)
    return FuzzyObject(points, memberships, object_id=object_id, require_kernel=False)


@pytest.fixture
def object_a():
    return grid_object({(0.0, 0.0): 1.0, (1.0, 0.0): 0.6, (2.0, 0.0): 0.2})


@pytest.fixture
def object_b():
    return grid_object({(1.0, 0.0): 0.9, (2.0, 0.0): 0.5, (3.0, 0.0): 1.0})


class TestSetOperations:
    def test_union_takes_max_memberships(self, object_a, object_b):
        union = fuzzy_union(object_a, object_b)
        values = {tuple(p): m for p, m in zip(union.points, union.memberships)}
        assert values[(0.0, 0.0)] == pytest.approx(1.0)
        assert values[(1.0, 0.0)] == pytest.approx(0.9)
        assert values[(2.0, 0.0)] == pytest.approx(0.5)
        assert values[(3.0, 0.0)] == pytest.approx(1.0)
        assert union.size == 4

    def test_intersection_takes_min_memberships(self, object_a, object_b):
        intersection = fuzzy_intersection(object_a, object_b)
        values = {tuple(p): m for p, m in zip(intersection.points, intersection.memberships)}
        assert set(values) == {(1.0, 0.0), (2.0, 0.0)}
        assert values[(1.0, 0.0)] == pytest.approx(0.6)
        assert values[(2.0, 0.0)] == pytest.approx(0.2)

    def test_disjoint_intersection_raises(self, object_a):
        far = grid_object({(10.0, 10.0): 1.0})
        with pytest.raises(InvalidFuzzyObjectError):
            fuzzy_intersection(object_a, far)

    def test_difference(self, object_a, object_b):
        difference = fuzzy_difference(object_a, object_b)
        values = {tuple(p): m for p, m in zip(difference.points, difference.memberships)}
        # A \ B at (0,0): min(1.0, 1 - 0) = 1.0; at (1,0): min(0.6, 0.1) = 0.1
        assert values[(0.0, 0.0)] == pytest.approx(1.0)
        assert values[(1.0, 0.0)] == pytest.approx(0.1)
        assert values[(2.0, 0.0)] == pytest.approx(0.2)

    def test_union_commutative(self, object_a, object_b):
        ab = fuzzy_union(object_a, object_b)
        ba = fuzzy_union(object_b, object_a)
        values_ab = {tuple(p): m for p, m in zip(ab.points, ab.memberships)}
        values_ba = {tuple(p): m for p, m in zip(ba.points, ba.memberships)}
        assert values_ab == values_ba

    def test_dimension_mismatch(self, object_a):
        three_d = FuzzyObject(np.zeros((1, 3)), np.array([1.0]))
        with pytest.raises(InvalidFuzzyObjectError):
            fuzzy_union(object_a, three_d)

    def test_overlaps(self, object_a, object_b):
        assert overlaps(object_a, object_b)
        far = grid_object({(10.0, 10.0): 1.0})
        assert not overlaps(object_a, far)

    def test_idempotence(self, object_a):
        union = fuzzy_union(object_a, object_a)
        assert union.size == object_a.size
        np.testing.assert_allclose(sorted(union.memberships), sorted(object_a.memberships))


class TestMetricOperations:
    def test_scalar_cardinality(self, object_a):
        assert scalar_cardinality(object_a) == pytest.approx(1.8)

    def test_fuzzy_area(self, object_a):
        assert fuzzy_area(object_a, pixel_area=2.0) == pytest.approx(3.6)
        with pytest.raises(InvalidFuzzyObjectError):
            fuzzy_area(object_a, pixel_area=0.0)

    def test_alpha_cut_area(self, object_a):
        assert alpha_cut_area(object_a, 0.5) == 2.0
        assert alpha_cut_area(object_a, 0.1) == 3.0

    def test_centroid_weighted_towards_high_membership(self, object_a):
        centroid = fuzzy_centroid(object_a)
        plain_mean = object_a.points.mean(axis=0)
        assert centroid[0] < plain_mean[0]  # pulled towards the membership-1 point

    def test_diameter(self, object_a):
        assert diameter(object_a) == pytest.approx(2.0)
        assert diameter(object_a, alpha=0.5) == pytest.approx(1.0)
        single = grid_object({(1.0, 1.0): 1.0})
        assert diameter(single) == 0.0

    def test_overlap_degree_bounds(self, object_a, object_b):
        degree = overlap_degree(object_a, object_b)
        assert 0.0 < degree <= 1.0
        assert overlap_degree(object_a, object_a) == pytest.approx(1.0)
        far = grid_object({(10.0, 10.0): 1.0})
        assert overlap_degree(object_a, far) == 0.0

    def test_gap_distance_matches_alpha_distance(self, rng):
        from tests.conftest import make_fuzzy_object
        from repro.fuzzy.alpha_distance import alpha_distance

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng, center=[9.0, 9.0])
        assert gap_distance(a, b, 0.5) == pytest.approx(alpha_distance(a, b, 0.5))
