"""Parity tests for the struct-of-arrays (SoA) node views.

The searchers now evaluate ``MinDist`` / ``MaxDist`` / ``d-_alpha`` for a
whole node through :class:`repro.index.soa.NodeSoA`; these tests pin the
vectorized values to the scalar per-entry reference implementations, both on
bulk-loaded trees and across incremental maintenance (inserts, splits,
directory-MBR refreshes).
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.query import PreparedQuery
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.fuzzy.summary import build_summary
from repro.geometry.mbr import max_dist, min_dist
from repro.index.rtree import RTree


@pytest.fixture(scope="module")
def objects():
    config = SyntheticDatasetConfig(n_objects=120, points_per_object=24, seed=11)
    return generate_synthetic_dataset(config)


@pytest.fixture(scope="module")
def summaries(objects):
    return [build_summary(obj) for obj in objects]


@pytest.fixture(scope="module")
def tree(summaries):
    return RTree.bulk_load(summaries, max_entries=8)


@pytest.fixture()
def prepared(objects):
    rng = np.random.default_rng(5)
    return PreparedQuery(objects[0], 0.5, RuntimeConfig(), rng)


def iter_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(entry.child for entry in node.entries)


class TestVectorizedBoundParity:
    def test_leaf_simple_lower_bounds_match_scalar(self, tree, prepared):
        for node in iter_nodes(tree):
            if not node.is_leaf:
                continue
            vectorized = prepared.leaf_lower_bounds(node.soa(), improved=False)
            scalar = [prepared.simple_lower_bound(e.summary) for e in node.entries]
            np.testing.assert_allclose(vectorized, scalar, rtol=0, atol=1e-12)

    def test_leaf_improved_lower_bounds_match_scalar(self, tree, prepared):
        for node in iter_nodes(tree):
            if not node.is_leaf:
                continue
            vectorized = prepared.leaf_lower_bounds(node.soa(), improved=True)
            scalar = [prepared.improved_lower_bound(e.summary) for e in node.entries]
            np.testing.assert_allclose(vectorized, scalar, rtol=0, atol=1e-12)

    def test_leaf_upper_bounds_match_scalar(self, tree, prepared):
        for node in iter_nodes(tree):
            if not node.is_leaf:
                continue
            vectorized = prepared.leaf_upper_bounds(node.soa(), use_representative=True)
            scalar = [prepared.combined_upper_bound(e.summary) for e in node.entries]
            np.testing.assert_allclose(vectorized, scalar, rtol=0, atol=1e-12)
            maxdist_only = prepared.leaf_upper_bounds(
                node.soa(), use_representative=False
            )
            scalar_md = [prepared.maxdist_upper_bound(e.summary) for e in node.entries]
            np.testing.assert_allclose(maxdist_only, scalar_md, rtol=0, atol=1e-12)

    def test_internal_lower_bounds_match_scalar(self, tree, prepared):
        for node in iter_nodes(tree):
            if node.is_leaf:
                continue
            vectorized = prepared.node_lower_bounds(node.soa())
            scalar = [prepared.node_lower_bound(e.mbr) for e in node.entries]
            np.testing.assert_allclose(vectorized, scalar, rtol=0, atol=1e-12)

    def test_approx_alpha_bounds_match_summary(self, tree):
        for node in iter_nodes(tree):
            if not node.is_leaf:
                continue
            for alpha in (0.2, 0.5, 0.9):
                lower, upper = node.soa().approx_alpha_bounds(alpha)
                for i, entry in enumerate(node.entries):
                    box = entry.summary.approx_alpha_mbr(alpha)
                    np.testing.assert_array_equal(lower[i], box.lower)
                    np.testing.assert_array_equal(upper[i], box.upper)

    def test_batched_boxes_sandwich_query(self, tree, prepared):
        """Vectorized lower bounds never exceed vectorized upper bounds."""
        for node in iter_nodes(tree):
            if not node.is_leaf:
                continue
            lowers = prepared.leaf_lower_bounds(node.soa(), improved=True)
            uppers = prepared.leaf_upper_bounds(node.soa(), use_representative=True)
            for low, high in zip(lowers, uppers):
                assert low <= high + 1e-9


class TestAlphaCacheReuse:
    def test_equation2_reconstruction_is_memoised(self, tree):
        leaf = next(node for node in iter_nodes(tree) if node.is_leaf)
        soa = leaf.soa()
        first = soa.approx_alpha_bounds(0.35)
        second = soa.approx_alpha_bounds(0.35)
        assert first[0] is second[0] and first[1] is second[1]
        other = soa.approx_alpha_bounds(0.36)
        assert other[0] is not first[0]


class TestIncrementalMaintenance:
    def _assert_soa_mirrors_entries(self, tree):
        for node in iter_nodes(tree):
            soa = node.soa()
            assert soa.n == len(node.entries)
            for i, entry in enumerate(node.entries):
                np.testing.assert_array_equal(soa.lo[i], entry.mbr.lower)
                np.testing.assert_array_equal(soa.hi[i], entry.mbr.upper)
                if node.is_leaf:
                    assert int(soa.object_ids[i]) == entry.object_id

    def test_soa_tracks_inserts_and_splits(self, summaries):
        tree = RTree(max_entries=4)
        for i, summary in enumerate(summaries[:40]):
            tree.insert(summary)
            if i % 7 == 0:
                # Interleave queries so cached views exist while the tree
                # keeps mutating underneath them.
                self._assert_soa_mirrors_entries(tree)
        tree.validate()
        self._assert_soa_mirrors_entries(tree)

    def test_search_parity_after_inserts(self, objects, summaries):
        bulk = RTree.bulk_load(summaries[:40], max_entries=4)
        incremental = RTree(max_entries=4)
        for summary in summaries[:40]:
            incremental.insert(summary)
        rng = np.random.default_rng(9)
        prepared = PreparedQuery(objects[-1], 0.5, RuntimeConfig(), rng)

        def all_leaf_bounds(tree):
            bounds = {}
            for node in iter_nodes(tree):
                if node.is_leaf:
                    values = prepared.leaf_lower_bounds(node.soa(), improved=True)
                    for entry, value in zip(node.entries, values):
                        bounds[entry.object_id] = value
            return bounds

        bulk_bounds = all_leaf_bounds(bulk)
        incremental_bounds = all_leaf_bounds(incremental)
        assert bulk_bounds.keys() == incremental_bounds.keys()
        for object_id, value in bulk_bounds.items():
            assert incremental_bounds[object_id] == pytest.approx(value, abs=1e-12)


class TestKernelsAgainstMBR:
    def test_min_and_max_dist_match_pairwise(self, summaries, objects):
        rng = np.random.default_rng(3)
        prepared = PreparedQuery(objects[1], 0.4, RuntimeConfig(), rng)
        tree = RTree.bulk_load(summaries[:30], max_entries=8)
        for node in iter_nodes(tree):
            soa = node.soa()
            got = soa.min_dist(prepared.query_mbr.lower, prepared.query_mbr.upper)
            want = [min_dist(prepared.query_mbr, e.mbr) for e in node.entries]
            np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)
            if node.is_leaf:
                got_max = soa.max_dist(
                    0.4, prepared.query_mbr.lower, prepared.query_mbr.upper
                )
                want_max = [
                    max_dist(prepared.query_mbr, e.summary.approx_alpha_mbr(0.4))
                    for e in node.entries
                ]
                np.testing.assert_allclose(got_max, want_max, rtol=0, atol=1e-12)
