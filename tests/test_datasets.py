"""Tests for the dataset generators (Section 6.1 setup and the cell simulator)."""

import numpy as np
import pytest

from repro.datasets.builder import DatasetBundle, build_database, build_dataset
from repro.datasets.cells import CellDatasetConfig, generate_cell_dataset, generate_cell_object
from repro.datasets.queries import generate_query_object
from repro.datasets.synthetic import (
    SyntheticDatasetConfig,
    generate_synthetic_dataset,
    generate_synthetic_object,
    normalize_memberships_to_unit,
)


class TestNormalisation:
    def test_spans_unit_interval(self):
        raw = np.array([0.6, 0.7, 0.9, 1.0])
        normalized = normalize_memberships_to_unit(raw)
        assert normalized.max() == pytest.approx(1.0)
        assert normalized.min() <= 0.01
        assert np.all(normalized > 0)

    def test_constant_input(self):
        normalized = normalize_memberships_to_unit(np.array([0.4, 0.4]))
        assert np.all(normalized == 1.0)

    def test_preserves_order(self):
        raw = np.array([0.3, 0.9, 0.5])
        normalized = normalize_memberships_to_unit(raw)
        assert np.argsort(normalized).tolist() == np.argsort(raw).tolist()


class TestSyntheticGenerator:
    def test_object_shape_and_memberships(self, rng):
        obj = generate_synthetic_object(np.array([10.0, 10.0]), rng, points_per_object=200)
        assert obj.size == 200
        assert obj.dimensions == 2
        assert obj.has_kernel
        assert obj.memberships.min() > 0
        assert obj.memberships.max() == pytest.approx(1.0)

    def test_points_inside_radius(self, rng):
        center = np.array([3.0, 4.0])
        obj = generate_synthetic_object(center, rng, points_per_object=300, object_radius=0.5)
        distances = np.linalg.norm(obj.points - center, axis=1)
        assert distances.max() <= 0.5 + 1e-9

    def test_membership_decreases_with_radius(self, rng):
        center = np.array([0.0, 0.0])
        obj = generate_synthetic_object(center, rng, points_per_object=500)
        radial = np.linalg.norm(obj.points - center, axis=1)
        # Correlation between radius and membership must be strongly negative.
        corr = np.corrcoef(radial, obj.memberships)[0, 1]
        assert corr < -0.8

    def test_dataset_scale_and_bounds(self):
        config = SyntheticDatasetConfig(n_objects=30, points_per_object=20, space_size=50.0, seed=1)
        objects = generate_synthetic_dataset(config)
        assert len(objects) == 30
        assert all(obj.size == 20 for obj in objects)
        assert all(obj.object_id == i for i, obj in enumerate(objects))
        centers = np.array([obj.support_mbr().center for obj in objects])
        assert centers.min() >= -1.0
        assert centers.max() <= 51.0

    def test_reproducible_with_seed(self):
        config = SyntheticDatasetConfig(n_objects=5, points_per_object=10, seed=9)
        a = generate_synthetic_dataset(config)
        b = generate_synthetic_dataset(config)
        for obj_a, obj_b in zip(a, b):
            np.testing.assert_allclose(obj_a.points, obj_b.points)
            np.testing.assert_allclose(obj_a.memberships, obj_b.memberships)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(n_objects=0).validated()
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(points_per_object=-1).validated()
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(membership_sigma=0.0).validated()
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(dimensions=1).validated()


class TestCellGenerator:
    def test_object_properties(self, rng):
        obj = generate_cell_object(np.array([2.0, 2.0]), rng)
        assert obj.has_kernel
        assert obj.memberships.min() > 0
        assert obj.memberships.max() == pytest.approx(1.0)
        assert obj.dimensions == 2

    def test_irregular_support(self, rng):
        """Cell supports should be less circular than synthetic ones: the
        radial spread of boundary distances must vary noticeably."""
        config = CellDatasetConfig(points_per_object=400, irregularity=0.6, seed=2)
        obj = generate_cell_object(np.array([0.0, 0.0]), rng, config=config)
        mbr = obj.support_mbr()
        extent = mbr.extent
        assert extent.min() > 0

    def test_dataset_scale(self):
        config = CellDatasetConfig(n_objects=12, points_per_object=30, seed=3)
        objects = generate_cell_dataset(config)
        assert len(objects) == 12
        assert all(obj.size == 30 for obj in objects)

    def test_reproducible_with_seed(self):
        config = CellDatasetConfig(n_objects=4, points_per_object=15, seed=8)
        a = generate_cell_dataset(config)
        b = generate_cell_dataset(config)
        for obj_a, obj_b in zip(a, b):
            np.testing.assert_allclose(obj_a.points, obj_b.points)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CellDatasetConfig(irregularity=1.5).validated()
        with pytest.raises(ValueError):
            CellDatasetConfig(membership_decay=0.0).validated()
        with pytest.raises(ValueError):
            CellDatasetConfig(dimensions=3).validated()


class TestQueryGenerator:
    def test_kinds(self, rng):
        for kind in ("synthetic", "cells", "point"):
            query = generate_query_object(rng, kind=kind, points_per_object=20)
            assert query.has_kernel
            if kind == "point":
                assert query.size == 1

    def test_explicit_center(self, rng):
        query = generate_query_object(rng, kind="point", center=[1.0, 2.0])
        np.testing.assert_allclose(query.points[0], [1.0, 2.0])

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            generate_query_object(rng, kind="hexagons")


class TestBuilder:
    def test_build_dataset_kinds(self):
        synthetic = build_dataset(kind="synthetic", n_objects=10, points_per_object=10)
        cells = build_dataset(kind="cells", n_objects=10, points_per_object=10)
        assert len(synthetic) == 10 and len(cells) == 10
        with pytest.raises(ValueError):
            build_dataset(kind="squares")

    def test_build_database(self, tmp_path):
        database = build_database(
            kind="synthetic", n_objects=15, points_per_object=10, path=tmp_path / "db"
        )
        database.validate()
        assert len(database) == 15
        database.close()

    def test_bundle_queries_reproducible(self):
        bundle = DatasetBundle.create(kind="synthetic", n_objects=10, points_per_object=10)
        first = bundle.queries(3)
        second = bundle.queries(3)
        for a, b in zip(first, second):
            np.testing.assert_allclose(a.points, b.points)
        bundle.database.close()

    def test_bundle_query_kind_override(self):
        bundle = DatasetBundle.create(kind="synthetic", n_objects=5, points_per_object=10)
        queries = bundle.queries(2, query_kind="point")
        assert all(q.size == 1 for q in queries)
        bundle.database.close()
