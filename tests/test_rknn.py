"""Tests for the RKNN searcher: every method variant against the exact sweep."""

import numpy as np
import pytest

from repro.core.rknn import (
    RKNN_METHODS,
    RKNNSearcher,
    refine_candidates_basic,
    refine_candidates_icr,
)
from repro.core.linear_scan import evaluate_piecewise
from repro.core.results import QueryStats
from repro.exceptions import InvalidQueryError
from repro.fuzzy.profile import DistanceProfile
from tests.conftest import assert_same_assignments


class TestCorrectness:
    @pytest.mark.parametrize("method", RKNN_METHODS)
    @pytest.mark.parametrize("alpha_range", [(0.3, 0.7), (0.5, 0.6), (0.1, 1.0)])
    def test_matches_linear_scan(self, dense_database, dense_queries, method, alpha_range):
        query = dense_queries[0]
        k = 5
        truth = dense_database.linear_scan().rknn(query, k=k, alpha_range=alpha_range)
        result = dense_database.rknn(query, k=k, alpha_range=alpha_range, method=method)
        assert_same_assignments(result.assignments, truth.assignments)

    @pytest.mark.parametrize("method", ["basic", "rss", "rss_icr"])
    def test_multiple_queries(self, dense_database, dense_queries, method):
        for query in dense_queries:
            truth = dense_database.linear_scan().rknn(query, k=3, alpha_range=(0.4, 0.8))
            result = dense_database.rknn(query, k=3, alpha_range=(0.4, 0.8), method=method)
            assert_same_assignments(result.assignments, truth.assignments)

    @pytest.mark.parametrize("method", ["rss", "rss_icr"])
    def test_on_cell_dataset(self, cell_database, method):
        from repro.datasets.queries import generate_query_object

        rng = np.random.default_rng(17)
        query = generate_query_object(rng, kind="cells", space_size=7.0, points_per_object=40)
        truth = cell_database.linear_scan().rknn(query, k=4, alpha_range=(0.35, 0.75))
        result = cell_database.rknn(query, k=4, alpha_range=(0.35, 0.75), method=method)
        assert_same_assignments(result.assignments, truth.assignments)

    @pytest.mark.parametrize("method", ["rss", "rss_icr"])
    def test_different_aknn_methods_give_same_answer(self, dense_database, dense_queries, method):
        query = dense_queries[1]
        baseline = dense_database.rknn(
            query, k=4, alpha_range=(0.4, 0.7), method=method, aknn_method="basic"
        )
        optimised = dense_database.rknn(
            query, k=4, alpha_range=(0.4, 0.7), method=method, aknn_method="lb_lp_ub"
        )
        assert_same_assignments(optimised.assignments, baseline.assignments)

    def test_k_larger_than_dataset(self, dense_database, dense_queries):
        result = dense_database.rknn(dense_queries[0], k=10_000, alpha_range=(0.4, 0.6), method="rss_icr")
        # every object qualifies over the entire range
        assert len(result) == len(dense_database)
        for ranges in result.assignments.values():
            assert ranges.contains(0.4) and ranges.contains(0.6)

    def test_degenerate_range_matches_aknn(self, dense_database, dense_queries):
        query = dense_queries[2]
        aknn = dense_database.linear_scan().aknn(query, k=5, alpha=0.55)
        rknn = dense_database.rknn(query, k=5, alpha_range=(0.55, 0.55), method="rss_icr")
        assert sorted(rknn.object_ids) == sorted(aknn.object_ids)

    def test_result_metadata_and_qualifying_at(self, dense_database, dense_queries):
        query = dense_queries[0]
        result = dense_database.rknn(query, k=4, alpha_range=(0.4, 0.7), method="rss")
        assert result.k == 4
        assert result.alpha_range == (0.4, 0.7)
        assert result.method == "rss"
        truth = dense_database.linear_scan().aknn(query, k=4, alpha=0.55)
        assert sorted(result.qualifying_at(0.55)) == sorted(truth.object_ids)


class TestValidation:
    def test_invalid_parameters(self, dense_database, dense_queries):
        query = dense_queries[0]
        with pytest.raises(InvalidQueryError):
            dense_database.rknn(query, k=0, alpha_range=(0.3, 0.6))
        with pytest.raises(InvalidQueryError):
            dense_database.rknn(query, k=3, alpha_range=(0.6, 0.3))
        with pytest.raises(InvalidQueryError):
            dense_database.rknn(query, k=3, alpha_range=(0.0, 0.6))
        with pytest.raises(InvalidQueryError):
            dense_database.rknn(query, k=3, alpha_range=(0.3, 0.6), method="bogus")

    def test_empty_database(self):
        from repro.core.database import FuzzyDatabase
        from repro.fuzzy.fuzzy_object import FuzzyObject

        database = FuzzyDatabase.build([])
        result = database.rknn(FuzzyObject.single_point([0.0, 0.0]), k=3, alpha_range=(0.3, 0.6))
        assert len(result) == 0


class TestCostBehaviour:
    def test_basic_issues_multiple_aknn_calls(self, dense_database, dense_queries):
        result = dense_database.rknn(
            dense_queries[0], k=5, alpha_range=(0.3, 0.7), method="basic"
        )
        assert result.stats.aknn_calls >= 2

    def test_rss_issues_one_aknn_and_one_range_call(self, dense_database, dense_queries):
        result = dense_database.rknn(
            dense_queries[0], k=5, alpha_range=(0.3, 0.7), method="rss"
        )
        assert result.stats.aknn_calls == 1
        assert result.stats.range_calls == 1

    def test_rss_accesses_fewer_objects_than_basic(self, dense_database, dense_queries):
        """Lemma 3 pruning: RSS must not access more objects than the basic
        sweep (summed over queries; this is Figure 13's headline claim)."""
        basic_total = 0
        rss_total = 0
        for query in dense_queries:
            basic_total += dense_database.rknn(
                query, k=5, alpha_range=(0.3, 0.7), method="basic"
            ).stats.object_accesses
            rss_total += dense_database.rknn(
                query, k=5, alpha_range=(0.3, 0.7), method="rss"
            ).stats.object_accesses
        assert rss_total <= basic_total

    def test_icr_reduces_refinement_steps(self, dense_database, dense_queries):
        """Lemma 4: RSS-ICR checks no more critical probabilities than RSS."""
        rss_steps = 0
        icr_steps = 0
        for query in dense_queries:
            rss_steps += dense_database.rknn(
                query, k=5, alpha_range=(0.2, 0.9), method="rss"
            ).stats.refinement_steps
            icr_steps += dense_database.rknn(
                query, k=5, alpha_range=(0.2, 0.9), method="rss_icr"
            ).stats.refinement_steps
        assert icr_steps <= rss_steps

    def test_rss_and_icr_same_object_accesses(self, dense_database, dense_queries):
        query = dense_queries[0]
        rss = dense_database.rknn(query, k=5, alpha_range=(0.3, 0.7), method="rss")
        icr = dense_database.rknn(query, k=5, alpha_range=(0.3, 0.7), method="rss_icr")
        assert rss.stats.object_accesses == icr.stats.object_accesses

    def test_candidate_count_recorded(self, dense_database, dense_queries):
        result = dense_database.rknn(
            dense_queries[0], k=5, alpha_range=(0.3, 0.7), method="rss"
        )
        assert result.stats.extra.get("candidates", 0) >= 5


class TestRefinementHelpers:
    """The in-memory refinement routines against the exact piecewise sweep."""

    @staticmethod
    def _random_profiles(rng, count=12, levels=6):
        profiles = {}
        for object_id in range(count):
            level_values = np.sort(rng.choice(np.linspace(0.05, 1.0, 20), size=levels, replace=False))
            if level_values[-1] < 1.0:
                level_values = np.append(level_values, 1.0)
            base = rng.random() * 3
            increments = np.cumsum(rng.random(level_values.size) * rng.integers(0, 2, level_values.size))
            profiles[object_id] = DistanceProfile(level_values, base + increments)
        return profiles

    @pytest.mark.parametrize("k", [1, 3, 6])
    @pytest.mark.parametrize("refine", [refine_candidates_basic, refine_candidates_icr])
    def test_refinement_matches_piecewise_sweep(self, k, refine):
        rng = np.random.default_rng(k)
        for trial in range(5):
            profiles = self._random_profiles(np.random.default_rng(trial * 13 + k))
            alpha_start, alpha_end = 0.2, 0.9
            expected = evaluate_piecewise(profiles, k, alpha_start, alpha_end)
            actual = refine(profiles, k, alpha_start, alpha_end, QueryStats())
            assert_same_assignments(actual, expected)

    def test_icr_never_more_steps_than_basic(self):
        rng = np.random.default_rng(99)
        profiles = self._random_profiles(rng, count=20, levels=8)
        basic_stats, icr_stats = QueryStats(), QueryStats()
        refine_candidates_basic(profiles, 4, 0.1, 0.95, basic_stats)
        refine_candidates_icr(profiles, 4, 0.1, 0.95, icr_stats)
        assert icr_stats.refinement_steps <= basic_stats.refinement_steps

    def test_single_candidate(self):
        profiles = {7: DistanceProfile([0.5, 1.0], [1.0, 2.0])}
        for refine in (refine_candidates_basic, refine_candidates_icr):
            assignments = refine(profiles, 2, 0.3, 0.8)
            assert list(assignments.keys()) == [7]
            assert assignments[7].contains(0.3) and assignments[7].contains(0.8)
