"""Standing-query tests.

The invariant every test leans on: after *any* mutation, folding a
subscription's delta stream into an (initially empty) member map reproduces
exactly what re-executing its request from scratch returns.  On top of that
the suite pins the efficiency contract (inserts are screened by the
vectorised bound kernel, deletes of non-members cost nothing, only member
deletes of kNN answers re-query) and the service-layer lifecycle (bounded
delivery queues, slow-consumer shedding, detach on stop).
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.core.requests import AknnRequest, RangeRequest, SweepRequest
from repro.exceptions import InvalidQueryError
from repro.metrics.counters import MetricsCollector
from repro.service.query_service import QueryService
from repro.service.sharded import ShardedDatabase
from repro.service.subscriptions import SubscriptionEngine

from tests.conftest import make_fuzzy_object


def fold(deltas):
    """Replay a delta stream into the member map it describes."""
    members = {}
    seqs = []
    for delta in deltas:
        seqs.append(delta.seq)
        for object_id in delta.removed:
            members.pop(object_id, None)
        for object_id, distance in delta.added:
            members[object_id] = distance
    assert seqs == list(range(len(seqs))), f"delta stream has gaps: {seqs}"
    return members


def reference_members(engine, sub):
    """Re-execute the subscription's request from scratch (the oracle)."""
    result = engine.execute(sub.request)
    if hasattr(result, "neighbors"):
        out = {}
        for neighbor in result.neighbors:
            distance = neighbor.distance
            if distance is None:
                distance = sub.distance_of(engine.get_object(neighbor.object_id))
            out[int(neighbor.object_id)] = float(distance)
        return out
    return {int(oid): float(d) for oid, d in result.matches}


def assert_members_match(actual, expected):
    assert sorted(actual) == sorted(expected)
    for object_id, distance in expected.items():
        assert actual[object_id] == pytest.approx(distance, abs=1e-9)


def _database(seed: int, n: int = 16):
    rng = np.random.default_rng(seed)
    objects = [make_fuzzy_object(rng, object_id=i) for i in range(n)]
    return FuzzyDatabase.build(objects), rng


class TestSubscriptionEngine:
    def _attach(self, db):
        engine = SubscriptionEngine(db, metrics=MetricsCollector())
        db.add_update_listener(engine)
        return engine

    def test_parity_after_every_mutation(self):
        db, rng = _database(61)
        engine = self._attach(db)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        deltas = {"aknn": [], "range": []}
        aknn = engine.subscribe(
            AknnRequest(query, k=4, alpha=0.4), deltas["aknn"].append
        )
        rng_sub = engine.subscribe(
            RangeRequest(query, alpha=0.5, radius=4.0), deltas["range"].append
        )
        # Initial deltas already delivered the opening answers.
        assert_members_match(fold(deltas["aknn"]), reference_members(db, aknn))

        live = list(db.object_ids())
        next_id = 100
        for step in range(24):
            if step % 4 == 3 and len(live) > 6:
                victim = live.pop(int(rng.integers(0, len(live))))
                db.delete(victim)
            else:
                db.insert(make_fuzzy_object(rng, object_id=next_id))
                live.append(next_id)
                next_id += 1
            # THE invariant: delta stream == re-execution, after every op.
            assert_members_match(fold(deltas["aknn"]), reference_members(db, aknn))
            assert_members_match(fold(deltas["range"]), reference_members(db, rng_sub))
        db.close()

    def test_far_inserts_are_screened_without_evaluation(self):
        db, rng = _database(62)
        engine = self._attach(db)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        sub = engine.subscribe(AknnRequest(query, k=3, alpha=0.4))
        assert len(sub.members) == 3  # full answer -> finite threshold
        before = engine.metrics.as_dict()
        for j in range(5):
            db.insert(make_fuzzy_object(rng, center=[500.0, 500.0], object_id=200 + j))
        after = engine.metrics.as_dict()
        assert (
            after[MetricsCollector.SUB_SCREENED_OUT]
            - before.get(MetricsCollector.SUB_SCREENED_OUT, 0)
            == 5
        )
        assert after.get(MetricsCollector.SUB_EVALUATIONS, 0) == before.get(
            MetricsCollector.SUB_EVALUATIONS, 0
        )
        db.close()

    def test_member_delete_triggers_targeted_requery(self):
        db, rng = _database(63)
        engine = self._attach(db)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        deltas = []
        sub = engine.subscribe(AknnRequest(query, k=3, alpha=0.4), deltas.append)
        member = sorted(sub.members)[0]
        before = engine.metrics.get(MetricsCollector.SUB_REQUERIES)
        db.delete(member)
        assert engine.metrics.get(MetricsCollector.SUB_REQUERIES) == before + 1
        assert member in deltas[-1].removed
        assert member not in sub.members
        assert_members_match(fold(deltas), reference_members(db, sub))
        db.close()

    def test_non_member_delete_is_free(self):
        db, rng = _database(64)
        engine = self._attach(db)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        sub = engine.subscribe(AknnRequest(query, k=3, alpha=0.4))
        non_member = next(i for i in db.object_ids() if i not in sub.members)
        seq_before = sub.seq
        requeries_before = engine.metrics.get(MetricsCollector.SUB_REQUERIES)
        db.delete(non_member)
        assert sub.seq == seq_before  # no delta emitted
        assert engine.metrics.get(MetricsCollector.SUB_REQUERIES) == requeries_before
        db.close()

    def test_range_member_delete_needs_no_requery(self):
        db, rng = _database(65)
        engine = self._attach(db)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        deltas = []
        sub = engine.subscribe(
            RangeRequest(query, alpha=0.5, radius=6.0), deltas.append
        )
        assert sub.members, "radius too small for the fixture"
        member = sorted(sub.members)[0]
        before = engine.metrics.get(MetricsCollector.SUB_REQUERIES)
        db.delete(member)
        assert engine.metrics.get(MetricsCollector.SUB_REQUERIES) == before
        assert deltas[-1].removed == (member,)
        assert_members_match(fold(deltas), reference_members(db, sub))
        db.close()

    def test_unsupported_request_type_rejected(self):
        db, rng = _database(66, n=6)
        engine = self._attach(db)
        query = make_fuzzy_object(rng)
        with pytest.raises(InvalidQueryError):
            engine.subscribe(SweepRequest(query, k=2, alpha_range=(0.2, 0.8)))
        db.close()

    def test_unsubscribe_stops_maintenance(self):
        db, rng = _database(67)
        engine = self._attach(db)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        deltas = []
        sub = engine.subscribe(AknnRequest(query, k=3, alpha=0.4), deltas.append)
        engine.unsubscribe(sub)
        assert len(engine) == 0
        count = len(deltas)
        db.insert(make_fuzzy_object(rng, center=[5.0, 5.0], object_id=300))
        assert len(deltas) == count
        db.close()


class TestServiceSubscriptions:
    """The QueryService wrapper: delivery queues, shedding, lifecycle."""

    def _sharded_service(self, seed: int, depth=None):
        rng = np.random.default_rng(seed)
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(18)]
        config = RuntimeConfig(service_shards=3)
        db = ShardedDatabase.build(objects, n_shards=3, config=config)
        service = QueryService(db).start()
        return service, db, rng

    def test_parity_through_the_service_over_shards(self):
        service, db, rng = self._sharded_service(71)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        request = AknnRequest(query, k=4, alpha=0.4)
        delivery = service.subscribe(request)
        sub = delivery.subscription
        stream = []  # the full delta history, drained incrementally
        live = list(db.object_ids())
        next_id = 100
        for step in range(18):
            if step % 4 == 3 and len(live) > 6:
                victim = live.pop(int(rng.integers(0, len(live))))
                service.delete(victim)
            else:
                service.insert(make_fuzzy_object(rng, object_id=next_id))
                live.append(next_id)
                next_id += 1
            stream.extend(delivery.drain())
            # The coalescing executor answers the oracle query; deltas came
            # through the bounded delivery queue — both must agree.
            assert_members_match(fold(stream), reference_members(db, sub))
        service.stop()
        db.close()

    def test_slow_consumer_is_shed(self):
        service, db, rng = self._sharded_service(72)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        delivery = service.subscribe(AknnRequest(query, k=3, alpha=0.4), depth=1)
        assert service.subscriptions == 1
        # The initial delta fills the depth-1 queue; the next delta overflows.
        inserted = 400
        while not delivery.shed and inserted < 420:
            service.insert(make_fuzzy_object(rng, center=[5.0, 5.0], object_id=inserted))
            inserted += 1
        assert delivery.shed and delivery.closed
        assert service.subscriptions == 0
        assert service.metrics.get(MetricsCollector.SUBSCRIBERS_SHED) == 1
        # Further mutations are fine — the dead subscription is gone.
        service.insert(make_fuzzy_object(rng, object_id=999))
        service.stop()
        db.close()

    def test_unsubscribe_and_stop_detach_cleanly(self):
        service, db, rng = self._sharded_service(73)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        first = service.subscribe(AknnRequest(query, k=3, alpha=0.4))
        second = service.subscribe(RangeRequest(query, alpha=0.5, radius=4.0))
        assert service.subscriptions == 2
        service.unsubscribe(first)
        assert service.subscriptions == 1
        assert first.closed
        first.drain()  # queued deltas still readable, then the stream ends
        assert first.poll() is None
        service.stop()
        assert service.subscriptions == 0
        second.drain()  # closed stream drains without blocking
        # The engine detached from the database: mutations notify nobody.
        seq_before = second.subscription.seq
        db.insert(make_fuzzy_object(rng, object_id=800))
        assert second.subscription.seq == seq_before
        db.close()

    def test_subscribe_requires_listener_support(self):
        class Plain:
            """No add_update_listener: standing queries are impossible."""

            config = RuntimeConfig()

        service = QueryService.__new__(QueryService)
        # Only exercise the guard, not the full service lifecycle.
        service._config = RuntimeConfig()
        service.database = Plain()
        service.metrics = MetricsCollector()
        import threading

        service._sub_lock = threading.Lock()
        service._subscriptions = None
        service._deliveries = {}
        query = make_fuzzy_object(np.random.default_rng(1))
        with pytest.raises(InvalidQueryError):
            service.subscribe(AknnRequest(query, k=2, alpha=0.5))
