"""Unit tests for configuration objects."""

import pytest

from repro.config import DEFAULTS, PaperDefaults, RuntimeConfig


class TestPaperDefaults:
    def test_table2_values(self):
        assert DEFAULTS.n_objects == 50_000
        assert DEFAULTS.points_per_object == 1_000
        assert DEFAULTS.k == 20
        assert DEFAULTS.alpha == 0.5
        assert DEFAULTS.range_length == 0.2
        assert DEFAULTS.space_size == 100.0
        assert DEFAULTS.object_radius == 0.5
        assert DEFAULTS.membership_sigma == 0.5

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULTS.k = 5  # type: ignore[misc]


class TestRuntimeConfig:
    def test_defaults_validate(self):
        config = RuntimeConfig().validate()
        assert config.upper_bound_samples >= 1
        assert config.rtree_max_entries >= 4

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            RuntimeConfig(upper_bound_samples=0).validate()

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RuntimeConfig(rtree_max_entries=2).validate()

    def test_invalid_min_fill(self):
        with pytest.raises(ValueError):
            RuntimeConfig(rtree_min_fill=0.9).validate()
        with pytest.raises(ValueError):
            RuntimeConfig(rtree_min_fill=0.0).validate()

    def test_invalid_cache_capacity(self):
        with pytest.raises(ValueError):
            RuntimeConfig(cache_capacity=-1).validate()

    def test_validate_returns_self(self):
        config = RuntimeConfig()
        assert config.validate() is config


class TestExceptions:
    def test_hierarchy(self):
        from repro.exceptions import (
            EmptyAlphaCutError,
            IndexError_,
            InvalidFuzzyObjectError,
            InvalidQueryError,
            ObjectNotFoundError,
            ReproError,
            SerializationError,
            StorageError,
        )

        for exc in (
            InvalidFuzzyObjectError,
            InvalidQueryError,
            EmptyAlphaCutError,
            StorageError,
            IndexError_,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(ObjectNotFoundError, StorageError)
        assert issubclass(SerializationError, StorageError)
